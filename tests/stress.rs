//! Stress tests: controllers against randomized workloads and adversarial
//! conditions the curated suite does not cover.

use odrl::controllers::{MaxBips, PowerController, SteepestDrop};
use odrl::core::{OdRlConfig, OdRlController};
use odrl::manycore::{System, SystemConfig};
use odrl::power::Watts;
use odrl::workload::{BenchmarkSpec, MixPolicy, WorkloadMix};

/// Every controller survives 100 random-workload scenarios without panics
/// or invalid actions, and OD-RL's average power never runs away.
#[test]
fn controllers_survive_random_workloads() {
    for seed in 0..20u64 {
        // A pool of random benchmarks for this scenario.
        let pool: Vec<BenchmarkSpec> = (0..4)
            .map(|i| BenchmarkSpec::random(seed * 10 + i))
            .collect();
        let mix = WorkloadMix::from_benchmarks(8, &pool, MixPolicy::Random, seed).unwrap();
        // Sanity: the mix instantiates.
        assert_eq!(mix.streams().len(), 8);

        // The System builds its own workloads from the suite, so stress the
        // controllers through extreme budgets instead.
        let config = SystemConfig::builder()
            .cores(8)
            .mix(MixPolicy::Random)
            .seed(seed)
            .build()
            .unwrap();
        let budget = Watts::new((seed % 5) as f64 * 0.2 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let spec = system.spec();
        let mut controllers: Vec<Box<dyn PowerController>> = vec![
            Box::new(OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap()),
            Box::new(MaxBips::dp(spec.clone()).unwrap()),
            Box::new(SteepestDrop::new(spec).unwrap()),
        ];
        for _ in 0..30 {
            let obs = system.observation(budget);
            for ctrl in controllers.iter_mut() {
                let actions = ctrl.decide(&obs);
                assert_eq!(actions.len(), 8, "{} seed {seed}", ctrl.name());
                assert!(
                    actions.iter().all(|a| a.index() < 8),
                    "{} seed {seed}",
                    ctrl.name()
                );
            }
            // Advance the system with the first controller's actions.
            let actions = controllers[0].decide(&obs);
            system.step(&actions).unwrap();
        }
    }
}

/// Rapidly alternating budgets (a pathological power-management host) must
/// not destabilize the learned policy or produce invalid actions.
#[test]
fn odrl_survives_budget_thrash() {
    let config = SystemConfig::builder().cores(12).seed(61).build().unwrap();
    let max = config.max_power();
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), max * 0.6).unwrap();
    for e in 0..600u64 {
        // Budget flips every epoch between 30% and 90%.
        let budget = if e % 2 == 0 { max * 0.3 } else { max * 0.9 };
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|a| a.index() < 8));
        system.step(&actions).unwrap();
        let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
        assert!(sum.is_finite());
    }
    assert!(system.telemetry().total_instructions() > 0.0);
}

/// A single-core "many-core" is a degenerate but legal system.
#[test]
fn single_core_system_works_end_to_end() {
    let config = SystemConfig::builder().cores(1).seed(63).build().unwrap();
    let budget = Watts::new(0.5 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
    for _ in 0..200 {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        assert_eq!(actions.len(), 1);
        system.step(&actions).unwrap();
    }
    assert!(system.telemetry().total_instructions() > 0.0);
}

/// Non-square core counts (primes) exercise the floorplan fallback paths.
#[test]
fn awkward_core_counts_work() {
    for cores in [3usize, 7, 13, 31] {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(65)
            .build()
            .unwrap();
        let budget = Watts::new(0.6 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
        for _ in 0..50 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            system.step(&actions).unwrap();
        }
        assert!(
            system.telemetry().total_instructions() > 0.0,
            "{cores} cores"
        );
    }
}

/// The full level range is actually reachable: over a long exploratory run
/// every VF level appears in some decision.
#[test]
fn exploration_reaches_every_level() {
    let config = SystemConfig::builder().cores(8).seed(67).build().unwrap();
    let budget = Watts::new(0.6 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
    let mut seen = [false; 8];
    for _ in 0..400 {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        for a in &actions {
            seen[a.index()] = true;
        }
        system.step(&actions).unwrap();
    }
    assert!(seen.iter().all(|&s| s), "levels seen: {seen:?}");
}
