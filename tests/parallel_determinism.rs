//! Cross-crate determinism guarantees for the parallel execution layer.
//!
//! The parallelism knob must never change *what* is computed, only how
//! many threads compute it: a 64-core, 500-epoch closed loop has to
//! produce bit-identical telemetry and Q-tables whether the epoch update
//! and the OD-RL decide path run serially or sharded, and the benchmark
//! harness has to report identical `RunSummary` values at every shard
//! count.

use odrl::core::PolicySnapshot;
use odrl::prelude::*;
use odrl_bench::{run_scenario, run_scenarios_parallel, ControllerKind, Scenario};

const CORES: usize = 64;
const EPOCHS: u64 = 500;
const SEED: u64 = 42;
const BUDGET_FRAC: f64 = 0.6;

/// Drives a full closed loop (system + OD-RL controller) with the given
/// parallelism on BOTH the simulator and the controller, and returns
/// every observable the run produces: telemetry totals and the learned
/// policy.
fn closed_loop(par: Parallelism) -> (f64, f64, u64, PolicySnapshot) {
    let config = SystemConfig::builder()
        .cores(CORES)
        .mix(MixPolicy::RoundRobin)
        .seed(SEED)
        .parallelism(par)
        .build()
        .expect("valid config");
    let budget = Watts::new(BUDGET_FRAC * config.max_power().value());
    let mut system = System::new(config).expect("valid system");
    let odrl_config = OdRlConfig {
        parallelism: par,
        ..OdRlConfig::default()
    };
    let mut ctrl =
        OdRlController::new(odrl_config, &system.spec(), budget).expect("valid OD-RL config");
    let mut actions = vec![LevelId(0); system.num_cores()];
    for _ in 0..EPOCHS {
        let obs = system.observation(budget);
        ctrl.decide_into(&obs, &mut actions);
        system.step(&actions).expect("valid actions");
    }
    let telemetry = system.telemetry();
    (
        telemetry.total_instructions(),
        telemetry.total_energy().value(),
        telemetry.epochs(),
        ctrl.export_policy(),
    )
}

#[test]
fn serial_and_parallel_closed_loops_are_bit_identical() {
    let (instr, energy, epochs, policy) = closed_loop(Parallelism::Serial);
    assert!(instr > 0.0, "the run must do real work");
    assert_eq!(epochs, EPOCHS);

    for par in [
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Threads(8),
        Parallelism::Auto,
    ] {
        let (p_instr, p_energy, p_epochs, p_policy) = closed_loop(par);
        // Telemetry totals must match to the last bit, not approximately:
        // the sharded reduction is required to preserve serial order.
        assert_eq!(instr, p_instr, "instructions diverged under {par:?}");
        assert_eq!(energy, p_energy, "energy diverged under {par:?}");
        assert_eq!(epochs, p_epochs, "epoch count diverged under {par:?}");
        assert_eq!(policy, p_policy, "Q-tables diverged under {par:?}");
        // And the serialized Q-table digest — byte-for-byte equality of
        // the snapshot's canonical form — must agree as well.
        let digest = serde_json::to_string(&policy).expect("serializable snapshot");
        let p_digest = serde_json::to_string(&p_policy).expect("serializable snapshot");
        assert_eq!(digest, p_digest, "policy digest diverged under {par:?}");
    }
}

#[test]
fn shard_count_sweep_yields_identical_run_summaries() {
    let scenario_with = |par: Parallelism| Scenario {
        cores: CORES,
        budget_frac: BUDGET_FRAC,
        epochs: EPOCHS,
        mix: MixPolicy::RoundRobin,
        seed: SEED,
        parallelism: par,
    };

    let baseline = run_scenario(&scenario_with(Parallelism::Serial), ControllerKind::OdRl);
    assert!(baseline.total_instructions > 0.0);

    // 1/2/4/8 intra-epoch shards, fanned out across worker threads by the
    // harness itself — both layers of parallelism at once.
    let cells: Vec<(Scenario, ControllerKind)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| (scenario_with(Parallelism::Threads(n)), ControllerKind::OdRl))
        .collect();
    let summaries = run_scenarios_parallel(&cells, Parallelism::Threads(2));

    assert_eq!(summaries.len(), cells.len());
    for (summary, (scenario, _)) in summaries.iter().zip(&cells) {
        assert_eq!(
            summary, &baseline,
            "RunSummary diverged at {:?}",
            scenario.parallelism
        );
    }
}
