//! JSON round-trip tests for the configuration and report surface.
//!
//! Everything a user can put in a config file or read out of a run must
//! survive serialize -> deserialize unchanged, and invalid hand-edited
//! files must be rejected at parse time.

use odrl::core::OdRlConfig;
use odrl::manycore::{SensorModel, SyncModel, SystemConfig, VariationModel};
use odrl::metrics::{RunRecorder, RunSummary};
use odrl::power::{Seconds, VfTable, Watts};
use odrl::workload::{by_name, MixPolicy, Trace, WorkloadStream};

#[test]
fn system_config_roundtrip() {
    let config = SystemConfig::builder()
        .cores(48)
        .mix(MixPolicy::Homogeneous("canneal".into()))
        .sensors(SensorModel::new(0.02, 0.125).unwrap())
        .sync(SyncModel::barrier(4))
        .variation(VariationModel::typical())
        .transition_penalty(Seconds::new(10e-6))
        .seed(77)
        .build()
        .unwrap();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
    back.validate().unwrap();
}

#[test]
fn system_config_with_noc_roundtrip() {
    use odrl::thermal::Floorplan;
    let config = SystemConfig::builder()
        .cores(16)
        .noc(odrl_noc::NocConfig::for_floorplan(
            Floorplan::new(4, 4).unwrap(),
        ))
        .build()
        .unwrap();
    let json = serde_json::to_string(&config).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn odrl_config_roundtrip() {
    let config = OdRlConfig {
        thermal_limit: Some(82.5),
        include_level: true,
        algorithm: odrl::rl::Algorithm::DoubleQLearning,
        ..OdRlConfig::default()
    };
    let json = serde_json::to_string(&config).unwrap();
    let back: OdRlConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn trace_roundtrip_preserves_replay() {
    let mut stream = WorkloadStream::new(by_name("bodytrack").unwrap(), 3);
    let trace = Trace::record(&mut stream, 1e8, 1e6);
    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
    assert_eq!(
        trace.to_benchmark("t").unwrap(),
        back.to_benchmark("t").unwrap()
    );
}

#[test]
fn run_summary_roundtrip() {
    let mut rec = RunRecorder::new("roundtrip");
    for i in 0..20 {
        rec.record(
            Watts::new(10.0 + i as f64),
            Watts::new(15.0),
            1e6,
            Seconds::new(1e-3),
        );
    }
    let summary = rec.finish();
    let json = serde_json::to_string(&summary).unwrap();
    let back: RunSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(summary, back);
}

#[test]
fn hand_edited_vf_table_is_validated() {
    // A config file with a non-monotone table must fail to parse, not
    // silently produce a broken simulator.
    let bad = r#"{"levels":[{"voltage":1.2,"frequency":3.0},{"voltage":0.7,"frequency":1.0}]}"#;
    assert!(serde_json::from_str::<VfTable>(bad).is_err());
}

#[test]
fn defaulted_fields_allow_old_configs() {
    // A config written before sync/variation/noc existed still parses
    // (serde defaults), enabling forward-compatible config files.
    let config = SystemConfig::builder().cores(4).build().unwrap();
    let mut value: serde_json::Value = serde_json::to_value(&config).unwrap();
    let obj = value.as_object_mut().unwrap();
    obj.remove("sync");
    obj.remove("variation");
    obj.remove("noc");
    let back: SystemConfig = serde_json::from_value(value).unwrap();
    assert_eq!(back.sync, SyncModel::Independent);
    assert_eq!(back.variation, VariationModel::none());
    assert!(back.noc.is_none());
}
