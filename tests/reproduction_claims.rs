//! Scaled-down checks of the paper's three claims — the *shape* of each
//! result, at a size small enough for the test suite.
//!
//! The full-size numbers come from the `odrl-bench` binaries (see
//! EXPERIMENTS.md); these tests guard the qualitative ordering so a
//! regression cannot silently invert a headline result.

use odrl::controllers::{MaxBips, PidController, PidGains, PowerController, SteepestDrop};
use odrl::core::{OdRlConfig, OdRlController};
use odrl::manycore::{System, SystemConfig};
use odrl::metrics::RunRecorder;
use odrl::power::{LevelId, Watts};
use std::time::Instant;

const CORES: usize = 24;
const EPOCHS: u64 = 1_200;

fn summarize(
    mut ctrl: Box<dyn PowerController>,
    cfg: &SystemConfig,
    budget: Watts,
) -> odrl::metrics::RunSummary {
    let mut system = System::new(cfg.clone()).unwrap();
    let mut rec = RunRecorder::new(ctrl.name());
    for _ in 0..EPOCHS {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        let report = system.step(&actions).unwrap();
        rec.record(
            report.total_power,
            budget,
            report.total_instructions(),
            report.dt,
        );
    }
    rec.finish()
}

fn setting() -> (SystemConfig, Watts) {
    let cfg = SystemConfig::builder()
        .cores(CORES)
        .seed(17)
        .build()
        .unwrap();
    let budget = Watts::new(0.6 * cfg.max_power().value());
    (cfg, budget)
}

/// Claim 1 shape: OD-RL overshoots (in energy) less than the predictive
/// baselines, by a large factor.
#[test]
fn claim1_odrl_overshoots_less_than_baselines() {
    let (cfg, budget) = setting();
    let spec = cfg.spec();
    let odrl = summarize(
        Box::new(OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap()),
        &cfg,
        budget,
    );
    let maxbips = summarize(Box::new(MaxBips::dp(spec.clone()).unwrap()), &cfg, budget);
    let steepest = summarize(
        Box::new(SteepestDrop::new(spec.clone()).unwrap()),
        &cfg,
        budget,
    );

    for base in [&maxbips, &steepest] {
        assert!(
            odrl.overshoot_energy.value() < base.overshoot_energy.value(),
            "OD-RL overshoot {} J must beat {} at {} J",
            odrl.overshoot_energy.value(),
            base.name,
            base.overshoot_energy.value()
        );
    }
    // "up to 98% less": at this reduced scale demand at least 60% less
    // than the worst predictive baseline.
    let worst = maxbips
        .overshoot_energy
        .value()
        .max(steepest.overshoot_energy.value());
    assert!(
        odrl.overshoot_energy.value() < 0.4 * worst,
        "expected >=60% overshoot reduction, got {} vs {}",
        odrl.overshoot_energy.value(),
        worst
    );
}

/// Claim 2a shape: OD-RL's throughput per over-budget energy beats the
/// baselines'.
#[test]
fn claim2a_odrl_wins_throughput_per_overshoot_energy() {
    let (cfg, budget) = setting();
    let spec = cfg.spec();
    let odrl = summarize(
        Box::new(OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap()),
        &cfg,
        budget,
    );
    let maxbips = summarize(Box::new(MaxBips::dp(spec.clone()).unwrap()), &cfg, budget);
    let pid = summarize(
        Box::new(PidController::new(spec.clone(), PidGains::default()).unwrap()),
        &cfg,
        budget,
    );
    let tpoe = |s: &odrl::metrics::RunSummary| s.throughput_per_overshoot_energy();
    assert!(
        tpoe(&odrl) > tpoe(&maxbips),
        "TpOE: odrl {} vs maxbips {}",
        tpoe(&odrl),
        tpoe(&maxbips)
    );
    assert!(
        tpoe(&odrl) > tpoe(&pid),
        "TpOE: odrl {} vs pid {}",
        tpoe(&odrl),
        tpoe(&pid)
    );
}

/// Claim 2b shape: OD-RL's energy efficiency is at least in the same league
/// as the best baseline (the paper reports up to 23 % HIGHER; at reduced
/// scale we require >= 90 % of the best baseline and strictly better than
/// the worst).
#[test]
fn claim2b_odrl_energy_efficiency_is_competitive() {
    let (cfg, budget) = setting();
    let spec = cfg.spec();
    let odrl = summarize(
        Box::new(OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap()),
        &cfg,
        budget,
    );
    let baselines = [summarize(Box::new(MaxBips::dp(spec.clone()).unwrap()), &cfg, budget),
        summarize(
            Box::new(SteepestDrop::new(spec.clone()).unwrap()),
            &cfg,
            budget,
        ),
        summarize(
            Box::new(PidController::new(spec.clone(), PidGains::default()).unwrap()),
            &cfg,
            budget,
        )];
    let eff = |s: &odrl::metrics::RunSummary| s.instructions_per_joule();
    let best = baselines.iter().map(&eff).fold(0.0, f64::max);
    let worst = baselines.iter().map(&eff).fold(f64::MAX, f64::min);
    assert!(
        eff(&odrl) >= 0.9 * best,
        "efficiency {} should be within 10% of best baseline {best}",
        eff(&odrl)
    );
    assert!(
        eff(&odrl) > worst,
        "efficiency {} should beat the worst baseline {worst}",
        eff(&odrl)
    );
}

/// Claim 3 shape: OD-RL's per-decision cost is far below MaxBIPS-DP's at a
/// large core count (and exhaustive MaxBIPS cannot even be constructed).
#[test]
fn claim3_odrl_decides_much_faster_at_scale() {
    let cores = 256;
    let cfg = SystemConfig::builder()
        .cores(cores)
        .seed(2)
        .build()
        .unwrap();
    let budget = Watts::new(0.6 * cfg.max_power().value());
    let spec = cfg.spec();
    let mut system = System::new(cfg).unwrap();
    for _ in 0..3 {
        system.step(&vec![LevelId(4); cores]).unwrap();
    }
    let obs = system.observation(budget);

    let mut odrl = OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap();
    let mut maxbips = MaxBips::dp(spec.clone()).unwrap();

    let time = |ctrl: &mut dyn PowerController| {
        // Warmup then median of 9.
        for _ in 0..3 {
            ctrl.decide(&obs);
        }
        let mut ns: Vec<u128> = (0..9)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(ctrl.decide(&obs));
                t.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        ns[4]
    };
    let t_odrl = time(&mut odrl);
    let t_maxbips = time(&mut maxbips);
    assert!(
        t_maxbips > 5 * t_odrl,
        "MaxBIPS-DP ({t_maxbips} ns) should cost >5x OD-RL ({t_odrl} ns) at {cores} cores"
    );

    // Exhaustive MaxBIPS is simply infeasible at this size.
    assert!(
        odrl::controllers::MaxBips::new(spec, odrl::controllers::MaxBipsMode::Exhaustive).is_err()
    );
}
