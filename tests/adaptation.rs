//! Guards on the on-line adaptation dynamics (experiment E6): after a
//! budget step, the controller must re-converge quickly, in both
//! directions, without destabilizing.

use odrl::controllers::PowerController;
use odrl::core::{OdRlConfig, OdRlController};
use odrl::manycore::{System, SystemConfig};
use odrl::power::Watts;

struct Window {
    power: f64,
    over: u32,
    n: u32,
}

fn run_phase(
    system: &mut System,
    ctrl: &mut OdRlController,
    budget: Watts,
    epochs: u64,
    tail: u64,
) -> Window {
    let mut w = Window {
        power: 0.0,
        over: 0,
        n: 0,
    };
    for e in 0..epochs {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        let report = system.step(&actions).unwrap();
        if e >= epochs - tail {
            w.power += report.total_power.value();
            if report.total_power > budget {
                w.over += 1;
            }
            w.n += 1;
        }
    }
    w.power /= w.n as f64;
    w
}

#[test]
fn recovers_from_budget_step_down() {
    let config = SystemConfig::builder().cores(24).seed(71).build().unwrap();
    let max = config.max_power();
    let mut system = System::new(config).unwrap();
    let mut ctrl =
        OdRlController::new(OdRlConfig::default(), &system.spec(), max * 0.8).unwrap();

    // Warm up at a loose cap.
    run_phase(&mut system, &mut ctrl, max * 0.8, 600, 100);

    // Step the cap down by a third; within 400 epochs the controller must
    // (a) be back under the cap on average and (b) be *using* most of it.
    let tight = max * 0.5;
    let settled = run_phase(&mut system, &mut ctrl, tight, 400, 150);
    assert!(
        settled.power <= tight.value() * 1.05,
        "settled at {} vs cap {tight}",
        settled.power
    );
    assert!(
        settled.power >= tight.value() * 0.75,
        "under-using the new cap: {} vs {tight}",
        settled.power
    );
    let over_frac = settled.over as f64 / settled.n as f64;
    assert!(over_frac < 0.15, "overshoot fraction {over_frac}");
}

#[test]
fn recovers_from_budget_step_up() {
    let config = SystemConfig::builder().cores(24).seed(73).build().unwrap();
    let max = config.max_power();
    let mut system = System::new(config).unwrap();
    let mut ctrl =
        OdRlController::new(OdRlConfig::default(), &system.spec(), max * 0.45).unwrap();

    let before = run_phase(&mut system, &mut ctrl, max * 0.45, 600, 100);
    // Loosen the cap: throughput-seeking must raise power meaningfully.
    let after = run_phase(&mut system, &mut ctrl, max * 0.75, 400, 150);
    assert!(
        after.power > before.power * 1.15,
        "power should rise after the cap loosens: {} -> {}",
        before.power,
        after.power
    );
}

#[test]
fn coverage_keeps_growing_across_steps() {
    let config = SystemConfig::builder().cores(16).seed(75).build().unwrap();
    let max = config.max_power();
    let mut system = System::new(config).unwrap();
    let mut ctrl =
        OdRlController::new(OdRlConfig::default(), &system.spec(), max * 0.8).unwrap();

    run_phase(&mut system, &mut ctrl, max * 0.8, 300, 10);
    let c1 = ctrl.coverage();
    run_phase(&mut system, &mut ctrl, max * 0.5, 300, 10);
    let c2 = ctrl.coverage();
    // The step pushes agents into new affordability bins: coverage grows.
    assert!(c2 > c1, "coverage should grow after a step: {c1} -> {c2}");
}
