//! End-to-end integration tests: the full closed loop across all crates.

use odrl::controllers::{
    MaxBips, PidController, PidGains, PowerController, PriorityGreedy, StaticUniform, SteepestDrop,
};
use odrl::core::{OdRlConfig, OdRlController};
use odrl::manycore::{System, SystemConfig};
use odrl::metrics::{RunRecorder, RunSummary};
use odrl::power::Watts;
use odrl::workload::MixPolicy;

fn run(
    ctrl: &mut dyn PowerController,
    config: &SystemConfig,
    budget: Watts,
    epochs: u64,
) -> RunSummary {
    let mut system = System::new(config.clone()).unwrap();
    let mut rec = RunRecorder::new(ctrl.name());
    for _ in 0..epochs {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        let report = system.step(&actions).unwrap();
        rec.record(
            report.total_power,
            budget,
            report.total_instructions(),
            report.dt,
        );
    }
    rec.finish()
}

fn config(cores: usize, seed: u64) -> SystemConfig {
    SystemConfig::builder()
        .cores(cores)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn all_controllers_complete_a_full_run() {
    let cfg = config(16, 1);
    let budget = Watts::new(0.6 * cfg.max_power().value());
    let spec = cfg.spec();
    let mut controllers: Vec<Box<dyn PowerController>> = vec![
        Box::new(OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap()),
        Box::new(MaxBips::dp(spec.clone()).unwrap()),
        Box::new(SteepestDrop::new(spec.clone()).unwrap()),
        Box::new(PidController::new(spec.clone(), PidGains::default()).unwrap()),
        Box::new(StaticUniform::for_budget(spec.clone(), budget).unwrap()),
        Box::new(PriorityGreedy::new(spec.clone()).unwrap()),
    ];
    for ctrl in controllers.iter_mut() {
        let s = run(ctrl.as_mut(), &cfg, budget, 200);
        assert_eq!(s.epochs, 200, "{}", s.name);
        assert!(s.total_instructions > 0.0, "{}", s.name);
        assert!(s.mean_power.value() > 0.0, "{}", s.name);
    }
}

#[test]
fn odrl_average_power_respects_budget() {
    let cfg = config(32, 7);
    let budget = Watts::new(0.55 * cfg.max_power().value());
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &cfg.spec(), budget).unwrap();
    let s = run(&mut ctrl, &cfg, budget, 1_000);
    assert!(
        s.mean_power.value() <= budget.value() * 1.08,
        "mean power {} exceeds budget {} by more than 8%",
        s.mean_power,
        budget
    );
}

#[test]
fn every_controller_is_deterministic_per_seed() {
    let cfg = config(12, 11);
    let budget = Watts::new(0.6 * cfg.max_power().value());
    let spec = cfg.spec();
    type Factory = fn(&odrl::manycore::SystemSpec, Watts) -> Box<dyn PowerController>;
    let make: Vec<(&str, Factory)> = vec![
        ("od-rl", |s, b| {
            Box::new(OdRlController::new(OdRlConfig::default(), s, b).unwrap())
        }),
        ("maxbips-dp", |s, _| {
            Box::new(MaxBips::dp(s.clone()).unwrap())
        }),
        ("steepest-drop", |s, _| {
            Box::new(SteepestDrop::new(s.clone()).unwrap())
        }),
        ("pid", |s, _| {
            Box::new(PidController::new(s.clone(), PidGains::default()).unwrap())
        }),
    ];
    for (name, factory) in make {
        let a = run(factory(&spec, budget).as_mut(), &cfg, budget, 150);
        let b = run(factory(&spec, budget).as_mut(), &cfg, budget, 150);
        assert_eq!(a.total_instructions, b.total_instructions, "{name}");
        assert_eq!(a.total_energy, b.total_energy, "{name}");
        assert_eq!(a.overshoot_energy, b.overshoot_energy, "{name}");
    }
}

#[test]
fn tighter_budgets_mean_less_throughput_for_odrl() {
    let cfg = config(16, 3);
    let max = cfg.max_power();
    let mut throughputs = Vec::new();
    for frac in [0.4, 0.7, 1.0] {
        let budget = max * frac;
        let mut ctrl = OdRlController::new(OdRlConfig::default(), &cfg.spec(), budget).unwrap();
        let s = run(&mut ctrl, &cfg, budget, 800);
        throughputs.push(s.throughput_ips());
    }
    assert!(
        throughputs[0] < throughputs[2],
        "40% budget should be slower than 100%: {throughputs:?}"
    );
}

#[test]
fn homogeneous_memory_bound_mix_burns_less_power_at_cap() {
    // streamcluster (memory-bound) vs swaptions (compute-bound), both
    // uncapped at top level: memory-bound must draw less dynamic power
    // (activity derating) and retire far fewer instructions.
    let mk = |name: &str| {
        SystemConfig::builder()
            .cores(8)
            .mix(MixPolicy::Homogeneous(name.into()))
            .seed(5)
            .build()
            .unwrap()
    };
    let top = odrl::power::LevelId(7);
    let mut mem = System::new(mk("streamcluster")).unwrap();
    let mut cpu = System::new(mk("swaptions")).unwrap();
    for _ in 0..300 {
        mem.step(&[top; 8]).unwrap();
        cpu.step(&[top; 8]).unwrap();
    }
    assert!(mem.telemetry().total_instructions() < 0.5 * cpu.telemetry().total_instructions());
    assert!(mem.telemetry().total_energy() < cpu.telemetry().total_energy());
}

#[test]
fn sensor_noise_does_not_break_the_loop() {
    let cfg = SystemConfig::builder()
        .cores(8)
        .sensors(odrl::manycore::SensorModel::new(0.1, 0.5).unwrap())
        .seed(13)
        .build()
        .unwrap();
    let budget = Watts::new(0.5 * cfg.max_power().value());
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &cfg.spec(), budget).unwrap();
    let s = run(&mut ctrl, &cfg, budget, 400);
    assert!(s.total_instructions > 0.0);
    // Even with very noisy sensors the learned policy keeps average power
    // in the budget's vicinity.
    assert!(s.mean_power.value() < budget.value() * 1.3);
}
