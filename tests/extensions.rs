//! End-to-end integration tests for the extension features: VFI islands,
//! barrier workloads, process variation, NoC contention and the thermal
//! cap — each run through the full closed loop.

use odrl::controllers::{IslandController, IslandMap, PowerController, SteepestDrop};
use odrl::core::{OdRlConfig, OdRlController};
use odrl::manycore::{SyncModel, System, SystemConfig, VariationModel};
use odrl::metrics::RunRecorder;
use odrl::noc::NocConfig;
use odrl::power::Watts;
use odrl::thermal::Floorplan;

fn drive(
    system: &mut System,
    ctrl: &mut dyn PowerController,
    budget: Watts,
    epochs: u64,
) -> odrl::metrics::RunSummary {
    let mut rec = RunRecorder::new(ctrl.name());
    for _ in 0..epochs {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        let report = system.step(&actions).unwrap();
        rec.record(
            report.total_power,
            budget,
            report.total_instructions(),
            report.dt,
        );
    }
    rec.finish()
}

#[test]
fn islanded_odrl_completes_and_respects_budget() {
    let config = SystemConfig::builder().cores(16).seed(31).build().unwrap();
    let budget = Watts::new(0.55 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let map = IslandMap::uniform(16, 4).unwrap();
    let inner = OdRlController::new(
        OdRlConfig::default(),
        &map.island_spec(&system.spec()),
        budget,
    )
    .unwrap();
    let mut ctrl = IslandController::new(inner, map).unwrap();
    let s = drive(&mut system, &mut ctrl, budget, 800);
    assert_eq!(s.name, "od-rl@x4");
    assert!(s.total_instructions > 0.0);
    assert!(
        s.mean_power.value() <= budget.value() * 1.1,
        "islanded OD-RL mean power {} vs budget {budget}",
        s.mean_power
    );
}

#[test]
fn barrier_workloads_reduce_odrl_power_without_throughput_loss() {
    // With barrier gating, OD-RL should find that non-critical threads can
    // be throttled: its power drops far more than its throughput relative
    // to a predictive baseline.
    let config = SystemConfig::builder()
        .cores(16)
        .sync(SyncModel::barrier(4))
        .seed(33)
        .build()
        .unwrap();
    let budget = Watts::new(0.6 * config.max_power().value());

    let mut sys_rl = System::new(config.clone()).unwrap();
    let mut rl = OdRlController::new(OdRlConfig::default(), &sys_rl.spec(), budget).unwrap();
    let s_rl = drive(&mut sys_rl, &mut rl, budget, 1_200);

    let mut sys_sd = System::new(config).unwrap();
    let mut sd = SteepestDrop::new(sys_sd.spec()).unwrap();
    let s_sd = drive(&mut sys_sd, &mut sd, budget, 1_200);

    let throughput_ratio = s_rl.throughput_ips() / s_sd.throughput_ips();
    let power_ratio = s_rl.mean_power / s_sd.mean_power;
    assert!(
        throughput_ratio > 0.85,
        "OD-RL throughput ratio {throughput_ratio}"
    );
    assert!(
        power_ratio < throughput_ratio,
        "OD-RL should save proportionally more power than it loses \
         throughput: power {power_ratio} vs throughput {throughput_ratio}"
    );
}

#[test]
fn variation_does_not_break_odrl_budget_respect() {
    let config = SystemConfig::builder()
        .cores(16)
        .variation(VariationModel {
            sigma_dynamic: 0.05,
            sigma_leakage: 0.45,
        })
        .seed(35)
        .build()
        .unwrap();
    let budget = Watts::new(0.55 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
    let s = drive(&mut system, &mut ctrl, budget, 1_000);
    assert!(s.mean_power.value() <= budget.value() * 1.08);
    assert!(s.overshoot_fraction < 0.05, "{}", s.overshoot_fraction);
}

#[test]
fn noc_platform_full_loop() {
    let config = SystemConfig::builder()
        .cores(16)
        .noc(NocConfig::for_floorplan(Floorplan::new(4, 4).unwrap()))
        .seed(37)
        .build()
        .unwrap();
    let budget = Watts::new(0.6 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
    let s = drive(&mut system, &mut ctrl, budget, 600);
    assert!(s.total_instructions > 0.0);
    assert!(s.mean_power.value() <= budget.value() * 1.1);
}

#[test]
fn double_q_variant_matches_single_q_budget_behaviour() {
    let run = |algorithm| {
        let config = SystemConfig::builder().cores(12).seed(39).build().unwrap();
        let budget = Watts::new(0.55 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                algorithm,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        (drive(&mut system, &mut ctrl, budget, 800), budget)
    };
    let (single, budget) = run(odrl::rl::Algorithm::QLearning);
    let (double, _) = run(odrl::rl::Algorithm::DoubleQLearning);
    for s in [&single, &double] {
        assert!(s.mean_power.value() <= budget.value() * 1.1, "{}", s.name);
        assert!(s.total_instructions > 0.0);
    }
    // Both variants deliver comparable throughput (within 15%).
    let ratio = double.throughput_ips() / single.throughput_ips();
    assert!((0.85..1.15).contains(&ratio), "double/single ratio {ratio}");
}

#[test]
fn sensor_dropout_fault_injection() {
    // 15% of power reads fail (return zero). The controller must neither
    // panic nor lose budget compliance by more than noise allows.
    let config = SystemConfig::builder()
        .cores(16)
        .sensors(odrl::manycore::SensorModel::with_dropout(0.02, 0.0625, 0.15).unwrap())
        .seed(43)
        .build()
        .unwrap();
    let budget = Watts::new(0.55 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
    let s = drive(&mut system, &mut ctrl, budget, 1_000);
    assert!(s.total_instructions > 0.0);
    assert!(
        s.mean_power.value() <= budget.value() * 1.15,
        "dropout destabilized the cap: {} vs {budget}",
        s.mean_power
    );
    assert!(s.overshoot_fraction < 0.25, "{}", s.overshoot_fraction);
}

#[test]
fn everything_at_once_stays_stable() {
    // Islands + barriers + variation + NoC + thermal cap + noisy sensors,
    // all in one run: nothing panics, energy stays finite, budget respected.
    let config = SystemConfig::builder()
        .cores(16)
        .sync(SyncModel::barrier(4))
        .variation(VariationModel::typical())
        .noc(NocConfig::for_floorplan(Floorplan::new(4, 4).unwrap()))
        .sensors(odrl::manycore::SensorModel::new(0.05, 0.25).unwrap())
        .seed(41)
        .build()
        .unwrap();
    let budget = Watts::new(0.5 * config.max_power().value());
    let mut system = System::new(config).unwrap();
    let map = IslandMap::uniform(16, 2).unwrap();
    let inner = OdRlController::new(
        OdRlConfig {
            thermal_limit: Some(80.0),
            ..OdRlConfig::default()
        },
        &map.island_spec(&system.spec()),
        budget,
    )
    .unwrap();
    let mut ctrl = IslandController::new(inner, map).unwrap();
    let s = drive(&mut system, &mut ctrl, budget, 1_000);
    assert!(s.total_energy.value().is_finite());
    assert!(s.total_instructions > 0.0);
    assert!(system.telemetry().peak_temperature().value() < 120.0);
    assert!(s.mean_power.value() <= budget.value() * 1.15);
}
