//! Precomputed per-VF-level coefficient tables for the batch power kernel.
//!
//! [`CorePowerModel::power`] spends most of its time on level-dependent
//! factors: the dynamic `C·V²·f` product and the leakage voltage factor
//! `P_ref·(V/V_ref)·e^(kv·(V−V_ref))` (one `exp` per call). Both depend
//! only on the VF level, of which there are a handful, while the simulator
//! evaluates them for a thousand cores per epoch. [`PowerCoefficients`]
//! computes both factors once per level so the per-core loop is a pure
//! gather-multiply over flat `f64` slices — no transcendentals except the
//! temperature term, no enum matching, no wrapper round-trips — and is
//! bit-identical to the scalar model by construction (the scalar methods
//! are defined in terms of the same factored expressions).

use crate::model::CorePowerModel;
use crate::units::{Celsius, Watts};
use crate::vf::{LevelId, VfTable};

/// Per-VF-level coefficient tables derived from a [`CorePowerModel`] and a
/// [`VfTable`], plus the scalar temperature constants of the leakage model.
///
/// Build once per run with [`CorePowerModel::coefficients`]; evaluate whole
/// cores-length slices with [`PowerCoefficients::evaluate_into`]. Results
/// match per-core [`CorePowerModel::power`] calls bit for bit.
///
/// ```
/// use odrl_power::{Celsius, CorePowerModel, LevelId, VfTable, Watts};
///
/// let model = CorePowerModel::default();
/// let table = VfTable::alpha_like();
/// let coeffs = model.coefficients(&table);
///
/// let levels = [LevelId(3), LevelId(7)];
/// let activity = [0.8, 1.0];
/// let temperature = [Celsius::new(55.0), Celsius::new(80.0)];
/// let mut dynamic = [Watts::ZERO; 2];
/// let mut leakage = [Watts::ZERO; 2];
/// coeffs.evaluate_into(&levels, &activity, &temperature, &mut dynamic, &mut leakage);
///
/// let scalar = model.power(table.level(LevelId(7)), 1.0, Celsius::new(80.0));
/// assert_eq!(dynamic[1], scalar.dynamic);
/// assert_eq!(leakage[1], scalar.leakage);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCoefficients {
    /// `dyn_coef[l] = C·V_l²·f_l` — dynamic watts of level `l` at activity 1.
    dyn_coef: Vec<f64>,
    /// `leak_v[l] = P_ref·(V_l/V_ref)·e^(kv·(V_l−V_ref))` — the whole
    /// voltage-dependent leakage factor of level `l`, in watts.
    leak_v: Vec<f64>,
    /// Reference temperature of the leakage model, °C.
    t_ref: f64,
    /// Temperature increase that doubles leakage, °C.
    t_double: f64,
}

impl PowerCoefficients {
    /// Builds the tables for every level of `table` under `model`.
    pub fn new(model: &CorePowerModel, table: &VfTable) -> Self {
        let mut dyn_coef = Vec::with_capacity(table.len());
        let mut leak_v = Vec::with_capacity(table.len());
        for (_, level) in table.iter() {
            dyn_coef.push(model.dynamic.level_coefficient(level));
            leak_v.push(model.leakage.voltage_coefficient(level.voltage));
        }
        Self {
            dyn_coef,
            leak_v,
            t_ref: model.leakage.t_ref().value(),
            t_double: model.leakage.t_double(),
        }
    }

    /// Number of VF levels covered.
    pub fn levels(&self) -> usize {
        self.dyn_coef.len()
    }

    /// Batch power evaluation over parallel per-core slices: writes the
    /// nominal dynamic and leakage power of core `i` into `dynamic[i]` /
    /// `leakage[i]`. Per core this is one gather-multiply for the dynamic
    /// term and one gather-multiply plus `exp2` for the leakage term —
    /// bit-identical to `model.power(table.level(levels[i]), activity[i],
    /// temperature[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not all have the same length, or if any
    /// level id is out of range for the table this was built from.
    pub fn evaluate_into(
        &self,
        levels: &[LevelId],
        activity: &[f64],
        temperature: &[Celsius],
        dynamic: &mut [Watts],
        leakage: &mut [Watts],
    ) {
        let n = levels.len();
        assert!(
            activity.len() == n
                && temperature.len() == n
                && dynamic.len() == n
                && leakage.len() == n,
            "evaluate_into slices must have equal length"
        );
        let dyn_coef: &[f64] = &self.dyn_coef;
        let leak_v: &[f64] = &self.leak_v;
        let t_ref = self.t_ref;
        let t_double = self.t_double;
        for i in 0..n {
            let l = levels[i].0;
            dynamic[i] = Watts::new(activity[i].max(0.0) * dyn_coef[l]);
            let t_scale = ((temperature[i].value() - t_ref) / t_double).exp2();
            leakage[i] = Watts::new(leak_v[l] * t_scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicPowerModel;
    use crate::leakage::LeakagePowerModel;
    use crate::units::Volts;

    fn exercise(model: CorePowerModel, table: &VfTable) {
        let coeffs = model.coefficients(table);
        assert_eq!(coeffs.levels(), table.len());
        // Every level × a grid of activities (incl. negative and >1) and
        // temperatures must match the scalar model bit for bit.
        let activities = [-0.5, 0.0, 0.1, 0.37, 0.8, 1.0, 1.2];
        let temps = [-10.0, 25.0, 45.0, 60.0, 71.3, 85.0, 110.0];
        for (id, level) in table.iter() {
            for &a in &activities {
                for &t in &temps {
                    let temp = Celsius::new(t);
                    let mut dynamic = [Watts::ZERO];
                    let mut leakage = [Watts::ZERO];
                    coeffs.evaluate_into(&[id], &[a], &[temp], &mut dynamic, &mut leakage);
                    let scalar = model.power(level, a, temp);
                    assert_eq!(
                        dynamic[0].value().to_bits(),
                        scalar.dynamic.value().to_bits(),
                        "dynamic mismatch at level {id:?}, a={a}, t={t}"
                    );
                    assert_eq!(
                        leakage[0].value().to_bits(),
                        scalar.leakage.value().to_bits(),
                        "leakage mismatch at level {id:?}, a={a}, t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_scalar_model_bit_for_bit() {
        exercise(CorePowerModel::default(), &VfTable::alpha_like());
    }

    #[test]
    fn matches_scalar_model_with_custom_parameters() {
        let model = CorePowerModel::new(
            DynamicPowerModel::new(1.37).unwrap(),
            LeakagePowerModel::new(
                Watts::new(0.81),
                Volts::new(0.95),
                Celsius::new(55.0),
                2.1,
                22.5,
            )
            .unwrap(),
        );
        exercise(model, &VfTable::alpha_like());
    }

    #[test]
    fn batch_slices_match_per_core_calls() {
        let model = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let coeffs = model.coefficients(&table);
        let n = 257; // intentionally not a multiple of anything
        let levels: Vec<LevelId> = (0..n).map(|i| LevelId(i % table.len())).collect();
        let activity: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin().abs()).collect();
        let temperature: Vec<Celsius> = (0..n)
            .map(|i| Celsius::new(40.0 + (i as f64 * 0.13).cos() * 30.0))
            .collect();
        let mut dynamic = vec![Watts::ZERO; n];
        let mut leakage = vec![Watts::ZERO; n];
        coeffs.evaluate_into(&levels, &activity, &temperature, &mut dynamic, &mut leakage);
        for i in 0..n {
            let scalar = model.power(table.level(levels[i]), activity[i], temperature[i]);
            assert_eq!(dynamic[i], scalar.dynamic, "core {i} dynamic");
            assert_eq!(leakage[i], scalar.leakage, "core {i} leakage");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_slices() {
        let model = CorePowerModel::default();
        let coeffs = model.coefficients(&VfTable::alpha_like());
        let mut dynamic = [Watts::ZERO];
        let mut leakage = [Watts::ZERO];
        coeffs.evaluate_into(
            &[LevelId(0), LevelId(1)],
            &[1.0],
            &[Celsius::new(60.0)],
            &mut dynamic,
            &mut leakage,
        );
    }
}
