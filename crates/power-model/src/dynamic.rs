//! Dynamic (switching) power: `P_dyn = a · C_eff · V² · f`.

use crate::error::PowerModelError;
use crate::units::Watts;
use crate::vf::VfLevel;
use serde::{Deserialize, Serialize};

/// Activity-proportional CV²f dynamic power model for one core.
///
/// `c_eff` is the effective switched capacitance of the whole core in
/// nanofarads; with V in volts and f in gigahertz, `C[nF]·V²·f[GHz]`
/// conveniently comes out directly in watts (1e-9 F · 1e9 Hz = 1).
///
/// ```
/// use odrl_power::{DynamicPowerModel, VfLevel, Volts, GigaHertz};
/// let model = DynamicPowerModel::new(0.8).unwrap();
/// let nominal = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
/// let p = model.power(nominal, 1.0);
/// assert!((p.value() - 1.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicPowerModel {
    c_eff_nf: f64,
}

impl DynamicPowerModel {
    /// Creates a model with the given effective capacitance in nanofarads.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::InvalidParameter`] if `c_eff_nf` is not
    /// finite and positive.
    pub fn new(c_eff_nf: f64) -> Result<Self, PowerModelError> {
        if !(c_eff_nf.is_finite() && c_eff_nf > 0.0) {
            return Err(PowerModelError::InvalidParameter {
                name: "c_eff_nf",
                value: c_eff_nf,
            });
        }
        Ok(Self { c_eff_nf })
    }

    /// Effective switched capacitance in nanofarads.
    pub fn c_eff_nf(&self) -> f64 {
        self.c_eff_nf
    }

    /// Dynamic power at an operating point with a given activity factor.
    ///
    /// `activity` in `[0, 1+]` scales the switched capacitance with workload
    /// intensity (an idle core clock-gates most of its logic). Values are
    /// clamped at zero from below; values slightly above 1.0 are allowed for
    /// power-virus-like phases.
    ///
    /// The arithmetic is grouped as `a · (C·V²·f)` so that the per-level
    /// factor matches [`DynamicPowerModel::level_coefficient`] bit for bit —
    /// the batch kernel gathers precomputed coefficients and must agree with
    /// this scalar form exactly.
    pub fn power(&self, level: VfLevel, activity: f64) -> Watts {
        Watts::new(activity.max(0.0) * self.level_coefficient(level))
    }

    /// The level-dependent factor of the dynamic power: `C·V²·f`, i.e. the
    /// dynamic power at activity 1. Precomputed per VF level by
    /// [`crate::PowerCoefficients`] so the batch kernel reduces to one
    /// multiply per core.
    pub fn level_coefficient(&self, level: VfLevel) -> f64 {
        let v = level.voltage.value();
        let f = level.frequency.value();
        self.c_eff_nf * (v * v) * f
    }
}

impl Default for DynamicPowerModel {
    /// A 22 nm-class core: ~2 W dynamic at (1.1 V, 2.5 GHz) full activity.
    fn default() -> Self {
        Self { c_eff_nf: 0.66 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GigaHertz, Volts};

    fn vf(v: f64, f: f64) -> VfLevel {
        VfLevel::new(Volts::new(v), GigaHertz::new(f))
    }

    #[test]
    fn scales_quadratically_with_voltage() {
        let m = DynamicPowerModel::new(1.0).unwrap();
        let p1 = m.power(vf(1.0, 2.0), 1.0).value();
        let p2 = m.power(vf(2.0, 2.0), 1.0).value();
        assert!((p2 / p1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scales_linearly_with_frequency_and_activity() {
        let m = DynamicPowerModel::new(1.0).unwrap();
        let base = m.power(vf(1.0, 1.0), 1.0).value();
        assert!((m.power(vf(1.0, 3.0), 1.0).value() / base - 3.0).abs() < 1e-12);
        assert!((m.power(vf(1.0, 1.0), 0.5).value() / base - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_activity_clamps_to_zero() {
        let m = DynamicPowerModel::default();
        assert_eq!(m.power(vf(1.0, 2.0), -3.0), Watts::ZERO);
    }

    #[test]
    fn rejects_bad_capacitance() {
        assert!(DynamicPowerModel::new(0.0).is_err());
        assert!(DynamicPowerModel::new(-1.0).is_err());
        assert!(DynamicPowerModel::new(f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_calibrated_to_about_two_watts() {
        let m = DynamicPowerModel::default();
        let p = m.power(vf(1.1, 2.5), 1.0).value();
        assert!((1.5..2.5).contains(&p), "default dynamic power {p} W");
    }
}
