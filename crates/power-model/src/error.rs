//! Error types for the power-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating power-model components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerModelError {
    /// A voltage/frequency table was built with no levels.
    EmptyVfTable,
    /// A VF level has a non-positive or non-finite voltage or frequency.
    InvalidVfLevel {
        /// Index of the offending level.
        index: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// VF levels must be strictly increasing in both voltage and frequency.
    NonMonotonicVfTable {
        /// Index of the first level that breaks monotonicity.
        index: usize,
    },
    /// A level id referenced a level outside the table.
    LevelOutOfRange {
        /// The requested level index.
        requested: usize,
        /// Number of levels in the table.
        available: usize,
    },
    /// A model parameter was non-finite or out of its physical range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PowerModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyVfTable => write!(f, "voltage/frequency table has no levels"),
            Self::InvalidVfLevel { index, reason } => {
                write!(f, "invalid VF level at index {index}: {reason}")
            }
            Self::NonMonotonicVfTable { index } => write!(
                f,
                "VF table is not strictly increasing in voltage and frequency at index {index}"
            ),
            Self::LevelOutOfRange {
                requested,
                available,
            } => write!(
                f,
                "VF level {requested} out of range (table has {available} levels)"
            ),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
        }
    }
}

impl Error for PowerModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = PowerModelError::EmptyVfTable;
        assert_eq!(e.to_string(), "voltage/frequency table has no levels");
        let e = PowerModelError::LevelOutOfRange {
            requested: 9,
            available: 4,
        };
        assert!(e.to_string().contains("level 9"));
        assert!(e.to_string().contains("4 levels"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<PowerModelError>();
    }
}
