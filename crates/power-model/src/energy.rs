//! Energy accounting: cumulative, over-budget and per-interval energy.

use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Accumulates total and over-budget energy from a sequence of
/// (power, budget, duration) samples.
///
/// This is the book-keeping behind the paper's headline metrics: *budget
/// overshoot* (energy spent above the budget) and *throughput per
/// over-the-budget energy*.
///
/// ```
/// use odrl_power::{EnergyAccount, Watts, Seconds};
/// let mut acc = EnergyAccount::new();
/// acc.record(Watts::new(10.0), Watts::new(8.0), Seconds::new(1.0));
/// acc.record(Watts::new(6.0), Watts::new(8.0), Seconds::new(1.0));
/// assert_eq!(acc.total_energy().value(), 16.0);
/// assert_eq!(acc.overshoot_energy().value(), 2.0);
/// assert_eq!(acc.overshoot_intervals(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    total: Joules,
    overshoot: Joules,
    elapsed: Seconds,
    intervals: u64,
    overshoot_intervals: u64,
    peak_power: Watts,
    peak_overshoot: Watts,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interval at constant `power` against `budget`.
    ///
    /// Negative durations are ignored (recorded as zero-length).
    pub fn record(&mut self, power: Watts, budget: Watts, dt: Seconds) {
        let dt = dt.max(Seconds::ZERO);
        self.total += power.energy_over(dt);
        self.elapsed += dt;
        self.intervals += 1;
        self.peak_power = self.peak_power.max(power);
        let over = power - budget;
        if over > Watts::ZERO {
            self.overshoot += over.energy_over(dt);
            self.overshoot_intervals += 1;
            self.peak_overshoot = self.peak_overshoot.max(over);
        }
    }

    /// Total energy consumed so far.
    pub fn total_energy(&self) -> Joules {
        self.total
    }

    /// Energy consumed *above* the budget (the paper's "budget overshoot").
    pub fn overshoot_energy(&self) -> Joules {
        self.overshoot
    }

    /// Wall-clock time covered by the recorded intervals.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Number of recorded intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of intervals in which power exceeded the budget.
    pub fn overshoot_intervals(&self) -> u64 {
        self.overshoot_intervals
    }

    /// Fraction of intervals that exceeded the budget, in `[0, 1]`.
    pub fn overshoot_fraction(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.overshoot_intervals as f64 / self.intervals as f64
        }
    }

    /// Highest instantaneous power seen.
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// Largest single-interval power excess over the budget.
    pub fn peak_overshoot(&self) -> Watts {
        self.peak_overshoot
    }

    /// Mean power over the recorded time, or zero if nothing was recorded.
    pub fn average_power(&self) -> Watts {
        if self.elapsed.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.total.average_power(self.elapsed)
        }
    }

    /// Merges another account into this one (peaks take the max).
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.total += other.total;
        self.overshoot += other.overshoot;
        self.elapsed += other.elapsed;
        self.intervals += other.intervals;
        self.overshoot_intervals += other.overshoot_intervals;
        self.peak_power = self.peak_power.max(other.peak_power);
        self.peak_overshoot = self.peak_overshoot.max(other.peak_overshoot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_account_is_all_zero() {
        let acc = EnergyAccount::new();
        assert_eq!(acc.total_energy(), Joules::ZERO);
        assert_eq!(acc.overshoot_energy(), Joules::ZERO);
        assert_eq!(acc.overshoot_fraction(), 0.0);
        assert_eq!(acc.average_power(), Watts::ZERO);
    }

    #[test]
    fn under_budget_records_no_overshoot() {
        let mut acc = EnergyAccount::new();
        acc.record(Watts::new(5.0), Watts::new(8.0), Seconds::new(2.0));
        assert_eq!(acc.total_energy().value(), 10.0);
        assert_eq!(acc.overshoot_energy(), Joules::ZERO);
        assert_eq!(acc.overshoot_intervals(), 0);
        assert_eq!(acc.peak_overshoot(), Watts::ZERO);
    }

    #[test]
    fn exactly_at_budget_is_not_overshoot() {
        let mut acc = EnergyAccount::new();
        acc.record(Watts::new(8.0), Watts::new(8.0), Seconds::new(1.0));
        assert_eq!(acc.overshoot_intervals(), 0);
    }

    #[test]
    fn overshoot_fraction_counts_intervals() {
        let mut acc = EnergyAccount::new();
        for i in 0..10 {
            let p = if i < 3 { 10.0 } else { 5.0 };
            acc.record(Watts::new(p), Watts::new(8.0), Seconds::new(0.001));
        }
        assert!((acc.overshoot_fraction() - 0.3).abs() < 1e-12);
        assert!((acc.peak_overshoot().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_matches_total_over_time() {
        let mut acc = EnergyAccount::new();
        acc.record(Watts::new(4.0), Watts::new(10.0), Seconds::new(1.0));
        acc.record(Watts::new(8.0), Watts::new(10.0), Seconds::new(1.0));
        assert!((acc.average_power().value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn negative_duration_is_ignored() {
        let mut acc = EnergyAccount::new();
        acc.record(Watts::new(4.0), Watts::new(2.0), Seconds::new(-1.0));
        assert_eq!(acc.total_energy(), Joules::ZERO);
        assert_eq!(acc.overshoot_energy(), Joules::ZERO);
        // The interval is still counted (as an instantaneous sample).
        assert_eq!(acc.intervals(), 1);
    }

    #[test]
    fn merge_combines_accounts() {
        let mut a = EnergyAccount::new();
        a.record(Watts::new(10.0), Watts::new(8.0), Seconds::new(1.0));
        let mut b = EnergyAccount::new();
        b.record(Watts::new(4.0), Watts::new(8.0), Seconds::new(3.0));
        a.merge(&b);
        assert_eq!(a.total_energy().value(), 22.0);
        assert_eq!(a.overshoot_energy().value(), 2.0);
        assert_eq!(a.intervals(), 2);
        assert_eq!(a.elapsed().value(), 4.0);
        assert_eq!(a.peak_power().value(), 10.0);
    }
}
