//! Leakage (static) power with voltage and temperature dependence.

use crate::error::PowerModelError;
use crate::units::{Celsius, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Exponential-in-voltage, exponential-in-temperature leakage model:
///
/// `P_leak(V, T) = P_ref · (V / V_ref) · e^(kv·(V − V_ref)) · 2^((T − T_ref)/T_double)`
///
/// This is the standard compact form used by architecture-level power tools:
/// subthreshold leakage current grows roughly exponentially with supply
/// voltage (via DIBL) and doubles every 20–30 °C.
///
/// ```
/// use odrl_power::{LeakagePowerModel, Volts, Celsius};
/// let m = LeakagePowerModel::default();
/// let cool = m.power(Volts::new(1.0), Celsius::new(50.0));
/// let hot = m.power(Volts::new(1.0), Celsius::new(75.0));
/// assert!(hot > cool);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakagePowerModel {
    /// Leakage power at (`v_ref`, `t_ref`).
    p_ref: Watts,
    /// Reference voltage.
    v_ref: Volts,
    /// Reference temperature.
    t_ref: Celsius,
    /// Voltage sensitivity exponent (1/V).
    kv: f64,
    /// Temperature increase that doubles leakage (°C).
    t_double: f64,
}

impl LeakagePowerModel {
    /// Creates a leakage model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::InvalidParameter`] if any parameter is
    /// non-finite, `p_ref`/`v_ref`/`t_double` is non-positive, or `kv` is
    /// negative.
    pub fn new(
        p_ref: Watts,
        v_ref: Volts,
        t_ref: Celsius,
        kv: f64,
        t_double: f64,
    ) -> Result<Self, PowerModelError> {
        let check = |name: &'static str, value: f64, positive: bool| {
            if !value.is_finite() || (positive && value <= 0.0) {
                Err(PowerModelError::InvalidParameter { name, value })
            } else {
                Ok(())
            }
        };
        check("p_ref", p_ref.value(), true)?;
        check("v_ref", v_ref.value(), true)?;
        check("t_ref", t_ref.value(), false)?;
        check("kv", kv, false)?;
        if kv < 0.0 {
            return Err(PowerModelError::InvalidParameter {
                name: "kv",
                value: kv,
            });
        }
        check("t_double", t_double, true)?;
        Ok(Self {
            p_ref,
            v_ref,
            t_ref,
            kv,
            t_double,
        })
    }

    /// Leakage power at the given supply voltage and temperature.
    ///
    /// Evaluated as `(P_ref · v_scale) · t_scale`: the voltage factor is
    /// exactly [`LeakagePowerModel::voltage_coefficient`] and the
    /// temperature factor [`LeakagePowerModel::temperature_scale`], so the
    /// batch kernel (which precomputes the voltage factor per VF level) is
    /// bit-identical to this scalar form.
    pub fn power(&self, voltage: Volts, temperature: Celsius) -> Watts {
        Watts::new(self.voltage_coefficient(voltage) * self.temperature_scale(temperature))
    }

    /// The voltage-dependent factor of the leakage power, in watts:
    /// `P_ref · (V/V_ref) · e^(kv·(V − V_ref))`. Depends only on the VF
    /// level, so [`crate::PowerCoefficients`] precomputes it per level.
    pub fn voltage_coefficient(&self, voltage: Volts) -> f64 {
        let v = voltage.value().max(0.0);
        let vr = self.v_ref.value();
        let v_scale = (v / vr) * (self.kv * (v - vr)).exp();
        self.p_ref.value() * v_scale
    }

    /// The dimensionless temperature factor: `2^((T − T_ref)/T_double)`.
    pub fn temperature_scale(&self, temperature: Celsius) -> f64 {
        ((temperature.value() - self.t_ref.value()) / self.t_double).exp2()
    }

    /// Reference leakage power (at `v_ref`, `t_ref`).
    pub fn p_ref(&self) -> Watts {
        self.p_ref
    }

    /// Reference voltage.
    pub fn v_ref(&self) -> Volts {
        self.v_ref
    }

    /// Reference temperature.
    pub fn t_ref(&self) -> Celsius {
        self.t_ref
    }

    /// Voltage sensitivity exponent (1/V).
    pub fn kv(&self) -> f64 {
        self.kv
    }

    /// Temperature increase that doubles leakage (°C).
    pub fn t_double(&self) -> f64 {
        self.t_double
    }
}

impl Default for LeakagePowerModel {
    /// 22 nm-class defaults: 0.5 W leakage per core at (1.0 V, 60 °C),
    /// leakage doubling every 30 °C, moderate voltage sensitivity. The
    /// doubling interval is chosen jointly with the thermal resistance so
    /// the leakage–temperature feedback has a stable fixed point at full
    /// load (no thermal runaway at the top VF level).
    fn default() -> Self {
        Self {
            p_ref: Watts::new(0.5),
            v_ref: Volts::new(1.0),
            t_ref: Celsius::new(60.0),
            kv: 1.5,
            t_double: 30.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_at_reference_point_is_p_ref() {
        let m = LeakagePowerModel::default();
        let p = m.power(m.v_ref(), m.t_ref());
        assert!((p.value() - m.p_ref().value()).abs() < 1e-12);
    }

    #[test]
    fn leakage_doubles_per_t_double() {
        let m = LeakagePowerModel::default();
        let p0 = m.power(Volts::new(1.0), Celsius::new(60.0)).value();
        let p1 = m.power(Volts::new(1.0), Celsius::new(90.0)).value();
        assert!((p1 / p0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_grows_superlinearly_with_voltage() {
        let m = LeakagePowerModel::default();
        let t = Celsius::new(60.0);
        let p_low = m.power(Volts::new(0.8), t).value();
        let p_high = m.power(Volts::new(1.2), t).value();
        // Superlinear: ratio exceeds the plain voltage ratio 1.5x.
        assert!(p_high / p_low > 1.5);
    }

    #[test]
    fn monotone_in_both_arguments() {
        let m = LeakagePowerModel::default();
        let mut last = 0.0;
        for i in 0..10 {
            let v = Volts::new(0.7 + 0.06 * i as f64);
            let p = m.power(v, Celsius::new(60.0)).value();
            assert!(p > last);
            last = p;
        }
        last = 0.0;
        for i in 0..10 {
            let t = Celsius::new(40.0 + 6.0 * i as f64);
            let p = m.power(Volts::new(1.0), t).value();
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LeakagePowerModel::new(
            Watts::new(0.0),
            Volts::new(1.0),
            Celsius::new(60.0),
            1.0,
            25.0
        )
        .is_err());
        assert!(LeakagePowerModel::new(
            Watts::new(0.5),
            Volts::new(1.0),
            Celsius::new(60.0),
            -1.0,
            25.0
        )
        .is_err());
        assert!(LeakagePowerModel::new(
            Watts::new(0.5),
            Volts::new(1.0),
            Celsius::new(60.0),
            1.0,
            0.0
        )
        .is_err());
    }

    #[test]
    fn negative_voltage_clamps_to_zero_leakage() {
        let m = LeakagePowerModel::default();
        let p = m.power(Volts::new(-1.0), Celsius::new(60.0));
        assert_eq!(p.value(), 0.0);
    }
}
