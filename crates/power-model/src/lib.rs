//! Power modeling substrate for the OD-RL many-core DVFS reproduction.
//!
//! This crate provides the physical foundation every other crate builds on:
//!
//! * [`units`] — `f64` newtypes for volts, gigahertz, watts, joules,
//!   degrees Celsius and seconds, so units cannot be confused at compile
//!   time;
//! * [`VfTable`] / [`VfLevel`] / [`LevelId`] — discrete DVFS operating
//!   points, mirroring hardware P-state tables;
//! * [`DynamicPowerModel`] — activity-proportional `a·C·V²·f` switching
//!   power;
//! * [`LeakagePowerModel`] — voltage- and temperature-dependent static
//!   power (exponential in V, doubling every `t_double` °C);
//! * [`CorePowerModel`] / [`PowerBreakdown`] — the combined per-core model;
//! * [`EnergyAccount`] — total / over-budget energy book-keeping behind the
//!   paper's overshoot and throughput-per-over-budget-energy metrics.
//!
//! # Example
//!
//! Compute the power of a core sweeping its DVFS range:
//!
//! ```
//! use odrl_power::{CorePowerModel, VfTable, Celsius};
//!
//! let model = CorePowerModel::default();
//! let table = VfTable::alpha_like();
//! let temp = Celsius::new(70.0);
//!
//! let mut last = 0.0;
//! for (_, level) in table.iter() {
//!     let p = model.total_power(level, 1.0, temp);
//!     assert!(p.value() > last); // power strictly increases with V/f
//!     last = p.value();
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coeffs;
pub mod dynamic;
pub mod energy;
pub mod error;
pub mod leakage;
pub mod model;
pub mod units;
pub mod vf;

pub use coeffs::PowerCoefficients;
pub use dynamic::DynamicPowerModel;
pub use energy::EnergyAccount;
pub use error::PowerModelError;
pub use leakage::LeakagePowerModel;
pub use model::{CorePowerModel, PowerBreakdown};
pub use units::{Celsius, GigaHertz, Joules, Seconds, Volts, Watts};
pub use vf::{LevelId, VfLevel, VfTable};
