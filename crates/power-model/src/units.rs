//! Physical-unit newtypes used across the workspace.
//!
//! Every quantity crossing a public API is wrapped in a unit newtype so the
//! compiler catches unit confusion (e.g. passing a frequency where a voltage
//! is expected). All wrappers are thin `f64` newtypes with `value()` /
//! `From<f64>` escape hatches for arithmetic-heavy inner loops.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $suffix),
                    None => write!(f, "{} {}", self.0, $suffix),
                }
            }
        }
    };
}

unit!(
    /// Supply voltage in volts.
    Volts,
    "V"
);
unit!(
    /// Clock frequency in gigahertz.
    GigaHertz,
    "GHz"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "degC"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);

impl Watts {
    /// Energy dissipated at this power over a duration.
    ///
    /// ```
    /// use odrl_power::{Watts, Seconds};
    /// let e = Watts::new(2.0).energy_over(Seconds::new(0.5));
    /// assert_eq!(e.value(), 1.0);
    /// ```
    #[inline]
    pub fn energy_over(self, dt: Seconds) -> Joules {
        Joules::new(self.0 * dt.value())
    }
}

impl Joules {
    /// Average power over a duration.
    ///
    /// ```
    /// use odrl_power::{Joules, Seconds};
    /// let p = Joules::new(3.0).average_power(Seconds::new(2.0));
    /// assert_eq!(p.value(), 1.5);
    /// ```
    #[inline]
    pub fn average_power(self, dt: Seconds) -> Watts {
        Watts::new(self.0 / dt.value())
    }
}

impl GigaHertz {
    /// Converts to plain hertz.
    #[inline]
    pub fn to_hertz(self) -> f64 {
        self.0 * 1e9
    }

    /// Cycle time in nanoseconds.
    #[inline]
    pub fn cycle_time_ns(self) -> f64 {
        1.0 / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Watts::new(3.0);
        let b = Watts::new(1.5);
        assert_eq!((a + b).value(), 4.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((a * 2.0).value(), 6.0);
        assert_eq!((2.0 * a).value(), 6.0);
        assert_eq!((a / 2.0).value(), 1.5);
        assert_eq!(a / b, 2.0);
        assert_eq!((-b).value(), -1.5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = [1.0, 2.0, 3.0].iter().map(|&w| Watts::new(w)).sum();
        assert_eq!(total.value(), 6.0);
        let by_ref: Watts = [Watts::new(1.0), Watts::new(2.0)].iter().sum();
        assert_eq!(by_ref.value(), 3.0);
    }

    #[test]
    fn comparison_and_clamp() {
        let lo = Volts::new(0.7);
        let hi = Volts::new(1.3);
        assert!(lo < hi);
        assert_eq!(Volts::new(2.0).clamp(lo, hi), hi);
        assert_eq!(Volts::new(0.1).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn energy_power_duality() {
        let p = Watts::new(4.0);
        let dt = Seconds::new(0.25);
        assert_eq!(p.energy_over(dt).average_power(dt).value(), 4.0);
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(format!("{:.1}", Watts::new(1.25)), "1.2 W");
        assert_eq!(format!("{:.2}", GigaHertz::new(2.0)), "2.00 GHz");
        assert_eq!(format!("{:.0}", Celsius::new(85.0)), "85 degC");
    }

    #[test]
    fn frequency_conversions() {
        let f = GigaHertz::new(2.0);
        assert_eq!(f.to_hertz(), 2e9);
        assert_eq!(f.cycle_time_ns(), 0.5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Joules::default(), Joules::ZERO);
        assert_eq!(Seconds::default().value(), 0.0);
    }

    #[test]
    fn abs_and_neg() {
        assert_eq!(Joules::new(-2.0).abs().value(), 2.0);
        assert!(!Watts::new(f64::NAN).is_finite());
        assert!(Watts::new(1.0).is_finite());
    }
}
