//! Voltage/frequency operating points and per-core DVFS level tables.

use crate::error::PowerModelError;
use crate::units::{GigaHertz, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a voltage/frequency level inside a [`VfTable`].
///
/// Level `0` is the lowest (slowest, most power-frugal) operating point;
/// higher indices are faster and hungrier. `LevelId` is a plain index
/// newtype so controllers can do arithmetic on it without accidentally
/// mixing it with core ids or other `usize` quantities.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LevelId(pub usize);

impl LevelId {
    /// The lowest operating point.
    pub const MIN: LevelId = LevelId(0);

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// One level up, saturating at `max`.
    #[inline]
    pub fn step_up(self, max: LevelId) -> LevelId {
        LevelId((self.0 + 1).min(max.0))
    }

    /// One level down, saturating at zero.
    #[inline]
    pub fn step_down(self) -> LevelId {
        LevelId(self.0.saturating_sub(1))
    }
}

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<usize> for LevelId {
    fn from(v: usize) -> Self {
        LevelId(v)
    }
}

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct VfLevel {
    /// Supply voltage at this operating point.
    pub voltage: Volts,
    /// Clock frequency at this operating point.
    pub frequency: GigaHertz,
}

impl VfLevel {
    /// Creates an operating point from a voltage and frequency.
    ///
    /// ```
    /// use odrl_power::{VfLevel, Volts, GigaHertz};
    /// let nominal = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
    /// assert_eq!(nominal.frequency.value(), 2.0);
    /// ```
    pub const fn new(voltage: Volts, frequency: GigaHertz) -> Self {
        Self { voltage, frequency }
    }

    fn validate(&self, index: usize) -> Result<(), PowerModelError> {
        let v = self.voltage.value();
        let f = self.frequency.value();
        if !(v.is_finite() && v > 0.0) {
            return Err(PowerModelError::InvalidVfLevel {
                index,
                reason: format!("voltage {v} must be finite and positive"),
            });
        }
        if !(f.is_finite() && f > 0.0) {
            return Err(PowerModelError::InvalidVfLevel {
                index,
                reason: format!("frequency {f} must be finite and positive"),
            });
        }
        Ok(())
    }
}

impl fmt::Display for VfLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.voltage, self.frequency)
    }
}

/// An ordered table of discrete voltage/frequency operating points.
///
/// The table is strictly increasing in both voltage and frequency: level 0
/// is the most power-frugal point and the last level is the fastest. This
/// mirrors the discrete P-state tables exposed by real DVFS hardware.
///
/// ```
/// use odrl_power::VfTable;
/// let table = VfTable::alpha_like();
/// assert!(table.len() >= 4);
/// assert!(table.min_frequency() < table.max_frequency());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "VfTableRepr")]
pub struct VfTable {
    levels: Vec<VfLevel>,
}

/// Serde-side representation: deserialization funnels through
/// [`VfTable::new`] so a hand-edited config file cannot smuggle in an
/// empty or non-monotone table.
#[derive(Deserialize)]
struct VfTableRepr {
    levels: Vec<VfLevel>,
}

impl TryFrom<VfTableRepr> for VfTable {
    type Error = PowerModelError;

    fn try_from(repr: VfTableRepr) -> Result<Self, Self::Error> {
        Self::new(repr.levels)
    }
}

impl VfTable {
    /// Builds a table from explicit levels.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::EmptyVfTable`] if `levels` is empty,
    /// [`PowerModelError::InvalidVfLevel`] if any voltage/frequency is not
    /// finite-positive, and [`PowerModelError::NonMonotonicVfTable`] if
    /// levels are not strictly increasing in both voltage and frequency.
    pub fn new(levels: Vec<VfLevel>) -> Result<Self, PowerModelError> {
        if levels.is_empty() {
            return Err(PowerModelError::EmptyVfTable);
        }
        for (i, level) in levels.iter().enumerate() {
            level.validate(i)?;
        }
        for i in 1..levels.len() {
            let prev = levels[i - 1];
            let cur = levels[i];
            if cur.voltage <= prev.voltage || cur.frequency <= prev.frequency {
                return Err(PowerModelError::NonMonotonicVfTable { index: i });
            }
        }
        Ok(Self { levels })
    }

    /// Builds a table of `n` evenly spaced levels between two endpoints.
    ///
    /// Voltage and frequency are both interpolated linearly, which is the
    /// usual first-order approximation for DVFS tables (V roughly tracks f
    /// inside the scaling range).
    ///
    /// # Errors
    ///
    /// Returns an error if `n < 2` or the endpoints are not increasing.
    pub fn linear(low: VfLevel, high: VfLevel, n: usize) -> Result<Self, PowerModelError> {
        if n < 2 {
            return Err(PowerModelError::InvalidParameter {
                name: "n",
                value: n as f64,
            });
        }
        let mut levels = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / (n - 1) as f64;
            levels.push(VfLevel::new(
                low.voltage + (high.voltage - low.voltage) * t,
                low.frequency + (high.frequency - low.frequency) * t,
            ));
        }
        Self::new(levels)
    }

    /// The default 8-level table used throughout the reproduction.
    ///
    /// Modeled after a 22 nm Alpha-like core with DVFS from (0.70 V, 1.0 GHz)
    /// to (1.26 V, 3.1 GHz) in 300 MHz steps — a plausible 2015-era many-core
    /// operating range.
    pub fn alpha_like() -> Self {
        Self::linear(
            VfLevel::new(Volts::new(0.70), GigaHertz::new(1.0)),
            VfLevel::new(Volts::new(1.26), GigaHertz::new(3.1)),
            8,
        )
        .expect("static table is valid")
    }

    /// An extended-range 12-level table reaching into near-threshold
    /// operation: (0.55 V, 0.3 GHz) … (1.26 V, 3.1 GHz).
    ///
    /// The low tail follows the near-threshold regime's steeper
    /// frequency-voltage slope (frequency collapses much faster than
    /// voltage as Vdd approaches Vt), giving power-capping controllers four
    /// ultra-frugal operating points below [`VfTable::alpha_like`]'s floor.
    /// Useful under very tight budgets, at the cost of a wider (slower to
    /// learn / search) action space.
    pub fn extended_range() -> Self {
        let ntc = [(0.55, 0.3), (0.60, 0.5), (0.65, 0.75)];
        let mut levels: Vec<VfLevel> = ntc
            .iter()
            .map(|&(v, f)| VfLevel::new(Volts::new(v), GigaHertz::new(f)))
            .collect();
        levels.extend(Self::alpha_like().levels);
        Self::new(levels).expect("static table is valid")
    }

    /// Number of levels in the table.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` if the table has no levels (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The highest (fastest) level id.
    pub fn max_level(&self) -> LevelId {
        LevelId(self.levels.len() - 1)
    }

    /// Looks up a level, or `None` if out of range.
    pub fn get(&self, id: LevelId) -> Option<VfLevel> {
        self.levels.get(id.0).copied()
    }

    /// Looks up a level.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`VfTable::get`] for a checked
    /// lookup.
    pub fn level(&self, id: LevelId) -> VfLevel {
        self.levels[id.0]
    }

    /// Validates a level id against this table.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::LevelOutOfRange`] if `id` does not index a
    /// level of this table.
    pub fn check(&self, id: LevelId) -> Result<LevelId, PowerModelError> {
        if id.0 < self.levels.len() {
            Ok(id)
        } else {
            Err(PowerModelError::LevelOutOfRange {
                requested: id.0,
                available: self.levels.len(),
            })
        }
    }

    /// Iterates over `(LevelId, VfLevel)` pairs from slowest to fastest.
    pub fn iter(&self) -> impl Iterator<Item = (LevelId, VfLevel)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, &l)| (LevelId(i), l))
    }

    /// All level ids, slowest to fastest.
    pub fn level_ids(&self) -> impl Iterator<Item = LevelId> {
        (0..self.levels.len()).map(LevelId)
    }

    /// The lowest frequency in the table.
    pub fn min_frequency(&self) -> GigaHertz {
        self.levels[0].frequency
    }

    /// The highest frequency in the table.
    pub fn max_frequency(&self) -> GigaHertz {
        self.levels[self.levels.len() - 1].frequency
    }

    /// The id of the slowest level whose frequency is at least `f`, or the
    /// top level if none reaches `f`.
    ///
    /// ```
    /// use odrl_power::{VfTable, GigaHertz};
    /// let t = VfTable::alpha_like();
    /// let id = t.level_for_frequency(GigaHertz::new(2.0));
    /// assert!(t.level(id).frequency.value() >= 2.0 - 1e-12);
    /// ```
    pub fn level_for_frequency(&self, f: GigaHertz) -> LevelId {
        for (id, level) in self.iter() {
            if level.frequency >= f {
                return id;
            }
        }
        self.max_level()
    }
}

impl<'a> IntoIterator for &'a VfTable {
    type Item = &'a VfLevel;
    type IntoIter = std::slice::Iter<'a, VfLevel>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vf(v: f64, f: f64) -> VfLevel {
        VfLevel::new(Volts::new(v), GigaHertz::new(f))
    }

    #[test]
    fn rejects_empty_table() {
        assert_eq!(VfTable::new(vec![]), Err(PowerModelError::EmptyVfTable));
    }

    #[test]
    fn rejects_non_monotonic_frequency() {
        let err = VfTable::new(vec![vf(0.8, 2.0), vf(0.9, 1.5)]).unwrap_err();
        assert_eq!(err, PowerModelError::NonMonotonicVfTable { index: 1 });
    }

    #[test]
    fn rejects_non_monotonic_voltage() {
        let err = VfTable::new(vec![vf(0.9, 1.0), vf(0.8, 2.0)]).unwrap_err();
        assert_eq!(err, PowerModelError::NonMonotonicVfTable { index: 1 });
    }

    #[test]
    fn rejects_nonpositive_values() {
        assert!(matches!(
            VfTable::new(vec![vf(0.0, 1.0)]),
            Err(PowerModelError::InvalidVfLevel { index: 0, .. })
        ));
        assert!(matches!(
            VfTable::new(vec![vf(1.0, f64::NAN)]),
            Err(PowerModelError::InvalidVfLevel { index: 0, .. })
        ));
    }

    #[test]
    fn linear_interpolates_endpoints() {
        let t = VfTable::linear(vf(0.7, 1.0), vf(1.3, 3.0), 5).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.level(LevelId(0)), vf(0.7, 1.0));
        assert_eq!(t.level(LevelId(4)), vf(1.3, 3.0));
        assert!((t.level(LevelId(2)).frequency.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_requires_two_levels() {
        assert!(VfTable::linear(vf(0.7, 1.0), vf(1.3, 3.0), 1).is_err());
    }

    #[test]
    fn alpha_like_is_well_formed() {
        let t = VfTable::alpha_like();
        assert_eq!(t.len(), 8);
        assert_eq!(t.max_level(), LevelId(7));
        assert!(t.min_frequency().value() > 0.9);
        assert!(t.max_frequency().value() < 3.2);
    }

    #[test]
    fn extended_range_is_a_superset_below_alpha_like() {
        let ext = VfTable::extended_range();
        let std = VfTable::alpha_like();
        assert_eq!(ext.len(), std.len() + 3);
        assert!(ext.min_frequency() < std.min_frequency());
        assert_eq!(ext.max_frequency(), std.max_frequency());
        // The standard table's levels appear unchanged at the tail.
        for (i, (_, level)) in std.iter().enumerate() {
            assert_eq!(ext.level(LevelId(i + 3)), level);
        }
    }

    #[test]
    fn check_validates_range() {
        let t = VfTable::alpha_like();
        assert!(t.check(LevelId(7)).is_ok());
        assert_eq!(
            t.check(LevelId(8)),
            Err(PowerModelError::LevelOutOfRange {
                requested: 8,
                available: 8
            })
        );
    }

    #[test]
    fn level_id_stepping_saturates() {
        let max = LevelId(3);
        assert_eq!(LevelId(3).step_up(max), LevelId(3));
        assert_eq!(LevelId(2).step_up(max), LevelId(3));
        assert_eq!(LevelId(0).step_down(), LevelId(0));
        assert_eq!(LevelId(2).step_down(), LevelId(1));
    }

    #[test]
    fn level_for_frequency_picks_slowest_satisfying() {
        let t = VfTable::linear(vf(0.7, 1.0), vf(1.3, 3.0), 5).unwrap();
        assert_eq!(t.level_for_frequency(GigaHertz::new(0.5)), LevelId(0));
        assert_eq!(t.level_for_frequency(GigaHertz::new(1.0)), LevelId(0));
        assert_eq!(t.level_for_frequency(GigaHertz::new(1.1)), LevelId(1));
        assert_eq!(t.level_for_frequency(GigaHertz::new(99.0)), LevelId(4));
    }

    #[test]
    fn iteration_orders_by_level() {
        let t = VfTable::alpha_like();
        let ids: Vec<usize> = t.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert_eq!(t.into_iter().count(), 8);
    }

    #[test]
    fn deserialization_validates() {
        let good =
            r#"{"levels":[{"voltage":0.7,"frequency":1.0},{"voltage":0.9,"frequency":2.0}]}"#;
        assert!(serde_json::from_str::<VfTable>(good).is_ok());
        // Non-monotone table must be rejected at parse time.
        let bad = r#"{"levels":[{"voltage":0.9,"frequency":2.0},{"voltage":0.7,"frequency":1.0}]}"#;
        assert!(serde_json::from_str::<VfTable>(bad).is_err());
        let empty = r#"{"levels":[]}"#;
        assert!(serde_json::from_str::<VfTable>(empty).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(LevelId(3).to_string(), "L3");
        let s = vf(1.0, 2.0).to_string();
        assert!(s.contains("1.00 V") && s.contains("2.00 GHz"));
    }
}
