//! Combined per-core power model (dynamic + leakage) and its breakdown.

use crate::dynamic::DynamicPowerModel;
use crate::leakage::LeakagePowerModel;
use crate::units::{Celsius, Watts};
use crate::vf::VfLevel;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Dynamic/leakage decomposition of a power sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Switching power.
    pub dynamic: Watts,
    /// Static (leakage) power.
    pub leakage: Watts,
}

impl PowerBreakdown {
    /// Total power (dynamic + leakage).
    #[inline]
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage
    }
}

impl Add for PowerBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            dynamic: self.dynamic + rhs.dynamic,
            leakage: self.leakage + rhs.leakage,
        }
    }
}

/// Full per-core power model combining [`DynamicPowerModel`] and
/// [`LeakagePowerModel`].
///
/// ```
/// use odrl_power::{CorePowerModel, VfTable, Celsius, LevelId};
/// let model = CorePowerModel::default();
/// let table = VfTable::alpha_like();
/// let p = model.power(table.level(LevelId(7)), 1.0, Celsius::new(70.0));
/// assert!(p.total().value() > p.leakage.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Switching-power component.
    pub dynamic: DynamicPowerModel,
    /// Leakage-power component.
    pub leakage: LeakagePowerModel,
}

impl CorePowerModel {
    /// Creates a model from its two components.
    pub fn new(dynamic: DynamicPowerModel, leakage: LeakagePowerModel) -> Self {
        Self { dynamic, leakage }
    }

    /// Power consumed at an operating point, activity factor and die
    /// temperature.
    pub fn power(&self, level: VfLevel, activity: f64, temperature: Celsius) -> PowerBreakdown {
        PowerBreakdown {
            dynamic: self.dynamic.power(level, activity),
            leakage: self.leakage.power(level.voltage, temperature),
        }
    }

    /// Total power — convenience for callers that do not need the breakdown.
    pub fn total_power(&self, level: VfLevel, activity: f64, temperature: Celsius) -> Watts {
        self.power(level, activity, temperature).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GigaHertz, Volts};
    use crate::vf::VfTable;

    #[test]
    fn breakdown_total_is_sum() {
        let m = CorePowerModel::default();
        let level = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
        let b = m.power(level, 0.8, Celsius::new(65.0));
        assert!((b.total().value() - (b.dynamic.value() + b.leakage.value())).abs() < 1e-12);
    }

    #[test]
    fn idle_core_still_leaks() {
        let m = CorePowerModel::default();
        let level = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
        let b = m.power(level, 0.0, Celsius::new(60.0));
        assert_eq!(b.dynamic, Watts::ZERO);
        assert!(b.leakage.value() > 0.0);
    }

    #[test]
    fn power_monotone_in_level() {
        let m = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let mut last = 0.0;
        for (_, level) in table.iter() {
            let p = m.total_power(level, 1.0, Celsius::new(70.0)).value();
            assert!(p > last, "power must increase with level");
            last = p;
        }
    }

    #[test]
    fn breakdown_addition() {
        let a = PowerBreakdown {
            dynamic: Watts::new(1.0),
            leakage: Watts::new(0.5),
        };
        let b = PowerBreakdown {
            dynamic: Watts::new(2.0),
            leakage: Watts::new(0.25),
        };
        let c = a + b;
        assert_eq!(c.dynamic.value(), 3.0);
        assert_eq!(c.leakage.value(), 0.75);
        assert_eq!(c.total().value(), 3.75);
    }

    #[test]
    fn top_level_power_is_plausible_for_22nm_core() {
        let m = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let p = m
            .total_power(table.level(table.max_level()), 1.0, Celsius::new(80.0))
            .value();
        // A fast 22nm core at max V/f and 80 degC burns a few watts.
        assert!((2.0..10.0).contains(&p), "top-level power {p} W");
    }
}
