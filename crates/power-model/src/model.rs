//! Combined per-core power model (dynamic + leakage) and its breakdown.

use crate::coeffs::PowerCoefficients;
use crate::dynamic::DynamicPowerModel;
use crate::leakage::LeakagePowerModel;
use crate::units::{Celsius, Watts};
use crate::vf::VfLevel;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Dynamic/leakage decomposition of a power sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Switching power.
    pub dynamic: Watts,
    /// Static (leakage) power.
    pub leakage: Watts,
}

impl PowerBreakdown {
    /// Total power (dynamic + leakage).
    #[inline]
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage
    }
}

impl Add for PowerBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            dynamic: self.dynamic + rhs.dynamic,
            leakage: self.leakage + rhs.leakage,
        }
    }
}

/// Full per-core power model combining [`DynamicPowerModel`] and
/// [`LeakagePowerModel`].
///
/// ```
/// use odrl_power::{CorePowerModel, VfTable, Celsius, LevelId};
/// let model = CorePowerModel::default();
/// let table = VfTable::alpha_like();
/// let p = model.power(table.level(LevelId(7)), 1.0, Celsius::new(70.0));
/// assert!(p.total().value() > p.leakage.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Switching-power component.
    pub dynamic: DynamicPowerModel,
    /// Leakage-power component.
    pub leakage: LeakagePowerModel,
}

impl CorePowerModel {
    /// Creates a model from its two components.
    pub fn new(dynamic: DynamicPowerModel, leakage: LeakagePowerModel) -> Self {
        Self { dynamic, leakage }
    }

    /// Power consumed at an operating point, activity factor and die
    /// temperature.
    pub fn power(&self, level: VfLevel, activity: f64, temperature: Celsius) -> PowerBreakdown {
        PowerBreakdown {
            dynamic: self.dynamic.power(level, activity),
            leakage: self.leakage.power(level.voltage, temperature),
        }
    }

    /// Total power — convenience for callers that do not need the breakdown.
    pub fn total_power(&self, level: VfLevel, activity: f64, temperature: Celsius) -> Watts {
        self.power(level, activity, temperature).total()
    }

    /// Precomputes the per-VF-level coefficient tables the batch kernel
    /// gathers from (see [`PowerCoefficients`]). Build once per run; the
    /// batch evaluation is bit-identical to per-core
    /// [`CorePowerModel::power`] calls.
    pub fn coefficients(&self, table: &crate::vf::VfTable) -> PowerCoefficients {
        PowerCoefficients::new(self, table)
    }

    /// Batch [`CorePowerModel::power`] over parallel per-core slices,
    /// writing the nominal dynamic and leakage power of core `i` into
    /// `dynamic[i]` / `leakage[i]`.
    ///
    /// The per-core arithmetic is exactly `power(levels[i], activity[i],
    /// temperature[i])`, so results are bit-identical to the scalar path;
    /// the batch form exists so a simulator with struct-of-arrays state can
    /// evaluate an epoch without allocating per-core temporaries.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not all have the same length.
    pub fn evaluate_into(
        &self,
        levels: &[VfLevel],
        activity: &[f64],
        temperature: &[Celsius],
        dynamic: &mut [Watts],
        leakage: &mut [Watts],
    ) {
        let n = levels.len();
        assert!(
            activity.len() == n
                && temperature.len() == n
                && dynamic.len() == n
                && leakage.len() == n,
            "evaluate_into slices must have equal length"
        );
        for i in 0..n {
            dynamic[i] = self.dynamic.power(levels[i], activity[i]);
            leakage[i] = self.leakage.power(levels[i].voltage, temperature[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GigaHertz, Volts};
    use crate::vf::VfTable;

    #[test]
    fn breakdown_total_is_sum() {
        let m = CorePowerModel::default();
        let level = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
        let b = m.power(level, 0.8, Celsius::new(65.0));
        assert!((b.total().value() - (b.dynamic.value() + b.leakage.value())).abs() < 1e-12);
    }

    #[test]
    fn idle_core_still_leaks() {
        let m = CorePowerModel::default();
        let level = VfLevel::new(Volts::new(1.0), GigaHertz::new(2.0));
        let b = m.power(level, 0.0, Celsius::new(60.0));
        assert_eq!(b.dynamic, Watts::ZERO);
        assert!(b.leakage.value() > 0.0);
    }

    #[test]
    fn power_monotone_in_level() {
        let m = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let mut last = 0.0;
        for (_, level) in table.iter() {
            let p = m.total_power(level, 1.0, Celsius::new(70.0)).value();
            assert!(p > last, "power must increase with level");
            last = p;
        }
    }

    #[test]
    fn evaluate_into_matches_scalar_power() {
        let m = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let levels: Vec<VfLevel> = table.iter().map(|(_, l)| l).collect();
        let n = levels.len();
        let activity: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let temperature: Vec<Celsius> = (0..n).map(|i| Celsius::new(50.0 + i as f64)).collect();
        let mut dynamic = vec![Watts::ZERO; n];
        let mut leakage = vec![Watts::ZERO; n];
        m.evaluate_into(&levels, &activity, &temperature, &mut dynamic, &mut leakage);
        for i in 0..n {
            let scalar = m.power(levels[i], activity[i], temperature[i]);
            assert_eq!(dynamic[i], scalar.dynamic, "core {i} dynamic");
            assert_eq!(leakage[i], scalar.leakage, "core {i} leakage");
        }
    }

    #[test]
    fn breakdown_addition() {
        let a = PowerBreakdown {
            dynamic: Watts::new(1.0),
            leakage: Watts::new(0.5),
        };
        let b = PowerBreakdown {
            dynamic: Watts::new(2.0),
            leakage: Watts::new(0.25),
        };
        let c = a + b;
        assert_eq!(c.dynamic.value(), 3.0);
        assert_eq!(c.leakage.value(), 0.75);
        assert_eq!(c.total().value(), 3.75);
    }

    #[test]
    fn top_level_power_is_plausible_for_22nm_core() {
        let m = CorePowerModel::default();
        let table = VfTable::alpha_like();
        let p = m
            .total_power(table.level(table.max_level()), 1.0, Celsius::new(80.0))
            .value();
        // A fast 22nm core at max V/f and 80 degC burns a few watts.
        assert!((2.0..10.0).contains(&p), "top-level power {p} W");
    }
}
