//! Property-based tests for the power-model crate invariants.

use odrl_power::{
    Celsius, CorePowerModel, DynamicPowerModel, EnergyAccount, GigaHertz, LeakagePowerModel,
    Seconds, VfLevel, VfTable, Volts, Watts,
};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = VfLevel> {
    (0.5f64..1.5, 0.5f64..4.0).prop_map(|(v, f)| VfLevel::new(Volts::new(v), GigaHertz::new(f)))
}

proptest! {
    /// Dynamic power is non-negative and monotone in activity.
    #[test]
    fn dynamic_power_monotone_in_activity(
        level in arb_level(),
        c in 0.1f64..2.0,
        a1 in 0.0f64..1.2,
        a2 in 0.0f64..1.2,
    ) {
        let m = DynamicPowerModel::new(c).unwrap();
        let p1 = m.power(level, a1);
        let p2 = m.power(level, a2);
        prop_assert!(p1.value() >= 0.0);
        if a1 <= a2 {
            prop_assert!(p1 <= p2);
        } else {
            prop_assert!(p1 >= p2);
        }
    }

    /// Leakage is positive and monotone in temperature for any valid model.
    #[test]
    fn leakage_monotone_in_temperature(
        v in 0.5f64..1.5,
        t1 in 20.0f64..110.0,
        t2 in 20.0f64..110.0,
    ) {
        let m = LeakagePowerModel::default();
        let p1 = m.power(Volts::new(v), Celsius::new(t1));
        let p2 = m.power(Volts::new(v), Celsius::new(t2));
        prop_assert!(p1.value() > 0.0);
        if t1 <= t2 {
            prop_assert!(p1 <= p2);
        }
    }

    /// Total power equals dynamic + leakage for any operating condition.
    #[test]
    fn breakdown_is_consistent(
        level in arb_level(),
        a in 0.0f64..1.2,
        t in 20.0f64..110.0,
    ) {
        let m = CorePowerModel::default();
        let b = m.power(level, a, Celsius::new(t));
        let total = m.total_power(level, a, Celsius::new(t));
        prop_assert!((b.total().value() - total.value()).abs() < 1e-12);
        prop_assert!((b.total().value() - b.dynamic.value() - b.leakage.value()).abs() < 1e-12);
    }

    /// A linear VF table is always valid and strictly monotone.
    #[test]
    fn linear_tables_are_monotone(
        v_lo in 0.5f64..0.9,
        dv in 0.05f64..0.8,
        f_lo in 0.5f64..1.5,
        df in 0.1f64..3.0,
        n in 2usize..16,
    ) {
        let t = VfTable::linear(
            VfLevel::new(Volts::new(v_lo), GigaHertz::new(f_lo)),
            VfLevel::new(Volts::new(v_lo + dv), GigaHertz::new(f_lo + df)),
            n,
        ).unwrap();
        prop_assert_eq!(t.len(), n);
        let levels: Vec<_> = t.iter().map(|(_, l)| l).collect();
        for w in levels.windows(2) {
            prop_assert!(w[0].voltage < w[1].voltage);
            prop_assert!(w[0].frequency < w[1].frequency);
        }
    }

    /// EnergyAccount invariants: overshoot energy never exceeds total energy
    /// when the budget is non-negative, and fractions stay in [0, 1].
    #[test]
    fn energy_account_invariants(
        samples in prop::collection::vec((0.0f64..100.0, 0.0f64..50.0, 1e-4f64..1e-2), 1..100),
    ) {
        let mut acc = EnergyAccount::new();
        for (p, b, dt) in &samples {
            acc.record(Watts::new(*p), Watts::new(*b), Seconds::new(*dt));
        }
        prop_assert!(acc.overshoot_energy() <= acc.total_energy());
        let f = acc.overshoot_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(acc.overshoot_intervals() <= acc.intervals());
        prop_assert!(acc.peak_overshoot() <= acc.peak_power());
        // Average power lies between 0 and the peak.
        prop_assert!(acc.average_power() >= Watts::ZERO);
        prop_assert!(acc.average_power() <= acc.peak_power() + Watts::new(1e-9));
    }

    /// `level_for_frequency` returns the slowest level meeting the request,
    /// and its frequency is >= the request whenever the request is in range.
    #[test]
    fn level_for_frequency_is_tight(
        f_req in 0.5f64..4.0,
        n in 2usize..12,
    ) {
        let t = VfTable::linear(
            VfLevel::new(Volts::new(0.7), GigaHertz::new(1.0)),
            VfLevel::new(Volts::new(1.3), GigaHertz::new(3.0)),
            n,
        ).unwrap();
        let id = t.level_for_frequency(GigaHertz::new(f_req));
        let chosen = t.level(id).frequency.value();
        if f_req <= t.max_frequency().value() {
            prop_assert!(chosen >= f_req - 1e-12);
            // No slower level also satisfies the request.
            if id.index() > 0 {
                let below = t.level(odrl_power::LevelId(id.index() - 1)).frequency.value();
                prop_assert!(below < f_req);
            }
        } else {
            prop_assert_eq!(id, t.max_level());
        }
    }
}
