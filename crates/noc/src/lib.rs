//! Mesh network-on-chip latency model with queueing-based congestion.
//!
//! In a tiled many-core, a cache miss travels the on-chip mesh to a memory
//! controller and back, so the effective DRAM latency a core sees depends on
//! (a) its Manhattan distance to the nearest controller and (b) how
//! congested the links on the way are — and congestion is created by *other
//! cores'* miss traffic, which in turn depends on the VF levels a controller
//! assigns. This crate provides that coupling for the simulator:
//!
//! * [`NocConfig`] — mesh geometry (reusing the thermal crate's
//!   [`Floorplan`]), memory-controller placement, per-hop latency, link
//!   bandwidth and the DRAM base latency;
//! * [`NocModel`] — precomputed XY routes per core and an M/M/1-style
//!   per-link waiting model: given each core's miss *traffic* (bytes/s),
//!   it returns each core's round-trip memory latency in nanoseconds.
//!
//! The model is the epoch-granularity analogue of analytical NoC
//! performance models (queueing over deterministic XY routes); it is not a
//! flit-level simulator, and doesn't need to be — the controller only ever
//! sees its effect through per-epoch IPS.
//!
//! # Example
//!
//! ```
//! use odrl_noc::{NocConfig, NocModel};
//! use odrl_thermal::Floorplan;
//!
//! let model = NocModel::new(NocConfig::for_floorplan(Floorplan::new(8, 8)?))?;
//! // Uniform light traffic: corner cores (next to a controller) see lower
//! // latency than the die center.
//! let latencies = model.latencies(&vec![1e9; 64]);
//! assert!(latencies[0] < latencies[27]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use odrl_thermal::Floorplan;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced when constructing a NoC model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocError {
    /// A parameter was non-finite or out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A memory-controller tile index was outside the mesh.
    ControllerOutOfRange {
        /// The offending tile index.
        tile: usize,
        /// Number of tiles in the mesh.
        tiles: usize,
    },
    /// No memory controllers were specified.
    NoControllers,
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            Self::ControllerOutOfRange { tile, tiles } => {
                write!(
                    f,
                    "memory controller at tile {tile} outside mesh of {tiles} tiles"
                )
            }
            Self::NoControllers => write!(f, "at least one memory controller is required"),
        }
    }
}

impl Error for NocError {}

/// NoC geometry and timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// The core mesh.
    pub floorplan: Floorplan,
    /// Tiles hosting memory controllers (requests route to the nearest).
    pub controllers: Vec<usize>,
    /// Router+link traversal latency per hop, in nanoseconds.
    pub hop_ns: f64,
    /// Usable bandwidth per directed link, in bytes per second.
    pub link_bandwidth: f64,
    /// DRAM access latency once at the controller, in nanoseconds.
    pub dram_ns: f64,
    /// Bytes moved per miss in each direction (request + response average).
    pub bytes_per_miss: f64,
}

impl NocConfig {
    /// The default configuration for a mesh: memory controllers at the four
    /// corners, 2 ns hops, 16 GB/s links, 60 ns DRAM, 72-byte messages
    /// (64-byte line + header).
    pub fn for_floorplan(floorplan: Floorplan) -> Self {
        let cols = floorplan.cols();
        let rows = floorplan.rows();
        let mut controllers = vec![floorplan.index(0, 0)];
        if cols > 1 {
            controllers.push(floorplan.index(cols - 1, 0));
        }
        if rows > 1 {
            controllers.push(floorplan.index(0, rows - 1));
        }
        if cols > 1 && rows > 1 {
            controllers.push(floorplan.index(cols - 1, rows - 1));
        }
        Self {
            floorplan,
            controllers,
            hop_ns: 2.0,
            link_bandwidth: 16e9,
            dram_ns: 60.0,
            bytes_per_miss: 72.0,
        }
    }

    fn validate(&self) -> Result<(), NocError> {
        if self.controllers.is_empty() {
            return Err(NocError::NoControllers);
        }
        let tiles = self.floorplan.tiles();
        for &c in &self.controllers {
            if c >= tiles {
                return Err(NocError::ControllerOutOfRange { tile: c, tiles });
            }
        }
        for (name, v) in [
            ("hop_ns", self.hop_ns),
            ("link_bandwidth", self.link_bandwidth),
            ("dram_ns", self.dram_ns),
            ("bytes_per_miss", self.bytes_per_miss),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(NocError::InvalidParameter { name, value: v });
            }
        }
        Ok(())
    }
}

/// A directed mesh link, identified by its source tile and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    East,
    West,
    North,
    South,
}

/// The NoC model: precomputed routes plus per-epoch congestion evaluation.
#[derive(Debug, Clone)]
pub struct NocModel {
    config: NocConfig,
    /// For each core: the directed-link indices of its round trip (XY route
    /// to its nearest controller; the return path uses the same links'
    /// opposite directions, which by symmetry carry the same flow, so we
    /// count each link once and double the latency).
    routes: Vec<Vec<usize>>,
    /// Number of directed links (tiles × 4 directions, flattened).
    links: usize,
}

impl NocModel {
    /// Builds the model, precomputing every core's XY route to its nearest
    /// memory controller.
    ///
    /// # Errors
    ///
    /// Returns a [`NocError`] if the configuration is invalid.
    pub fn new(config: NocConfig) -> Result<Self, NocError> {
        config.validate()?;
        let fp = config.floorplan;
        let links = fp.tiles() * 4;
        let routes = (0..fp.tiles())
            .map(|core| {
                let mc = *config
                    .controllers
                    .iter()
                    .min_by_key(|&&c| fp.manhattan(core, c))
                    .expect("validated non-empty");
                Self::xy_route(fp, core, mc)
            })
            .collect();
        Ok(Self {
            config,
            routes,
            links,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Hop count of core `i`'s one-way route to its controller.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hops(&self, i: usize) -> usize {
        self.routes[i].len()
    }

    fn link_id(tile: usize, dir: Dir) -> usize {
        tile * 4
            + match dir {
                Dir::East => 0,
                Dir::West => 1,
                Dir::North => 2,
                Dir::South => 3,
            }
    }

    /// Dimension-ordered (X then Y) route from `from` to `to`.
    fn xy_route(fp: Floorplan, from: usize, to: usize) -> Vec<usize> {
        let (mut x, mut y) = fp.position(from);
        let (tx, ty) = fp.position(to);
        let mut links = Vec::with_capacity(fp.manhattan(from, to));
        while x != tx {
            let dir = if tx > x { Dir::East } else { Dir::West };
            links.push(Self::link_id(fp.index(x, y), dir));
            x = if tx > x { x + 1 } else { x - 1 };
        }
        while y != ty {
            let dir = if ty > y { Dir::South } else { Dir::North };
            links.push(Self::link_id(fp.index(x, y), dir));
            y = if ty > y { y + 1 } else { y - 1 };
        }
        links
    }

    /// Computes each core's round-trip memory latency (ns) given each
    /// core's miss traffic in **misses per second**.
    ///
    /// Per-link waiting uses the M/M/1 factor `ρ/(1−ρ)` on top of the hop
    /// latency, with utilization clamped at 0.95 so overload saturates
    /// instead of diverging.
    ///
    /// # Panics
    ///
    /// Panics if `miss_rates.len()` differs from the mesh tile count.
    pub fn latencies(&self, miss_rates: &[f64]) -> Vec<f64> {
        let mut scratch = NocScratch::default();
        let mut out = Vec::new();
        self.latencies_into(miss_rates, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`NocModel::latencies`]: writes each core's
    /// round-trip latency into `out`, reusing the caller's scratch buffers.
    /// Buffers are sized on first use and reused verbatim afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `miss_rates.len()` differs from the mesh tile count.
    pub fn latencies_into(
        &self,
        miss_rates: &[f64],
        scratch: &mut NocScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            miss_rates.len(),
            self.config.floorplan.tiles(),
            "one miss rate per tile required"
        );
        // Accumulate bytes/s per directed link (request path; the response
        // path is the mirror image with identical flow).
        let flow = &mut scratch.flow;
        flow.clear();
        flow.resize(self.links, 0.0);
        for (i, &rate) in miss_rates.iter().enumerate() {
            let bytes = rate.max(0.0) * self.config.bytes_per_miss;
            for &l in &self.routes[i] {
                flow[l] += bytes;
            }
        }
        let waits = &mut scratch.waits;
        waits.clear();
        waits.extend(flow.iter().map(|&f| {
            let rho = (f / self.config.link_bandwidth).clamp(0.0, 0.95);
            self.config.hop_ns * rho / (1.0 - rho)
        }));
        out.clear();
        out.extend(self.routes.iter().map(|route| {
            let path: f64 = route.iter().map(|&l| self.config.hop_ns + waits[l]).sum();
            self.config.dram_ns + 2.0 * path
        }));
    }
}

/// Reusable buffers for [`NocModel::latencies_into`] — per-link flows and
/// waiting times, kept across epochs so the hot loop never reallocates.
#[derive(Debug, Clone, Default)]
pub struct NocScratch {
    flow: Vec<f64>,
    waits: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cols: usize, rows: usize) -> NocModel {
        NocModel::new(NocConfig::for_floorplan(
            Floorplan::new(cols, rows).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn corner_controllers_give_corners_zero_hops() {
        let m = model(8, 8);
        assert_eq!(m.hops(0), 0);
        assert_eq!(m.hops(7), 0);
        assert_eq!(m.hops(56), 0);
        assert_eq!(m.hops(63), 0);
        // Center tiles are the farthest.
        assert!(m.hops(27) >= 3);
    }

    #[test]
    fn unloaded_latency_is_distance_plus_dram() {
        let m = model(4, 4);
        let lat = m.latencies(&[0.0; 16]);
        for (i, &l) in lat.iter().enumerate() {
            let expect = 60.0 + 2.0 * m.hops(i) as f64 * 2.0;
            assert!((l - expect).abs() < 1e-9, "core {i}: {l} vs {expect}");
        }
    }

    #[test]
    fn congestion_raises_latency() {
        let m = model(8, 8);
        let light = m.latencies(&vec![1e6; 64]);
        let heavy = m.latencies(&vec![2e8; 64]);
        for i in 0..64 {
            assert!(heavy[i] >= light[i]);
        }
        // The far-from-controller cores suffer most (longer shared paths).
        let center = 27;
        assert!(heavy[center] > light[center] + 1.0);
    }

    #[test]
    fn overload_saturates_instead_of_diverging() {
        let m = model(4, 4);
        let lat = m.latencies(&[1e12; 16]); // absurd traffic
        for l in lat {
            assert!(l.is_finite());
            assert!(l < 60.0 + 2.0 * 6.0 * (2.0 + 2.0 * 19.0)); // rho<=0.95
        }
    }

    #[test]
    fn one_cores_traffic_slows_a_sharing_neighbor() {
        let m = model(8, 8);
        // Core at (3,0) routes west along row 0 to controller (0,0); core at
        // (2,0) shares the tail of that path.
        let fp = Floorplan::new(8, 8).unwrap();
        let hog = fp.index(3, 0);
        let victim = fp.index(2, 0);
        let quiet = vec![1e5; 64];
        let mut loud = quiet.clone();
        loud[hog] = 2e8;
        let before = m.latencies(&quiet)[victim];
        let after = m.latencies(&loud)[victim];
        assert!(after > before, "victim latency {before} -> {after}");
    }

    #[test]
    fn latencies_into_matches_allocating_path() {
        let m = model(8, 8);
        let mut scratch = NocScratch::default();
        let mut out = Vec::new();
        for scale in [0.0, 1e5, 1e8, 1e12] {
            let rates = vec![scale; 64];
            m.latencies_into(&rates, &mut scratch, &mut out);
            assert_eq!(out, m.latencies(&rates), "scale {scale}");
        }
        // Buffers are reused across calls, never regrown.
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn single_tile_mesh_works() {
        let m = model(1, 1);
        assert_eq!(m.hops(0), 0);
        assert_eq!(m.latencies(&[1e9])[0], 60.0);
    }

    #[test]
    fn rejects_bad_configs() {
        let fp = Floorplan::new(4, 4).unwrap();
        let mut c = NocConfig::for_floorplan(fp);
        c.controllers.clear();
        assert_eq!(NocModel::new(c).unwrap_err(), NocError::NoControllers);

        let mut c = NocConfig::for_floorplan(fp);
        c.controllers.push(99);
        assert!(matches!(
            NocModel::new(c),
            Err(NocError::ControllerOutOfRange { .. })
        ));

        let mut c = NocConfig::for_floorplan(fp);
        c.hop_ns = -1.0;
        assert!(matches!(
            NocModel::new(c),
            Err(NocError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn routes_are_minimal() {
        let m = model(6, 5);
        let fp = Floorplan::new(6, 5).unwrap();
        for i in 0..30 {
            let min_dist = m
                .config()
                .controllers
                .iter()
                .map(|&c| fp.manhattan(i, c))
                .min()
                .unwrap();
            assert_eq!(m.hops(i), min_dist, "core {i}");
        }
    }
}
