//! Property-based tests for the NoC model invariants.

use odrl_noc::{NocConfig, NocModel};
use odrl_thermal::Floorplan;
use proptest::prelude::*;

fn model(cols: usize, rows: usize) -> NocModel {
    NocModel::new(NocConfig::for_floorplan(
        Floorplan::new(cols, rows).expect("valid"),
    ))
    .expect("valid")
}

proptest! {
    /// Latencies are finite, at least the unloaded value, and monotone in
    /// everyone's traffic (more traffic anywhere never speeds anyone up).
    #[test]
    fn latencies_monotone_in_traffic(
        cols in 1usize..7,
        rows in 1usize..7,
        base in prop::collection::vec(0.0f64..1e8, 49),
        extra in 0.0f64..1e8,
        which in 0usize..49,
    ) {
        let m = model(cols, rows);
        let tiles = cols * rows;
        let t1: Vec<f64> = base[..tiles].to_vec();
        let mut t2 = t1.clone();
        t2[which % tiles] += extra;
        let l1 = m.latencies(&t1);
        let l2 = m.latencies(&t2);
        let unloaded = m.latencies(&vec![0.0; tiles]);
        for i in 0..tiles {
            prop_assert!(l1[i].is_finite());
            prop_assert!(l1[i] >= unloaded[i] - 1e-9);
            prop_assert!(l2[i] >= l1[i] - 1e-9, "tile {i}: {} -> {}", l1[i], l2[i]);
        }
    }

    /// Unloaded latency equals DRAM + 2 hops × hop latency for every tile,
    /// and the hop count is the minimum distance to any controller.
    #[test]
    fn unloaded_latency_is_exact(cols in 1usize..8, rows in 1usize..8) {
        let m = model(cols, rows);
        let fp = Floorplan::new(cols, rows).unwrap();
        let tiles = fp.tiles();
        let lat = m.latencies(&vec![0.0; tiles]);
        for (i, &l) in lat.iter().enumerate() {
            let min_hops = m
                .config()
                .controllers
                .iter()
                .map(|&c| fp.manhattan(i, c))
                .min()
                .unwrap();
            prop_assert_eq!(m.hops(i), min_hops);
            let expect = m.config().dram_ns + 2.0 * min_hops as f64 * m.config().hop_ns;
            prop_assert!((l - expect).abs() < 1e-9);
        }
    }

    /// Negative traffic entries are clamped (treated as zero), never
    /// reducing latency below unloaded.
    #[test]
    fn negative_traffic_is_clamped(
        cols in 2usize..5,
        rows in 2usize..5,
        bad in -1e9f64..0.0,
    ) {
        let m = model(cols, rows);
        let tiles = cols * rows;
        let mut traffic = vec![0.0; tiles];
        traffic[tiles / 2] = bad;
        let lat = m.latencies(&traffic);
        let unloaded = m.latencies(&vec![0.0; tiles]);
        for i in 0..tiles {
            prop_assert!((lat[i] - unloaded[i]).abs() < 1e-9);
        }
    }

    /// Latency is bounded even under absurd overload (rho clamp).
    #[test]
    fn overload_is_bounded(
        cols in 1usize..6,
        rows in 1usize..6,
        traffic in 1e10f64..1e14,
    ) {
        let m = model(cols, rows);
        let tiles = cols * rows;
        let lat = m.latencies(&vec![traffic; tiles]);
        let max_hops = (cols - 1) + (rows - 1);
        // Per hop: hop_ns + hop_ns * 0.95/0.05 = hop_ns * 20.
        let bound = m.config().dram_ns + 2.0 * max_hops as f64 * m.config().hop_ns * 20.0 + 1e-6;
        for l in lat {
            prop_assert!(l.is_finite());
            prop_assert!(l <= bound, "{l} > {bound}");
        }
    }
}
