//! The reclaim pool and the per-epoch donate → grant → refund pass.

use crate::config::{MarketConfig, MarketError};
use crate::predictor::BudgetPredictor;

/// The per-epoch slack pool. Donations deposit into it at the start of a
/// round, grants withdraw, and whatever is left refunds to the donors —
/// the pool always drains back to zero, so no budget is ever stranded
/// between epochs. Lifetime totals are kept for utilization reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReclaimPool {
    level: f64,
    last_peak: f64,
    total_donated: f64,
    total_granted: f64,
}

impl ReclaimPool {
    /// Current pool level in watts (zero between rounds).
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The pool level after the most recent collection pass (the round's
    /// peak), before grants drained it.
    pub fn last_peak(&self) -> f64 {
        self.last_peak
    }

    /// Lifetime watts donated into the pool.
    pub fn total_donated(&self) -> f64 {
        self.total_donated
    }

    /// Lifetime watts granted out of the pool.
    pub fn total_granted(&self) -> f64 {
        self.total_granted
    }

    fn deposit(&mut self, w: f64) {
        self.level += w;
        self.last_peak = self.level;
        self.total_donated += w;
    }

    fn withdraw(&mut self, w: f64) {
        self.level -= w;
        self.total_granted += w;
    }

    fn drain(&mut self) {
        self.level = 0.0;
    }
}

/// One market round's ledger. The accounting identity
/// `donated − granted − residual = 0` holds **bit-exactly**:
/// [`MarketRound::conservation_error`] returns `0.0` by construction,
/// because `residual` is computed from the very same `donated` and
/// `granted` running sums in the same operation order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MarketRound {
    /// Watts donated into the pool this round.
    pub donated_w: f64,
    /// Watts granted to applicants this round.
    pub granted_w: f64,
    /// Unclaimed watts refunded to the donors (`donated − granted`).
    pub residual_w: f64,
    /// Pool level after collection (equals `donated_w`; the pool carries
    /// nothing between rounds).
    pub pool_peak_w: f64,
    /// Participants that donated slack.
    pub donors: u32,
    /// Participants that applied for reclaimed watts.
    pub applicants: u32,
    /// Applications actually granted (a shortage round's min-grant floor
    /// can leave this below `applicants`).
    pub grants: u32,
    /// Sum over participants of |measured − previous prediction|, in
    /// watts — the predictor's absolute error for this round.
    pub prediction_abs_err_w: f64,
}

impl MarketRound {
    /// `(donated − granted) − residual`; `0.0` bit-exactly every round.
    pub fn conservation_error(&self) -> f64 {
        (self.donated_w - self.granted_w) - self.residual_w
    }

    /// Whether any watts actually changed hands this round. A round with
    /// no grants leaves every share untouched (donations are refunded
    /// wholesale before they are applied), so callers can skip the
    /// write-back / channel send entirely.
    pub fn moved(&self) -> bool {
        self.grants > 0
    }
}

/// Reusable buffers for [`MarketAllocator::step`]. Same pattern as the
/// controller's `AllocScratch`: the vectors grow to the participant
/// count on first use and are only cleared afterwards, so steady-state
/// rounds allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MarketScratch {
    powers: Vec<f64>,
    shares: Vec<f64>,
    need: Vec<f64>,
    donation: Vec<f64>,
    apply: Vec<f64>,
    grant: Vec<f64>,
    inactive: Vec<usize>,
    active: Vec<bool>,
}

impl MarketScratch {
    /// Clears and hands out the two staging buffers the caller fills
    /// before [`MarketAllocator::step`]: per-participant measured watts
    /// and current budget shares, in participant order. Also resets any
    /// [`MarketScratch::deactivate`] marks from the previous round.
    pub fn stage(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        self.powers.clear();
        self.shares.clear();
        self.inactive.clear();
        (&mut self.powers, &mut self.shares)
    }

    /// Benches participant `i` for this round: it neither donates nor
    /// applies, its predictor is not fed (its sensor reading is suspect
    /// or it is gone entirely — a dead core, a failed chip), and its
    /// staged share passes through untouched.
    pub fn deactivate(&mut self, i: usize) {
        self.inactive.push(i);
    }

    /// The post-round shares (same order the caller staged them in).
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }
}

/// The market itself: one [`BudgetPredictor`] per participant plus the
/// [`ReclaimPool`], stepped once per market epoch over staged
/// (power, share) pairs. Pure index-ordered arithmetic — deterministic,
/// RNG-free and allocation-free in steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketAllocator {
    config: MarketConfig,
    predictors: Vec<BudgetPredictor>,
    pool: ReclaimPool,
    /// Previous round's per-participant demand prediction (NaN until one
    /// exists), used to report the predictor's absolute error.
    last_prediction: Vec<f64>,
    rounds: u64,
}

impl MarketAllocator {
    /// A market over `participants` cores (chip scope) or chips (fleet
    /// scope). Validates `config`; the `enabled` knob is the *caller's*
    /// gate — a host constructs the market only after consulting it.
    pub fn new(participants: usize, config: MarketConfig) -> Result<Self, MarketError> {
        config.validate()?;
        Ok(Self {
            config,
            predictors: (0..participants)
                .map(|_| BudgetPredictor::new(config.ema, config.history))
                .collect(),
            pool: ReclaimPool::default(),
            last_prediction: vec![f64::NAN; participants],
            rounds: 0,
        })
    }

    /// Number of market participants.
    pub fn num_participants(&self) -> usize {
        self.predictors.len()
    }

    /// The configuration this market was built with.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Market cadence in epochs.
    pub fn period(&self) -> u64 {
        self.config.period
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The reclaim pool (drained between rounds; exposes lifetime
    /// donation/grant totals).
    pub fn pool(&self) -> &ReclaimPool {
        &self.pool
    }

    /// Read access to participant `i`'s predictor.
    pub fn predictor(&self, i: usize) -> &BudgetPredictor {
        &self.predictors[i]
    }

    /// Runs one market round over the staged buffers (fill them via
    /// [`MarketScratch::stage`]): observe measured power, predict demand,
    /// collect donations, grant applications, refund the residual. On
    /// return `scratch.shares()` holds the post-round shares; when
    /// [`MarketRound::moved`] is `false` they are bit-identical to the
    /// staged ones.
    ///
    /// # Panics
    ///
    /// If the staged buffers do not both hold exactly
    /// [`MarketAllocator::num_participants`] entries.
    pub fn step(&mut self, total_w: f64, scratch: &mut MarketScratch) -> MarketRound {
        let n = self.predictors.len();
        assert_eq!(scratch.powers.len(), n, "stage one power per participant");
        assert_eq!(scratch.shares.len(), n, "stage one share per participant");
        let fair = if n > 0 { total_w / n as f64 } else { 0.0 };
        let floor_grant = self.config.min_grant * fair;
        let keep_floor = self.config.min_keep * fair;

        scratch.need.clear();
        scratch.donation.clear();
        scratch.apply.clear();
        scratch.grant.clear();
        scratch.active.clear();
        scratch.active.resize(n, true);
        for &i in &scratch.inactive {
            if i < n {
                scratch.active[i] = false;
            }
        }

        // Pass 1 (per participant, index order): feed the predictor,
        // settle last round's prediction error, and split everyone into
        // donors (share above need) and applicants (share below need).
        // Deactivated participants sit the round out entirely.
        let mut abs_err = 0.0;
        let mut donors = 0u32;
        let mut applicants = 0u32;
        for i in 0..n {
            if !scratch.active[i] {
                self.last_prediction[i] = f64::NAN;
                scratch.need.push(0.0);
                scratch.donation.push(0.0);
                scratch.apply.push(0.0);
                continue;
            }
            let measured = scratch.powers[i];
            if self.last_prediction[i].is_finite() {
                abs_err += (measured - self.last_prediction[i]).abs();
            }
            let predictor = &mut self.predictors[i];
            predictor.observe(measured);
            let demand = if predictor.is_warm() {
                predictor.predict()
            } else {
                // Warm-up fallback: the reactive allocator's headroom
                // estimate over the latest measurement.
                measured * self.config.headroom
            };
            self.last_prediction[i] = demand;
            let need = (demand * (1.0 + self.config.safety_margin)).max(keep_floor);
            scratch.need.push(need);
            let share = scratch.shares[i];
            if share > need {
                scratch.donation.push(share - need);
                scratch.apply.push(0.0);
                donors += 1;
            } else {
                scratch.donation.push(0.0);
                scratch.apply.push(need - share);
                if need > share {
                    applicants += 1;
                }
            }
        }

        // Pass 2: collect donations into the pool (running sum in index
        // order — this exact `donated` value anchors the conservation
        // identity below).
        let mut donated = 0.0;
        for d in &scratch.donation {
            donated += *d;
        }
        self.pool.deposit(donated);
        let pool = self.pool.level();

        // Pass 3: total applications, same index order.
        let mut total_app = 0.0;
        for a in &scratch.apply {
            total_app += *a;
        }

        // Pass 4: the grant pass. Surplus rounds grant every application
        // in full (the running `granted` sum then equals `total_app`
        // bit-exactly, since both accumulate the same values in the same
        // order). Shortage rounds pro-rate the pool across applicants,
        // dropping grants under the min-grant floor and letting the last
        // surviving applicant absorb the pro-rating rounding.
        let mut granted = 0.0;
        let mut grants = 0u32;
        for _ in 0..n {
            scratch.grant.push(0.0);
        }
        if pool > 0.0 && total_app > 0.0 {
            if total_app <= pool {
                for i in 0..n {
                    let a = scratch.apply[i];
                    if a > 0.0 {
                        scratch.grant[i] = a;
                        granted += a;
                        grants += 1;
                    }
                }
            } else {
                let mut surviving = 0.0;
                for i in 0..n {
                    let a = scratch.apply[i];
                    if a > 0.0 && pool * (a / total_app) >= floor_grant {
                        surviving += a;
                    } else {
                        scratch.apply[i] = 0.0;
                    }
                }
                if surviving > 0.0 {
                    let last = (0..n)
                        .rev()
                        .find(|&i| scratch.apply[i] > 0.0)
                        .expect("surviving > 0 implies a surviving applicant");
                    for i in 0..n {
                        let a = scratch.apply[i];
                        if a <= 0.0 {
                            continue;
                        }
                        let g = if i == last {
                            (pool - granted).min(a).max(0.0)
                        } else {
                            (pool * (a / surviving)).min(a)
                        };
                        scratch.grant[i] = g;
                        granted += g;
                        grants += 1;
                    }
                }
            }
        }

        // The conservation anchor: residual is derived from the same
        // `donated` (== pool) and `granted` sums, so
        // `(donated − granted) − residual` is exactly 0.0.
        let residual = pool - granted;
        self.pool.withdraw(granted);

        // Pass 5: apply the round to the shares — but only if watts
        // actually moved. A grant-free round refunds every donation
        // wholesale, leaving the staged shares bit-untouched instead of
        // perturbing them by a round trip through the pool.
        if grants > 0 {
            for i in 0..n {
                let d = scratch.donation[i];
                if d > 0.0 {
                    scratch.shares[i] -= d;
                }
                let g = scratch.grant[i];
                if g > 0.0 {
                    scratch.shares[i] += g;
                }
            }
            if residual > 0.0 && donated > 0.0 {
                let last = (0..n)
                    .rev()
                    .find(|&i| scratch.donation[i] > 0.0)
                    .expect("donated > 0 implies a donor");
                let mut returned = 0.0;
                for i in 0..n {
                    let d = scratch.donation[i];
                    if d <= 0.0 {
                        continue;
                    }
                    let r = if i == last {
                        residual - returned
                    } else {
                        residual * (d / donated)
                    };
                    scratch.shares[i] += r;
                    returned += r;
                }
            }
        }
        self.pool.drain();
        self.rounds += 1;

        MarketRound {
            donated_w: donated,
            granted_w: granted,
            residual_w: residual,
            pool_peak_w: pool,
            donors,
            applicants,
            grants,
            prediction_abs_err_w: abs_err,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market(n: usize, tweak: impl FnOnce(&mut MarketConfig)) -> MarketAllocator {
        let mut config = MarketConfig::enabled();
        tweak(&mut config);
        MarketAllocator::new(n, config).unwrap()
    }

    /// Steps one round with the given powers/shares and returns the
    /// round plus the post-round shares.
    fn round(
        m: &mut MarketAllocator,
        scratch: &mut MarketScratch,
        total: f64,
        powers: &[f64],
        shares: &[f64],
    ) -> (MarketRound, Vec<f64>) {
        let (p, s) = scratch.stage();
        p.extend_from_slice(powers);
        s.extend_from_slice(shares);
        let r = m.step(total, scratch);
        (r, scratch.shares().to_vec())
    }

    /// Warm every predictor on a constant trace so `predict()` is the
    /// trace level itself.
    fn warm(m: &mut MarketAllocator, scratch: &mut MarketScratch, powers: &[f64], shares: &[f64]) {
        let total: f64 = shares.iter().sum();
        for _ in 0..m.config().history {
            round(m, scratch, total, powers, shares);
        }
    }

    #[test]
    fn slack_flows_from_donor_to_applicant() {
        // Core 0 draws 0.5 W on a 3 W share (slack); core 1 draws 3.5 W
        // on a 3 W share (over budget). min_keep off to keep the math
        // transparent.
        let mut m = market(2, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
        });
        let mut scratch = MarketScratch::default();
        warm(&mut m, &mut scratch, &[0.5, 3.5], &[3.0, 3.0]);
        let (r, shares) = round(&mut m, &mut scratch, 6.0, &[0.5, 3.5], &[3.0, 3.0]);
        assert_eq!(r.donors, 1);
        assert_eq!(r.applicants, 1);
        assert_eq!(r.grants, 1);
        assert!((r.donated_w - 2.5).abs() < 1e-12);
        assert!((r.granted_w - 0.5).abs() < 1e-12);
        assert_eq!(r.conservation_error(), 0.0);
        assert!((shares[0] - 2.5).abs() < 1e-12, "donor keeps its need");
        assert!((shares[1] - 3.5).abs() < 1e-12, "applicant topped up");
        assert_eq!(m.pool().level(), 0.0, "pool drains every round");
    }

    #[test]
    fn zero_applicants_leave_shares_bit_identical() {
        let mut m = market(3, |c| c.min_keep = 0.0);
        let mut scratch = MarketScratch::default();
        let powers = [0.2, 0.3, 0.1];
        let shares = [2.0, 2.0, 2.0];
        warm(&mut m, &mut scratch, &powers, &shares);
        let (r, out) = round(&mut m, &mut scratch, 6.0, &powers, &shares);
        assert!(r.donated_w > 0.0, "everyone has slack to offer");
        assert_eq!(r.applicants, 0);
        assert_eq!(r.grants, 0);
        assert!(!r.moved());
        assert_eq!(r.residual_w, r.donated_w);
        assert_eq!(r.conservation_error(), 0.0);
        assert_eq!(out, shares.to_vec(), "no grants => bit-untouched shares");
    }

    #[test]
    fn pool_smaller_than_grant_floor_grants_nothing() {
        // Fair share is 2 W; the floor is 0.9 * 2 = 1.8 W, but the only
        // donor offers ~0.4 W, so the lone applicant's pro-rated grant
        // sits under the floor and the round is a refund.
        let mut m = market(2, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
            c.min_grant = 0.9;
        });
        let mut scratch = MarketScratch::default();
        let powers = [1.6, 3.0];
        let shares = [2.0, 2.0];
        warm(&mut m, &mut scratch, &powers, &shares);
        let (r, out) = round(&mut m, &mut scratch, 4.0, &powers, &shares);
        assert!(r.donated_w > 0.0 && r.donated_w < 1.8);
        assert_eq!(r.applicants, 1);
        assert_eq!(r.grants, 0, "grant under the floor is suppressed");
        assert_eq!(r.residual_w, r.donated_w);
        assert_eq!(r.conservation_error(), 0.0);
        assert_eq!(out, shares.to_vec());
    }

    #[test]
    fn shortage_round_pro_rates_and_exhausts_the_pool() {
        // One donor with 1 W of slack, two applicants asking for 2 W and
        // 1 W: grants pro-rate 2:1 and drain the pool exactly.
        let mut m = market(3, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
            c.min_grant = 0.0;
        });
        let mut scratch = MarketScratch::default();
        let powers = [1.0, 4.0, 3.0];
        let shares = [2.0, 2.0, 2.0];
        warm(&mut m, &mut scratch, &powers, &shares);
        let (r, out) = round(&mut m, &mut scratch, 6.0, &powers, &shares);
        assert!((r.donated_w - 1.0).abs() < 1e-12);
        assert_eq!(r.grants, 2);
        assert_eq!(r.granted_w, r.donated_w, "pool fully granted");
        assert_eq!(r.residual_w, 0.0);
        assert_eq!(r.conservation_error(), 0.0);
        assert!((out[1] - (2.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert!((out[2] - (2.0 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn min_keep_floor_caps_donations() {
        let mut m = market(2, |c| {
            c.min_keep = 0.5;
            c.safety_margin = 0.0;
        });
        let mut scratch = MarketScratch::default();
        // Fair share 2 W => keep floor 1 W. An idle donor still keeps it.
        let powers = [0.0, 3.5];
        let shares = [2.0, 2.0];
        warm(&mut m, &mut scratch, &powers, &shares);
        let (r, out) = round(&mut m, &mut scratch, 4.0, &powers, &shares);
        assert!((r.donated_w - 1.0).abs() < 1e-12);
        assert!(out[0] >= 1.0 - 1e-12, "donor never drops below keep floor");
        assert_eq!(r.conservation_error(), 0.0);
    }

    #[test]
    fn rounds_are_deterministic() {
        let build = || {
            let mut m = market(4, |c| c.min_grant = 0.1);
            let mut scratch = MarketScratch::default();
            let mut ledger = Vec::new();
            let powers = [0.4, 2.9, 1.7, 0.1];
            let mut shares = [1.5, 1.5, 1.5, 1.5];
            for _ in 0..20 {
                let (r, out) = round(&mut m, &mut scratch, 6.0, &powers, &shares);
                shares.copy_from_slice(&out);
                ledger.push((r, out));
            }
            ledger
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn warm_up_uses_the_reactive_headroom_estimate() {
        let mut m = market(1, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
            c.headroom = 2.0;
            c.history = 4;
        });
        let mut scratch = MarketScratch::default();
        // First round: predictor cold, demand = 1.0 * headroom = 2.0, so
        // a 5 W share donates 3 W (refunded — no applicants).
        let (r, _) = round(&mut m, &mut scratch, 5.0, &[1.0], &[5.0]);
        assert!(!m.predictor(0).is_warm());
        assert!((r.donated_w - 3.0).abs() < 1e-12);
        assert_eq!(r.conservation_error(), 0.0);
    }

    #[test]
    fn deactivated_participants_sit_the_round_out() {
        // Core 1 would be the biggest donor, but it is benched (dead
        // sensor): its share passes through untouched, its predictor is
        // not fed, and only core 0's slack funds core 2's application.
        let mut m = market(3, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
        });
        let mut scratch = MarketScratch::default();
        let powers = [1.0, 0.0, 3.0];
        let shares = [2.0, 2.0, 2.0];
        warm(&mut m, &mut scratch, &powers, &shares);
        let fed = m.predictor(1).samples();
        let (p, s) = scratch.stage();
        p.extend_from_slice(&powers);
        s.extend_from_slice(&shares);
        scratch.deactivate(1);
        let r = m.step(6.0, &mut scratch);
        assert_eq!(r.donors, 1);
        assert_eq!(r.applicants, 1);
        assert!((r.donated_w - 1.0).abs() < 1e-12, "only core 0 donates");
        assert_eq!(r.conservation_error(), 0.0);
        assert_eq!(scratch.shares()[1], 2.0, "benched share untouched");
        assert_eq!(m.predictor(1).samples(), fed, "benched predictor not fed");
        // The next staged round resets the marks: core 1 trades again.
        let (r2, _) = round(&mut m, &mut scratch, 6.0, &powers, &shares);
        assert_eq!(r2.donors, 2);
        assert_eq!(m.predictor(1).samples(), fed + 1);
    }

    #[test]
    fn prediction_error_is_reported_after_the_first_round() {
        let mut m = market(1, |c| {
            c.min_keep = 0.0;
            c.safety_margin = 0.0;
            c.headroom = 1.0;
            c.history = 2;
        });
        let mut scratch = MarketScratch::default();
        let (r0, _) = round(&mut m, &mut scratch, 2.0, &[1.0], &[2.0]);
        assert_eq!(r0.prediction_abs_err_w, 0.0, "no prior prediction");
        // Previous prediction was 1.0 (headroom 1.0 x measured 1.0); the
        // next measurement lands at 1.6.
        let (r1, _) = round(&mut m, &mut scratch, 2.0, &[1.6], &[2.0]);
        assert!((r1.prediction_abs_err_w - 0.6).abs() < 1e-12);
    }
}
