//! Market configuration and validation.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Knobs for the predictive slack market. Embedded (with serde defaults)
/// in `OdRlConfig` and `FleetConfig`; the default is **disabled**, so
/// every pre-market golden stays bit-identical.
///
/// Deserialization starts from [`MarketConfig::default`] and overlays
/// whatever fields are present, so old configs (and configs written
/// before a knob existed) keep loading with today's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MarketConfig {
    /// Master switch. `false` (the default) means the market pass never
    /// runs and the hosting controller behaves exactly as before.
    pub enabled: bool,
    /// EMA smoothing factor for the per-participant power predictor, in
    /// `(0, 1]`. Higher tracks faster, lower smooths harder.
    pub ema: f64,
    /// History-window length (samples) for the predictor. Doubles as the
    /// warm-up threshold: until a participant has seen this many samples
    /// its prediction falls back to the reactive headroom estimate.
    pub history: usize,
    /// Safety margin kept above the predicted demand, as a fraction
    /// (`0.1` = keep 10 % headroom before donating). Must be `>= 0`.
    pub safety_margin: f64,
    /// Reactive fallback multiplier applied to the last measured power
    /// while the predictor warms up. Mirrors the reactive allocator's
    /// demand headroom. Must be `>= 1`.
    pub headroom: f64,
    /// Minimum-grant floor as a fraction of the fair share
    /// (`total / participants`). In a shortage round, pro-rated grants
    /// below this floor are suppressed so the pool is not shredded into
    /// dust; the freed watts pro-rate to the surviving applicants.
    pub min_grant: f64,
    /// Fraction of the fair share a donor always keeps — donations never
    /// push a share below `min_keep * fair`. In `[0, 1]`.
    pub min_keep: f64,
    /// Market cadence in epochs (`1` = every epoch). Must be `>= 1`.
    pub period: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            ema: 0.25,
            history: 8,
            safety_margin: 0.10,
            headroom: 1.3,
            min_grant: 0.05,
            min_keep: 0.25,
            period: 1,
        }
    }
}

impl Deserialize for MarketConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_object().ok_or_else(|| {
            DeError::custom(format!("MarketConfig: expected object, got {}", v.kind()))
        })?;
        let mut config = Self::default();
        if let Some(f) = map.get("enabled") {
            config.enabled = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("ema") {
            config.ema = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("history") {
            config.history = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("safety_margin") {
            config.safety_margin = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("headroom") {
            config.headroom = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("min_grant") {
            config.min_grant = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("min_keep") {
            config.min_keep = Deserialize::from_value(f)?;
        }
        if let Some(f) = map.get("period") {
            config.period = Deserialize::from_value(f)?;
        }
        Ok(config)
    }
}

impl MarketConfig {
    /// A default-valued config with the master switch on. Convenience
    /// for `RunBuilder::market(MarketConfig::enabled())`-style call
    /// sites.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Checks every field; returns the first violation.
    pub fn validate(&self) -> Result<(), MarketError> {
        fn bad(field: &'static str, reason: impl Into<String>) -> Result<(), MarketError> {
            Err(MarketError::InvalidConfig {
                field,
                reason: reason.into(),
            })
        }
        if !(self.ema > 0.0 && self.ema <= 1.0) {
            return bad("ema", format!("must be in (0, 1], got {}", self.ema));
        }
        if self.history == 0 {
            return bad("history", "window must hold at least one sample");
        }
        if !(self.safety_margin >= 0.0 && self.safety_margin.is_finite()) {
            return bad(
                "safety_margin",
                format!("must be finite and >= 0, got {}", self.safety_margin),
            );
        }
        if !(self.headroom >= 1.0 && self.headroom.is_finite()) {
            return bad(
                "headroom",
                format!("must be finite and >= 1, got {}", self.headroom),
            );
        }
        if !(self.min_grant >= 0.0 && self.min_grant.is_finite()) {
            return bad(
                "min_grant",
                format!("must be finite and >= 0, got {}", self.min_grant),
            );
        }
        if !(self.min_keep >= 0.0 && self.min_keep <= 1.0) {
            return bad(
                "min_keep",
                format!("must be in [0, 1], got {}", self.min_keep),
            );
        }
        if self.period == 0 {
            return bad("period", "market cadence must be >= 1 epoch");
        }
        Ok(())
    }
}

/// Errors surfaced by the market layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// A [`MarketConfig`] field failed validation.
    InvalidConfig {
        /// The offending field name.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid market config: {field}: {reason}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = MarketConfig::default();
        assert!(!c.enabled);
        c.validate().unwrap();
        assert!(MarketConfig::enabled().enabled);
        MarketConfig::enabled().validate().unwrap();
    }

    #[test]
    fn each_field_is_checked() {
        let base = MarketConfig::default();
        let cases = [
            MarketConfig { ema: 0.0, ..base },
            MarketConfig { ema: 1.5, ..base },
            MarketConfig { history: 0, ..base },
            MarketConfig {
                safety_margin: -0.1,
                ..base
            },
            MarketConfig {
                safety_margin: f64::NAN,
                ..base
            },
            MarketConfig {
                headroom: 0.9,
                ..base
            },
            MarketConfig {
                min_grant: -1.0,
                ..base
            },
            MarketConfig {
                min_keep: 1.1,
                ..base
            },
            MarketConfig { period: 0, ..base },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn serde_defaults_fill_missing_fields() {
        let c: MarketConfig = serde_json::from_str("{\"enabled\":true}").unwrap();
        assert!(c.enabled);
        assert_eq!(c.history, MarketConfig::default().history);
        let round: MarketConfig =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(round, c);
    }
}
