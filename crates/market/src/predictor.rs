//! Per-participant power-demand prediction.

/// Forecasts a participant's next-epoch power draw from its measured
/// history: an exponential moving average blended (by `max`) with the
/// peak of a short sliding window, so a bursty participant is predicted
/// at its recent burst level rather than its average — donating slack a
/// burst is about to reclaim would just bounce watts through the pool.
///
/// The window doubles as the warm-up gate: until `window` samples have
/// been observed, [`BudgetPredictor::is_warm`] is `false` and callers
/// fall back to the reactive headroom estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPredictor {
    alpha: f64,
    ema: f64,
    history: Vec<f64>,
    head: usize,
    samples: u64,
}

impl BudgetPredictor {
    /// A predictor with EMA factor `alpha` (in `(0, 1]`) and a history
    /// window of `window >= 1` samples. The window buffer is the only
    /// allocation this type ever makes.
    pub fn new(alpha: f64, window: usize) -> Self {
        Self {
            alpha,
            ema: 0.0,
            history: vec![0.0; window.max(1)],
            head: 0,
            samples: 0,
        }
    }

    /// Feeds one measured power sample (watts).
    pub fn observe(&mut self, measured_w: f64) {
        if self.samples == 0 {
            self.ema = measured_w;
        } else {
            self.ema += self.alpha * (measured_w - self.ema);
        }
        self.history[self.head] = measured_w;
        self.head = (self.head + 1) % self.history.len();
        self.samples += 1;
    }

    /// Whether the history window has filled; predictions before this
    /// point should defer to the reactive estimate.
    pub fn is_warm(&self) -> bool {
        self.samples >= self.history.len() as u64
    }

    /// The predicted next-epoch power draw: `max(EMA, window peak)`.
    /// Meaningful once [`BudgetPredictor::is_warm`]; before that it
    /// covers only the samples seen so far.
    pub fn predict(&self) -> f64 {
        let filled = (self.samples as usize).min(self.history.len());
        let peak = self.history[..filled]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if filled == 0 {
            0.0
        } else {
            self.ema.max(peak)
        }
    }

    /// The current EMA of the measured power.
    pub fn ema(&self) -> f64 {
        self.ema
    }

    /// Total samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_trace_converges_above_the_new_level() {
        let mut p = BudgetPredictor::new(0.25, 4);
        for _ in 0..8 {
            p.observe(1.0);
        }
        assert!(p.is_warm());
        assert!((p.predict() - 1.0).abs() < 1e-12);
        // Step up: the window peak tracks the jump immediately, the EMA
        // catches up behind it; prediction never undershoots the level.
        for _ in 0..8 {
            p.observe(3.0);
            assert!(p.predict() >= 3.0 - 1e-12);
        }
        assert!((p.predict() - 3.0).abs() < 0.3, "ema={} near 3", p.ema());
    }

    #[test]
    fn ramp_trace_tracks_within_one_window() {
        let mut p = BudgetPredictor::new(0.5, 4);
        let mut w = 0.0;
        for step in 0..40 {
            w = 0.1 * f64::from(step);
            p.observe(w);
        }
        // On a monotone ramp the window peak is the latest sample, so the
        // prediction is never more than one step behind the true demand.
        assert!(p.is_warm());
        assert!(p.predict() >= w - 1e-12);
        assert!(p.predict() <= w + 0.5);
    }

    #[test]
    fn bursty_trace_predicts_the_burst_peak() {
        let mut p = BudgetPredictor::new(0.2, 6);
        for i in 0..30 {
            p.observe(if i % 3 == 0 { 4.0 } else { 1.0 });
        }
        // A 6-deep window always holds at least one burst sample, so the
        // conservative predictor holds at the burst level instead of the
        // ~2 W average — bursty cores do not donate slack they will need.
        assert!((p.predict() - 4.0).abs() < 1e-12);
        assert!(p.ema() < 3.0);
    }

    #[test]
    fn warm_up_gate_opens_after_window_samples() {
        let mut p = BudgetPredictor::new(0.3, 3);
        assert!(!p.is_warm());
        assert_eq!(p.predict(), 0.0);
        p.observe(2.0);
        p.observe(2.0);
        assert!(!p.is_warm());
        p.observe(2.0);
        assert!(p.is_warm());
        assert_eq!(p.samples(), 3);
    }
}
