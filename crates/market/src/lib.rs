//! Predictive power-budget slack market.
//!
//! The paper's global reallocator is purely reactive: budget moves only
//! after an overshoot has already been observed, so slack sits stranded
//! on under-consuming cores while over-budget cores run hot for a full
//! epoch. This crate adds the predictive counterpart — a per-epoch slack
//! *economy* in the style of rtshyper's bandwidth reclaim manager:
//!
//! 1. a [`BudgetPredictor`] per participant forecasts next-epoch power
//!    consumption (EMA blended with a short history window; until the
//!    window fills it falls back to the reactive headroom estimate the
//!    [`BudgetAllocator`] uses);
//! 2. participants whose share exceeds the predicted need (plus a
//!    configurable safety margin) *donate* the difference into a
//!    [`ReclaimPool`];
//! 3. participants whose predicted need exceeds their share *apply* for
//!    reclaimed watts; grants are pro-rated when the pool cannot cover
//!    every application, with a minimum-grant floor suppressing dust
//!    grants, and any residual refunds to the donors.
//!
//! The whole pass is plain index-ordered arithmetic — no RNG, no
//! allocation in steady state ([`MarketScratch`] follows the same
//! clear-and-extend pattern as `AllocScratch`), and bit-deterministic
//! regardless of how the surrounding controller shards its RL pass. The
//! accounting identity `donations − grants − residual = 0` holds
//! *bit-exactly* every round by construction ([`MarketRound::conservation_error`]
//! returns `0.0`, not merely something small).
//!
//! The same [`MarketAllocator`] serves two scopes: per-core inside
//! `OdRlController`'s global reallocation step (participants are cores)
//! and rack-level next to the fleet `BudgetArbiter` (participants are
//! chips, with share updates routed through the lossy budget channel).
//!
//! [`BudgetAllocator`]: https://docs.rs/odrl-core

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod market;
mod predictor;

pub use config::{MarketConfig, MarketError};
pub use market::{MarketAllocator, MarketRound, MarketScratch, ReclaimPool};
pub use predictor::BudgetPredictor;
