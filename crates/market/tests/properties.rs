//! Property-based tests for the slack market: the conservation identity
//! `donations − grants − residual == 0` must hold bit-exactly (not
//! approximately) on every round, for arbitrary power/share vectors and
//! knob settings, across multi-epoch trajectories.

use odrl_market::{MarketAllocator, MarketConfig, MarketScratch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every round of a 30-epoch trajectory conserves watts bit-exactly
    /// and keeps every share non-negative.
    #[test]
    fn conservation_is_bit_exact_every_epoch(
        data in prop::collection::vec((0.0f64..8.0, 0.0f64..6.0), 2..24),
        safety_margin in 0.0f64..0.5,
        min_grant in 0.0f64..0.5,
        min_keep in 0.0f64..0.9,
        ema in 0.05f64..1.0,
    ) {
        let n = data.len();
        let config = MarketConfig {
            enabled: true,
            ema,
            history: 4,
            safety_margin,
            min_grant,
            min_keep,
            ..MarketConfig::default()
        };
        let mut market = MarketAllocator::new(n, config).unwrap();
        let mut scratch = MarketScratch::default();
        let powers: Vec<f64> = data.iter().map(|d| d.0).collect();
        let mut shares: Vec<f64> = data.iter().map(|d| d.1).collect();
        let total: f64 = shares.iter().sum();
        let mut total_donated = 0.0;
        let mut total_granted = 0.0;
        for epoch in 0..30u64 {
            // Perturb the trace deterministically so predictions err.
            let phase = if epoch % 7 < 3 { 1.0 } else { 0.6 };
            let (p, s) = scratch.stage();
            p.extend(powers.iter().map(|w| w * phase));
            s.extend_from_slice(&shares);
            let round = market.step(total, &mut scratch);
            prop_assert_eq!(
                round.conservation_error(),
                0.0,
                "epoch {}: donated {} granted {} residual {}",
                epoch,
                round.donated_w,
                round.granted_w,
                round.residual_w
            );
            prop_assert!(round.granted_w <= round.donated_w + 1e-12);
            prop_assert!(round.residual_w >= 0.0);
            prop_assert!(round.pool_peak_w == round.donated_w);
            for (i, s) in scratch.shares().iter().enumerate() {
                prop_assert!(*s >= -1e-12, "epoch {epoch}: share {i} went negative: {s}");
            }
            shares.copy_from_slice(scratch.shares());
            total_donated += round.donated_w;
            total_granted += round.granted_w;
        }
        // The pool's lifetime ledger matches the per-round sums and the
        // pool itself never strands watts between rounds.
        prop_assert!((market.pool().total_donated() - total_donated).abs() <= 1e-9 * (1.0 + total_donated));
        prop_assert!((market.pool().total_granted() - total_granted).abs() <= 1e-9 * (1.0 + total_granted));
        prop_assert_eq!(market.pool().level(), 0.0);
        prop_assert_eq!(market.rounds(), 30);
    }

    /// A grant-free round (no applicants: shares already exceed every
    /// need) hands back the staged shares bit-identically.
    #[test]
    fn grant_free_rounds_do_not_perturb_shares(
        powers in prop::collection::vec(0.0f64..1.0, 2..16),
        margin in 0.0f64..0.2,
    ) {
        let n = powers.len();
        let config = MarketConfig {
            enabled: true,
            min_keep: 0.0,
            safety_margin: margin,
            ..MarketConfig::default()
        };
        let mut market = MarketAllocator::new(n, config).unwrap();
        let mut scratch = MarketScratch::default();
        // Shares generous enough that nobody ever applies.
        let shares = vec![10.0f64; n];
        for _ in 0..10 {
            let (p, s) = scratch.stage();
            p.extend_from_slice(&powers);
            s.extend_from_slice(&shares);
            let round = market.step(10.0 * n as f64, &mut scratch);
            prop_assert_eq!(round.grants, 0);
            prop_assert!(!round.moved());
            prop_assert_eq!(scratch.shares(), shares.as_slice());
        }
    }
}
