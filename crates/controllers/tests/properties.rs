//! Property-based tests for the baseline controllers.

use odrl_controllers::{
    MaxBips, MaxBipsMode, PidController, PidGains, PowerController, Predictor, PriorityGreedy,
    StaticUniform, SteepestDrop,
};
use odrl_manycore::{Observation, System, SystemConfig, SystemSpec};
use odrl_power::{LevelId, Watts};
use proptest::prelude::*;

fn setting(cores: usize, seed: u64, warm_level: usize) -> (Observation, SystemSpec) {
    let config = SystemConfig::builder()
        .cores(cores)
        .seed(seed)
        .build()
        .unwrap();
    let mut sys = System::new(config).unwrap();
    sys.step(&vec![LevelId(warm_level); cores]).unwrap();
    let spec = sys.spec();
    (sys.observation(Watts::ZERO), spec)
}

fn with_budget(mut obs: Observation, budget: f64) -> Observation {
    obs.budget = Watts::new(budget);
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every controller returns exactly one valid level per core, for any
    /// budget — including zero and absurdly large ones.
    #[test]
    fn controllers_return_valid_actions(
        cores in 1usize..16,
        seed in 0u64..30,
        warm in 0usize..8,
        budget in 0.0f64..1e4,
    ) {
        let (obs, spec) = setting(cores, seed, warm);
        let obs = with_budget(obs, budget);
        let mut controllers: Vec<Box<dyn PowerController>> = vec![
            Box::new(MaxBips::dp(spec.clone()).unwrap()),
            Box::new(SteepestDrop::new(spec.clone()).unwrap()),
            Box::new(PidController::new(spec.clone(), PidGains::default()).unwrap()),
            Box::new(StaticUniform::for_budget(spec.clone(), obs.budget).unwrap()),
            Box::new(PriorityGreedy::new(spec.clone()).unwrap()),
        ];
        for ctrl in controllers.iter_mut() {
            let actions = ctrl.decide(&obs);
            prop_assert_eq!(actions.len(), cores, "{}", ctrl.name());
            for a in &actions {
                prop_assert!(a.index() < spec.vf_table.len(), "{}", ctrl.name());
            }
        }
    }

    /// MaxBIPS-DP and Steepest Drop never plan above the budget (on their
    /// own predictions) whenever an under-budget assignment exists.
    #[test]
    fn planners_respect_predicted_budget(
        cores in 1usize..16,
        seed in 0u64..30,
        budget in 1.0f64..200.0,
    ) {
        let (obs, spec) = setting(cores, seed, 4);
        let obs = with_budget(obs, budget);
        let predictor = Predictor::new(spec.clone());
        let preds = predictor.predict_all(&obs.cores);
        let min_possible: f64 = preds.iter().map(|p| p[0].power.value()).sum();
        let planned = |actions: &[LevelId]| -> f64 {
            actions
                .iter()
                .enumerate()
                .map(|(i, &a)| preds[i][a.index()].power.value())
                .sum()
        };
        let mut dp = MaxBips::dp(spec.clone()).unwrap();
        let mut sd = SteepestDrop::new(spec.clone()).unwrap();
        if min_possible <= budget {
            prop_assert!(planned(&dp.decide(&obs)) <= budget + 1e-9);
            prop_assert!(planned(&sd.decide(&obs)) <= budget + 1e-9);
        } else {
            // Infeasible: both bottom out at level 0.
            prop_assert!(dp.decide(&obs).iter().all(|&a| a == LevelId(0)));
            prop_assert!(sd.decide(&obs).iter().all(|&a| a == LevelId(0)));
        }
    }

    /// On tiny systems, the DP solution is within quantization slack of the
    /// exhaustive optimum and never better (DP is conservative).
    #[test]
    fn dp_at_most_exhaustive(
        cores in 1usize..5,
        seed in 0u64..20,
        budget in 2.0f64..40.0,
    ) {
        let (obs, spec) = setting(cores, seed, 4);
        let obs = with_budget(obs, budget);
        let predictor = Predictor::new(spec.clone());
        let preds = predictor.predict_all(&obs.cores);
        let bips = |actions: &[LevelId]| -> f64 {
            actions
                .iter()
                .enumerate()
                .map(|(i, &a)| preds[i][a.index()].ips)
                .sum()
        };
        let mut ex = MaxBips::new(spec.clone(), MaxBipsMode::Exhaustive).unwrap();
        let mut dp = MaxBips::new(spec, MaxBipsMode::Dp { power_bins: 4096 }).unwrap();
        let b_ex = bips(&ex.decide(&obs));
        let b_dp = bips(&dp.decide(&obs));
        prop_assert!(b_dp <= b_ex + 1e-6, "dp {b_dp} beat exhaustive {b_ex}");
        prop_assert!(b_dp >= 0.85 * b_ex, "dp {b_dp} too far below {b_ex}");
    }

    /// The predictor's points are monotone in level for every observed core.
    #[test]
    fn predictions_monotone(cores in 1usize..8, seed in 0u64..30, warm in 0usize..8) {
        let (obs, spec) = setting(cores, seed, warm);
        let predictor = Predictor::new(spec);
        for core in &obs.cores {
            let points = predictor.predict(core);
            for w in points.windows(2) {
                prop_assert!(w[1].power >= w[0].power);
                prop_assert!(w[1].ips >= w[0].ips);
            }
        }
    }

    /// PID's index stays in range whatever error sequence it sees.
    #[test]
    fn pid_index_bounded(
        cores in 1usize..8,
        budgets in prop::collection::vec(0.0f64..1e3, 1..50),
    ) {
        let config = SystemConfig::builder().cores(cores).build().unwrap();
        let mut sys = System::new(config).unwrap();
        let mut pid = PidController::new(sys.spec(), PidGains::default()).unwrap();
        for &b in &budgets {
            let obs = sys.observation(Watts::new(b));
            let actions = pid.decide(&obs);
            sys.step(&actions).unwrap();
            prop_assert!(pid.index().is_finite());
            prop_assert!((0.0..=7.0).contains(&pid.index()));
        }
    }
}
