//! Simple reference controllers: static uniform and priority-greedy.

use crate::error::ControllerError;
use crate::predict::Predictor;
use crate::PowerController;
use odrl_manycore::{Observation, SystemSpec};
use odrl_power::{Celsius, LevelId, Watts};

/// A static, workload-oblivious allocation: at construction, pick the
/// highest uniform VF level whose nominal chip power fits the budget, and
/// never change it.
///
/// This is the "provision for the worst case" strawman every dynamic scheme
/// is measured against: it wastes the budget headroom of memory-bound
/// phases and cannot react to activity bursts.
///
/// ```
/// use odrl_controllers::{StaticUniform, PowerController};
/// use odrl_manycore::SystemConfig;
/// use odrl_power::Watts;
///
/// let config = SystemConfig::builder().cores(16).build()?;
/// let ctrl = StaticUniform::for_budget(config.spec(), Watts::new(0.5 * config.max_power().value()))?;
/// assert_eq!(ctrl.name(), "static-uniform");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct StaticUniform {
    level: LevelId,
    cores: usize,
}

impl StaticUniform {
    /// Nominal sizing assumptions: a typical activity factor and a warm die.
    const SIZING_ACTIVITY: f64 = 0.8;
    const SIZING_TEMP: f64 = 75.0;

    /// Picks the highest uniform level whose nominal power fits `budget`.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec.
    pub fn for_budget(spec: SystemSpec, budget: Watts) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        let mut chosen = LevelId(0);
        for (id, level) in spec.vf_table.iter() {
            let per_core = spec.power.total_power(
                level,
                Self::SIZING_ACTIVITY,
                Celsius::new(Self::SIZING_TEMP),
            );
            if per_core * spec.cores as f64 <= budget {
                chosen = id;
            }
        }
        Ok(Self {
            level: chosen,
            cores: spec.cores,
        })
    }

    /// The level this controller always applies.
    pub fn level(&self) -> LevelId {
        self.level
    }
}

impl PowerController for StaticUniform {
    fn name(&self) -> &str {
        "static-uniform"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        debug_assert_eq!(out.len(), obs.cores.len());
        debug_assert_eq!(out.len(), self.cores);
        out.fill(self.level);
    }
}

/// Priority-greedy: rank cores by last-epoch throughput and hand out budget
/// in that order, giving each core the fastest level that still fits the
/// remaining budget (predictively).
///
/// A common industrial heuristic; performs well on homogeneous loads but
/// starves low-IPC cores that might have become compute-bound this epoch.
#[derive(Debug, Clone)]
pub struct PriorityGreedy {
    predictor: Predictor,
}

impl PriorityGreedy {
    /// Creates a priority-greedy controller.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec.
    pub fn new(spec: SystemSpec) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        Ok(Self {
            predictor: Predictor::new(spec),
        })
    }
}

impl PowerController for PriorityGreedy {
    fn name(&self) -> &str {
        "priority-greedy"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        let preds = self.predictor.predict_all(&obs.cores);
        let n = preds.len();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| obs.cores[b].ips.total_cmp(&obs.cores[a].ips));

        let mut remaining = obs.budget.value();
        // Reserve the minimum power of every unassigned core so nobody is
        // pushed below level 0 feasibility.
        let mut floor_reserve: f64 = preds.iter().map(|p| p[0].power.value()).sum();
        out.fill(LevelId(0));
        for &i in &order {
            floor_reserve -= preds[i][0].power.value();
            let mut chosen = 0;
            for l in (0..preds[i].len()).rev() {
                if preds[i][l].power.value() + floor_reserve <= remaining {
                    chosen = l;
                    break;
                }
            }
            out[i] = LevelId(chosen);
            remaining -= preds[i][chosen].power.value();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};

    fn spec(cores: usize) -> SystemSpec {
        SystemConfig::builder().cores(cores).build().unwrap().spec()
    }

    fn observation(cores: usize, budget: f64, seed: u64) -> Observation {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        sys.observation(Watts::new(budget))
    }

    #[test]
    fn static_uniform_tracks_budget_fraction() {
        let spec = spec(16);
        let tight = StaticUniform::for_budget(spec.clone(), Watts::new(10.0)).unwrap();
        let loose = StaticUniform::for_budget(spec.clone(), Watts::new(1e6)).unwrap();
        assert!(tight.level() < loose.level());
        assert_eq!(loose.level(), spec.vf_table.max_level());
    }

    #[test]
    fn static_uniform_zero_budget_is_bottom_level() {
        let ctrl = StaticUniform::for_budget(spec(16), Watts::ZERO).unwrap();
        assert_eq!(ctrl.level(), LevelId(0));
    }

    #[test]
    fn static_uniform_never_changes() {
        let mut ctrl = StaticUniform::for_budget(spec(8), Watts::new(14.0)).unwrap();
        let a = ctrl.decide(&observation(8, 14.0, 1));
        let b = ctrl.decide(&observation(8, 99.0, 2)); // budget change ignored
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn priority_greedy_respects_predicted_budget() {
        let mut ctrl = PriorityGreedy::new(spec(16)).unwrap();
        let obs = observation(16, 32.0, 4);
        let actions = ctrl.decide(&obs);
        let predictor = Predictor::new(spec(16));
        let preds = predictor.predict_all(&obs.cores);
        let total: f64 = actions
            .iter()
            .enumerate()
            .map(|(i, &a)| preds[i][a.index()].power.value())
            .sum();
        let min_possible: f64 = preds.iter().map(|p| p[0].power.value()).sum();
        if min_possible <= 32.0 {
            assert!(total <= 32.0 + 1e-9, "predicted {total} > 32 W");
        }
    }

    #[test]
    fn priority_greedy_favours_high_throughput_cores() {
        let mut ctrl = PriorityGreedy::new(spec(12)).unwrap();
        let obs = observation(12, 20.0, 5);
        let actions = ctrl.decide(&obs);
        let fastest = (0..12)
            .max_by(|&a, &b| obs.cores[a].ips.total_cmp(&obs.cores[b].ips))
            .unwrap();
        let max_level = actions.iter().max().unwrap();
        assert_eq!(actions[fastest], *max_level);
    }

    #[test]
    fn priority_greedy_generous_budget_maxes_everyone() {
        let mut ctrl = PriorityGreedy::new(spec(8)).unwrap();
        let obs = observation(8, 1e6, 6);
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|&a| a == LevelId(7)));
    }
}
