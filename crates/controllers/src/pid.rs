//! Chip-level PID power capping driving a uniform VF level.
//!
//! The commercial power-capping archetype (RAPL-style): a single feedback
//! loop on measured chip power adjusts one continuous control variable —
//! here a fractional VF-level index applied uniformly to all cores. Simple
//! and robust, but blind to per-core heterogeneity: it throttles
//! compute-bound and memory-bound cores alike.

use crate::error::ControllerError;
use crate::PowerController;
use odrl_manycore::{Observation, SystemSpec};
use odrl_power::LevelId;
use serde::{Deserialize, Serialize};

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidGains {
    /// Proportional gain (level index per watt of error).
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Anti-windup clamp on the integral term (in level-index units).
    pub integral_limit: f64,
}

impl Default for PidGains {
    /// Gains tuned for the default 8-level table and ~1 W/level/core
    /// plant sensitivity: gentle proportional action, slow integral.
    fn default() -> Self {
        Self {
            kp: 0.04,
            ki: 0.01,
            kd: 0.005,
            integral_limit: 8.0,
        }
    }
}

/// The PID power-capping controller.
///
/// ```
/// use odrl_controllers::{PidController, PidGains, PowerController};
/// use odrl_manycore::SystemConfig;
///
/// let spec = SystemConfig::builder().cores(32).build()?.spec();
/// let ctrl = PidController::new(spec, PidGains::default())?;
/// assert_eq!(ctrl.name(), "pid");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PidController {
    max_level: f64,
    gains: PidGains,
    /// Continuous level index in `[0, max_level]`.
    index: f64,
    integral: f64,
    last_error: Option<f64>,
    /// Per-watt normalisation so gains transfer across chip sizes.
    error_scale: f64,
}

impl PidController {
    /// Creates a PID controller.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec or
    /// [`ControllerError::InvalidParameter`] for non-finite gains.
    pub fn new(spec: SystemSpec, gains: PidGains) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        for (name, v) in [
            ("kp", gains.kp),
            ("ki", gains.ki),
            ("kd", gains.kd),
            ("integral_limit", gains.integral_limit),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ControllerError::InvalidParameter { name, value: v });
            }
        }
        let max_level = (spec.vf_table.len() - 1) as f64;
        Ok(Self {
            max_level,
            gains,
            index: max_level, // start fast; the loop pulls power down
            integral: 0.0,
            last_error: None,
            // Normalise error by core count: a watt of chip-level error
            // means less on a 1024-core chip than on a 16-core chip.
            error_scale: 1.0 / spec.cores as f64,
        })
    }

    /// The current continuous level index (visible for tests/telemetry).
    pub fn index(&self) -> f64 {
        self.index
    }
}

impl PowerController for PidController {
    fn name(&self) -> &str {
        "pid"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        debug_assert_eq!(out.len(), obs.cores.len());
        if obs.cores.is_empty() {
            return;
        }
        // Positive error = headroom below budget.
        let error = (obs.budget - obs.total_power).value() * self.error_scale;
        self.integral =
            (self.integral + error).clamp(-self.gains.integral_limit, self.gains.integral_limit);
        let derivative = self.last_error.map_or(0.0, |last| error - last);
        self.last_error = Some(error);
        let output =
            self.gains.kp * error + self.gains.ki * self.integral + self.gains.kd * derivative;
        self.index = (self.index + output).clamp(0.0, self.max_level);
        out.fill(LevelId(self.index.round() as usize));
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field setup reads better in tests
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};
    use odrl_power::Watts;

    fn run_pid(cores: usize, budget_frac: f64, epochs: u64) -> (f64, f64) {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(11)
            .build()
            .unwrap();
        let budget = Watts::new(budget_frac * config.max_power().value());
        let mut sys = System::new(config).unwrap();
        let mut ctrl = PidController::new(sys.spec(), PidGains::default()).unwrap();
        let mut tail_power = 0.0;
        let mut tail = 0;
        for e in 0..epochs {
            let obs = sys.observation(budget);
            let actions = ctrl.decide(&obs);
            let r = sys.step(&actions).unwrap();
            if e >= epochs * 3 / 4 {
                tail_power += r.total_power.value();
                tail += 1;
            }
        }
        (tail_power / tail as f64, budget.value())
    }

    #[test]
    fn settles_near_the_budget() {
        let (avg, budget) = run_pid(16, 0.6, 400);
        let rel = (avg - budget).abs() / budget;
        assert!(rel < 0.15, "PID settled at {avg} W for budget {budget} W");
    }

    #[test]
    fn all_cores_get_the_same_level() {
        let config = SystemConfig::builder().cores(8).build().unwrap();
        let sys = System::new(config).unwrap();
        let mut ctrl = PidController::new(sys.spec(), PidGains::default()).unwrap();
        let obs = sys.observation(Watts::new(10.0));
        let actions = ctrl.decide(&obs);
        assert!(actions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn starts_at_top_and_backs_off_under_tight_budget() {
        let config = SystemConfig::builder().cores(8).seed(2).build().unwrap();
        let budget = Watts::new(0.3 * config.max_power().value());
        let mut sys = System::new(config).unwrap();
        let mut ctrl = PidController::new(sys.spec(), PidGains::default()).unwrap();
        let initial = ctrl.index();
        for _ in 0..100 {
            let obs = sys.observation(budget);
            let actions = ctrl.decide(&obs);
            sys.step(&actions).unwrap();
        }
        assert!(ctrl.index() < initial, "controller should back off");
    }

    #[test]
    fn rejects_bad_gains() {
        let spec = SystemConfig::builder().cores(4).build().unwrap().spec();
        let mut g = PidGains::default();
        g.kp = f64::NAN;
        assert!(PidController::new(spec.clone(), g).is_err());
        let mut g = PidGains::default();
        g.ki = -1.0;
        assert!(PidController::new(spec, g).is_err());
    }

    #[test]
    fn integral_is_clamped() {
        let config = SystemConfig::builder().cores(4).build().unwrap();
        let mut ctrl = PidController::new(config.spec(), PidGains::default()).unwrap();
        let mut sys = System::new(config).unwrap();
        // Hammer with a huge persistent error; index must stay in range.
        for _ in 0..1000 {
            let obs = sys.observation(Watts::new(1e9));
            let actions = ctrl.decide(&obs);
            sys.step(&actions).unwrap();
        }
        assert!(ctrl.index() <= (8 - 1) as f64);
        assert!(ctrl.index().is_finite());
    }
}
