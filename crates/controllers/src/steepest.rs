//! Steepest Drop: greedy maximize-then-reduce level assignment.
//!
//! The heuristic family behind Procrustes/HaDeS-style power capping: start
//! with every core at its fastest level, then repeatedly take the single
//! level step-down that loses the least predicted performance per watt
//! saved, until the predicted total power fits the budget. Runs in
//! `O(n·L·log n)` with a binary heap.

use crate::error::ControllerError;
use crate::predict::{PredictedPoint, PredictionTable, Predictor};
use crate::PowerController;
use odrl_manycore::{Observation, SystemSpec};
use odrl_power::LevelId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The Steepest Drop controller.
///
/// ```
/// use odrl_controllers::{SteepestDrop, PowerController};
/// use odrl_manycore::SystemConfig;
///
/// let spec = SystemConfig::builder().cores(64).build()?.spec();
/// let ctrl = SteepestDrop::new(spec)?;
/// assert_eq!(ctrl.name(), "steepest-drop");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SteepestDrop {
    predictor: Predictor,
    preds: PredictionTable,
    levels: Vec<usize>,
    heap: BinaryHeap<Drop>,
}

/// Heap entry: the candidate step-down for one core, ordered so the
/// *cheapest* performance loss per watt saved pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Drop {
    /// BIPS lost per watt saved by this step (lower pops first).
    loss_per_watt: f64,
    core: usize,
    from: usize,
}

impl Eq for Drop {}

impl Ord for Drop {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest ratio pops first.
        other
            .loss_per_watt
            .partial_cmp(&self.loss_per_watt)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.core.cmp(&self.core))
    }
}

impl PartialOrd for Drop {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl SteepestDrop {
    /// Creates a Steepest Drop controller.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec.
    pub fn new(spec: SystemSpec) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        Ok(Self {
            predictor: Predictor::new(spec),
            preds: PredictionTable::default(),
            levels: Vec::new(),
            heap: BinaryHeap::new(),
        })
    }

    fn step_loss(pred: &[PredictedPoint], from: usize) -> Option<Drop> {
        if from == 0 {
            return None;
        }
        let hi = pred[from];
        let lo = pred[from - 1];
        let saved = (hi.power - lo.power).value().max(1e-12);
        let lost = (hi.ips - lo.ips).max(0.0);
        Some(Drop {
            loss_per_watt: lost / saved,
            core: 0, // filled by caller
            from,
        })
    }
}

impl PowerController for SteepestDrop {
    fn name(&self) -> &str {
        "steepest-drop"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        self.predictor.predict_all_into(&obs.cores, &mut self.preds);
        let preds = &self.preds;
        let n = preds.cores();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }
        let top = preds.levels() - 1;
        let levels = &mut self.levels;
        levels.clear();
        levels.resize(n, top);
        let mut power: f64 = (0..n).map(|i| preds.row(i)[top].power.value()).sum();
        let budget = obs.budget.value();

        let heap = &mut self.heap;
        heap.clear();
        for i in 0..n {
            if let Some(mut d) = Self::step_loss(preds.row(i), top) {
                d.core = i;
                heap.push(d);
            }
        }

        while power > budget {
            let Some(d) = heap.pop() else {
                break; // every core already at its minimum level
            };
            // Skip stale entries (the core moved since this was pushed).
            if levels[d.core] != d.from {
                continue;
            }
            let pred = preds.row(d.core);
            power -= (pred[d.from].power - pred[d.from - 1].power).value();
            levels[d.core] = d.from - 1;
            if let Some(mut next) = Self::step_loss(pred, d.from - 1) {
                next.core = d.core;
                heap.push(next);
            }
        }
        for (slot, &level) in out.iter_mut().zip(levels.iter()) {
            *slot = LevelId(level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};
    use odrl_power::Watts;
    use odrl_workload::MixPolicy;

    fn observation(cores: usize, budget: f64, mix: MixPolicy, seed: u64) -> Observation {
        let config = SystemConfig::builder()
            .cores(cores)
            .mix(mix)
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        sys.observation(Watts::new(budget))
    }

    fn spec(cores: usize) -> SystemSpec {
        SystemConfig::builder().cores(cores).build().unwrap().spec()
    }

    #[test]
    fn generous_budget_keeps_top_levels() {
        let mut ctrl = SteepestDrop::new(spec(8)).unwrap();
        let obs = observation(8, 1e6, MixPolicy::RoundRobin, 1);
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|&a| a == LevelId(7)));
    }

    #[test]
    fn impossible_budget_bottoms_out() {
        let mut ctrl = SteepestDrop::new(spec(8)).unwrap();
        let obs = observation(8, 0.0, MixPolicy::RoundRobin, 1);
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|&a| a == LevelId(0)));
    }

    #[test]
    fn predicted_power_fits_budget_when_feasible() {
        let mut ctrl = SteepestDrop::new(spec(16)).unwrap();
        let obs = observation(16, 35.0, MixPolicy::RoundRobin, 2);
        let actions = ctrl.decide(&obs);
        let predictor = Predictor::new(spec(16));
        let preds = predictor.predict_all(&obs.cores);
        let total: f64 = actions
            .iter()
            .enumerate()
            .map(|(i, &a)| preds[i][a.index()].power.value())
            .sum();
        let min_possible: f64 = preds.iter().map(|p| p[0].power.value()).sum();
        if min_possible <= 35.0 {
            assert!(total <= 35.0 + 1e-9, "predicted {total} W > 35 W budget");
        }
    }

    #[test]
    fn memory_bound_cores_are_throttled_first() {
        // Mixed workload: under a medium budget, Steepest Drop should leave
        // compute-bound cores (high marginal BIPS/W) faster than
        // memory-bound ones.
        let mut ctrl = SteepestDrop::new(spec(12)).unwrap();
        let obs = observation(12, 24.0, MixPolicy::RoundRobin, 3);
        let actions = ctrl.decide(&obs);
        // Find the most memory-bound and most compute-bound core.
        let mb: Vec<f64> = obs.cores.iter().map(|c| c.memory_boundedness()).collect();
        let most_mem = (0..12).max_by(|&a, &b| mb[a].total_cmp(&mb[b])).unwrap();
        let most_cpu = (0..12).min_by(|&a, &b| mb[a].total_cmp(&mb[b])).unwrap();
        assert!(
            actions[most_cpu] >= actions[most_mem],
            "compute-bound core at {:?}, memory-bound at {:?}",
            actions[most_cpu],
            actions[most_mem]
        );
    }

    #[test]
    fn drop_ordering_pops_cheapest_loss() {
        let mut heap = BinaryHeap::new();
        heap.push(Drop {
            loss_per_watt: 5.0,
            core: 0,
            from: 3,
        });
        heap.push(Drop {
            loss_per_watt: 1.0,
            core: 1,
            from: 3,
        });
        heap.push(Drop {
            loss_per_watt: 3.0,
            core: 2,
            from: 3,
        });
        assert_eq!(heap.pop().unwrap().core, 1);
        assert_eq!(heap.pop().unwrap().core, 2);
        assert_eq!(heap.pop().unwrap().core, 0);
    }
}
