//! MaxBIPS: per-epoch predictive throughput maximization under a power
//! budget (Isci et al., "An Analysis of Efficient Multi-Core Global Power
//! Management Policies: Maximizing Performance for a Given Power Budget",
//! MICRO 2006).
//!
//! Every epoch, MaxBIPS predicts each core's (BIPS, W) at every VF level
//! from last-epoch counters and picks the level assignment maximizing total
//! BIPS subject to total predicted power ≤ budget. Two solvers are
//! provided:
//!
//! * [`MaxBipsMode::Exhaustive`] — the algorithm as published: enumerate
//!   all `L^n` combinations (with branch-and-bound pruning). Exact but
//!   exponential; only viable for a handful of cores. This is the
//!   combinatorial wall the paper's scalability claim is measured against.
//! * [`MaxBipsMode::Dp`] — a pseudo-polynomial knapsack DP over quantized
//!   power, the strongest tractable variant; used as the quality baseline
//!   at realistic core counts.

use crate::error::ControllerError;
use crate::predict::{PredictionTable, Predictor};
use crate::PowerController;
use odrl_manycore::{Observation, SystemSpec};
use odrl_power::LevelId;
use serde::{Deserialize, Serialize};

/// Which MaxBIPS solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MaxBipsMode {
    /// Exact enumeration of all level assignments (exponential in cores).
    Exhaustive,
    /// Knapsack dynamic program over `power_bins` quantized power slots.
    Dp {
        /// Number of power quantization bins (more = finer, slower).
        power_bins: usize,
    },
}

/// The MaxBIPS controller.
///
/// ```
/// use odrl_controllers::{MaxBips, MaxBipsMode, PowerController};
/// use odrl_manycore::SystemConfig;
///
/// let spec = SystemConfig::builder().cores(4).build()?.spec();
/// let ctrl = MaxBips::new(spec, MaxBipsMode::Exhaustive)?;
/// assert_eq!(ctrl.name(), "maxbips-exhaustive");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MaxBips {
    predictor: Predictor,
    mode: MaxBipsMode,
    name: &'static str,
    preds: PredictionTable,
    scratch: MaxBipsScratch,
}

/// Solver working buffers, reused across decides so the steady-state
/// decision path never allocates.
#[derive(Debug, Clone, Default)]
struct MaxBipsScratch {
    /// Branch-and-bound: minimum completion power for cores `i..n`.
    min_power_suffix: Vec<f64>,
    /// Branch-and-bound: maximum remaining bips for cores `i..n`.
    max_bips_suffix: Vec<f64>,
    /// Branch-and-bound: the assignment on the current DFS path.
    current: Vec<usize>,
    /// Branch-and-bound: the best complete assignment found so far.
    best: Vec<LevelId>,
    /// Knapsack DP: best bips per power-quantum budget, previous core row.
    dp: Vec<f64>,
    /// Knapsack DP: best bips per power-quantum budget, current core row.
    dp_cur: Vec<f64>,
    /// Knapsack DP backtracking matrix, flattened to `n × (bins + 1)`.
    choice: Vec<usize>,
}

/// Exhaustive search is capped at this many cores (8 levels ⇒ 8^10 ≈ 1e9
/// raw combinations; pruning keeps ≤ 10 cores barely tractable for tests).
pub const EXHAUSTIVE_CORE_LIMIT: usize = 10;

impl MaxBips {
    /// Creates a MaxBIPS controller.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::TooManyCores`] for
    /// [`MaxBipsMode::Exhaustive`] beyond [`EXHAUSTIVE_CORE_LIMIT`] cores,
    /// [`ControllerError::InvalidParameter`] for a DP with zero bins, or
    /// [`ControllerError::EmptySpec`] for a degenerate spec.
    pub fn new(spec: SystemSpec, mode: MaxBipsMode) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        let name = match mode {
            MaxBipsMode::Exhaustive => {
                if spec.cores > EXHAUSTIVE_CORE_LIMIT {
                    return Err(ControllerError::TooManyCores {
                        requested: spec.cores,
                        limit: EXHAUSTIVE_CORE_LIMIT,
                    });
                }
                "maxbips-exhaustive"
            }
            MaxBipsMode::Dp { power_bins } => {
                if power_bins == 0 {
                    return Err(ControllerError::InvalidParameter {
                        name: "power_bins",
                        value: 0.0,
                    });
                }
                "maxbips-dp"
            }
        };
        Ok(Self {
            predictor: Predictor::new(spec),
            mode,
            name,
            preds: PredictionTable::default(),
            scratch: MaxBipsScratch::default(),
        })
    }

    /// The default DP configuration (1024 power bins — fine enough that
    /// conservative cost rounding wastes well under 1 % of the budget).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec.
    pub fn dp(spec: SystemSpec) -> Result<Self, ControllerError> {
        Self::new(spec, MaxBipsMode::Dp { power_bins: 1024 })
    }

    fn solve_exhaustive(
        preds: &PredictionTable,
        budget: f64,
        scratch: &mut MaxBipsScratch,
        out: &mut [LevelId],
    ) {
        let n = preds.cores();
        let levels = preds.levels();
        // Branch and bound over cores in order. For pruning we need, for the
        // remaining cores, the minimum possible power and the maximum
        // possible additional bips.
        let min_power_suffix = &mut scratch.min_power_suffix;
        let max_bips_suffix = &mut scratch.max_bips_suffix;
        min_power_suffix.clear();
        min_power_suffix.resize(n + 1, 0.0);
        max_bips_suffix.clear();
        max_bips_suffix.resize(n + 1, 0.0);
        for i in (0..n).rev() {
            if i > 0 {
                preds.prefetch_row(i - 1);
            }
            let row = preds.row(i);
            let min_p = row.iter().map(|p| p.power.value()).fold(f64::MAX, f64::min);
            let max_b = row.iter().map(|p| p.ips).fold(0.0, f64::max);
            min_power_suffix[i] = min_power_suffix[i + 1] + min_p;
            max_bips_suffix[i] = max_bips_suffix[i + 1] + max_b;
        }

        let mut best_bips = f64::NEG_INFINITY;
        let best = &mut scratch.best;
        let current = &mut scratch.current;
        best.clear();
        best.resize(n, LevelId(0));
        current.clear();
        current.resize(n, 0usize);

        #[allow(clippy::too_many_arguments)] // recursive helper threads its search state explicitly
        fn dfs(
            i: usize,
            power: f64,
            bips: f64,
            budget: f64,
            preds: &PredictionTable,
            min_power_suffix: &[f64],
            max_bips_suffix: &[f64],
            current: &mut [usize],
            best_bips: &mut f64,
            best: &mut [LevelId],
            levels: usize,
        ) {
            if i == preds.cores() {
                if bips > *best_bips {
                    *best_bips = bips;
                    for (b, &c) in best.iter_mut().zip(current.iter()) {
                        *b = LevelId(c);
                    }
                }
                return;
            }
            // Prune: even the cheapest completion busts the budget.
            if power + min_power_suffix[i] > budget {
                return;
            }
            // Prune: even the best completion cannot beat the incumbent.
            if bips + max_bips_suffix[i] <= *best_bips {
                return;
            }
            // Try fastest levels first so good incumbents appear early.
            for l in (0..levels).rev() {
                let pt = preds.row(i)[l];
                if power + pt.power.value() + min_power_suffix[i + 1] > budget {
                    continue;
                }
                current[i] = l;
                dfs(
                    i + 1,
                    power + pt.power.value(),
                    bips + pt.ips,
                    budget,
                    preds,
                    min_power_suffix,
                    max_bips_suffix,
                    current,
                    best_bips,
                    best,
                    levels,
                );
            }
        }

        dfs(
            0,
            0.0,
            0.0,
            budget,
            preds,
            min_power_suffix,
            max_bips_suffix,
            current,
            &mut best_bips,
            best,
            levels,
        );
        if best_bips.is_finite() {
            out.copy_from_slice(best);
        } else {
            // No feasible assignment even at minimum levels.
            out.fill(LevelId(0));
        }
    }

    fn solve_dp(
        preds: &PredictionTable,
        budget: f64,
        bins: usize,
        scratch: &mut MaxBipsScratch,
        out: &mut [LevelId],
    ) {
        let n = preds.cores();
        let levels = preds.levels();
        if budget <= 0.0 {
            out.fill(LevelId(0));
            return;
        }
        let quantum = budget / bins as f64;
        // Quantize each point's power, rounding *up* so the DP's budget
        // check is conservative (never plans an over-budget assignment).
        let cost = |p: f64| ((p / quantum).ceil() as usize).min(bins + 1);

        const NEG: f64 = f64::NEG_INFINITY;
        // dp[b] = best total bips for the cores processed so far using at
        // most b quanta; choice[i * (bins + 1) + b] = level picked for core
        // i in the best solution at budget b (usize::MAX = infeasible).
        let dp = &mut scratch.dp;
        let dp_cur = &mut scratch.dp_cur;
        let choice = &mut scratch.choice;
        dp.clear();
        dp.resize(bins + 1, 0.0); // zero cores: zero bips everywhere
        dp_cur.clear();
        dp_cur.resize(bins + 1, NEG);
        choice.clear();
        choice.resize(n * (bins + 1), usize::MAX);
        for i in 0..n {
            preds.prefetch_row(i + 1);
            let pred = preds.row(i);
            let choice_row = &mut choice[i * (bins + 1)..(i + 1) * (bins + 1)];
            for v in dp_cur.iter_mut() {
                *v = NEG;
            }
            for b in 0..=bins {
                for (l, point) in pred.iter().enumerate().take(levels) {
                    let c = cost(point.power.value());
                    if c > b {
                        continue;
                    }
                    let prev = dp[b - c];
                    if prev == NEG {
                        continue;
                    }
                    let total = prev + point.ips;
                    if total > dp_cur[b] {
                        dp_cur[b] = total;
                        choice_row[b] = l;
                    }
                }
            }
            std::mem::swap(dp, dp_cur);
        }

        if dp[bins] == NEG {
            out.fill(LevelId(0));
            return;
        }
        // Backtrack. Because every dp row is monotone non-decreasing in b
        // (lower levels cost at most as much), following choice[i][b] and
        // subtracting its cost reconstructs a feasible assignment.
        out.fill(LevelId(0));
        let mut b = bins;
        for i in (0..n).rev() {
            let l = choice[i * (bins + 1) + b];
            if l == usize::MAX {
                break; // defensive: dp[bins] finite implies this never hits
            }
            out[i] = LevelId(l);
            let c = cost(preds.row(i)[l].power.value());
            b = b.saturating_sub(c);
        }
    }
}

impl PowerController for MaxBips {
    fn name(&self) -> &str {
        self.name
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        self.predictor.predict_all_into(&obs.cores, &mut self.preds);
        debug_assert_eq!(out.len(), self.preds.cores());
        if self.preds.is_empty() {
            return;
        }
        let budget = obs.budget.value();
        match self.mode {
            MaxBipsMode::Exhaustive => {
                Self::solve_exhaustive(&self.preds, budget, &mut self.scratch, out);
            }
            MaxBipsMode::Dp { power_bins } => {
                Self::solve_dp(&self.preds, budget, power_bins, &mut self.scratch, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};
    use odrl_power::Watts;

    fn spec(cores: usize) -> SystemSpec {
        SystemConfig::builder().cores(cores).build().unwrap().spec()
    }

    fn observation(cores: usize, budget: f64, seed: u64) -> Observation {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        sys.observation(Watts::new(budget))
    }

    #[test]
    fn exhaustive_rejects_large_systems() {
        assert!(matches!(
            MaxBips::new(spec(64), MaxBipsMode::Exhaustive),
            Err(ControllerError::TooManyCores { .. })
        ));
        assert!(MaxBips::new(spec(4), MaxBipsMode::Exhaustive).is_ok());
    }

    #[test]
    fn dp_rejects_zero_bins() {
        assert!(MaxBips::new(spec(4), MaxBipsMode::Dp { power_bins: 0 }).is_err());
    }

    #[test]
    fn tight_budget_forces_low_levels() {
        let mut ctrl = MaxBips::dp(spec(8)).unwrap();
        let obs = observation(8, 1.0, 1); // absurdly tight budget
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|&a| a == LevelId(0)));
    }

    #[test]
    fn generous_budget_allows_top_levels() {
        let mut ctrl = MaxBips::dp(spec(8)).unwrap();
        let obs = observation(8, 1e6, 1);
        let actions = ctrl.decide(&obs);
        assert!(actions.iter().all(|&a| a == LevelId(7)), "{actions:?}");
    }

    #[test]
    fn exhaustive_and_dp_agree_on_small_systems() {
        let mut ex = MaxBips::new(spec(4), MaxBipsMode::Exhaustive).unwrap();
        let mut dp = MaxBips::new(spec(4), MaxBipsMode::Dp { power_bins: 2048 }).unwrap();
        for seed in 0..5u64 {
            let obs = observation(4, 10.0 + seed as f64 * 2.0, seed);
            let a_ex = ex.decide(&obs);
            let a_dp = dp.decide(&obs);
            // Compare achieved predicted bips, not exact levels (ties).
            let predictor = Predictor::new(spec(4));
            let preds = predictor.predict_all(&obs.cores);
            let bips = |acts: &[LevelId]| -> f64 {
                acts.iter()
                    .enumerate()
                    .map(|(i, &a)| preds[i][a.index()].ips)
                    .sum()
            };
            let power = |acts: &[LevelId]| -> f64 {
                acts.iter()
                    .enumerate()
                    .map(|(i, &a)| preds[i][a.index()].power.value())
                    .sum()
            };
            assert!(power(&a_ex) <= obs.budget.value() + 1e-9);
            assert!(power(&a_dp) <= obs.budget.value() + 1e-9);
            // DP is conservative (rounds power up), so exhaustive wins or ties
            // within quantization slack.
            assert!(
                bips(&a_dp) <= bips(&a_ex) + 1e-6,
                "dp {} > exhaustive {}",
                bips(&a_dp),
                bips(&a_ex)
            );
            assert!(
                bips(&a_dp) >= 0.90 * bips(&a_ex),
                "dp too far from optimal: {} vs {}",
                bips(&a_dp),
                bips(&a_ex)
            );
        }
    }

    #[test]
    fn dp_respects_budget_on_predictions() {
        let mut ctrl = MaxBips::dp(spec(16)).unwrap();
        let obs = observation(16, 30.0, 3);
        let actions = ctrl.decide(&obs);
        let predictor = Predictor::new(spec(16));
        let preds = predictor.predict_all(&obs.cores);
        let total: f64 = actions
            .iter()
            .enumerate()
            .map(|(i, &a)| preds[i][a.index()].power.value())
            .sum();
        assert!(total <= 30.0 + 1e-9, "predicted power {total} > budget");
    }

    #[test]
    fn empty_observation_yields_empty_actions() {
        let mut ctrl = MaxBips::dp(spec(4)).unwrap();
        let obs = Observation {
            epoch: 0,
            dt: odrl_power::Seconds::new(1e-3),
            budget: Watts::new(10.0),
            cores: vec![],
            total_power: Watts::ZERO,
        };
        assert!(ctrl.decide(&obs).is_empty());
    }
}
