//! The power-capping controller interface and state-of-the-art baselines.
//!
//! Every DVFS power-capping scheme in this workspace — including the
//! paper's OD-RL in `odrl-core` — implements [`PowerController`]: read an
//! [`Observation`] (per-core counters, powers, temperatures, chip power,
//! budget), return one VF level per core.
//!
//! Baselines implemented from their published descriptions:
//!
//! * [`MaxBips`] — Isci et al. (MICRO'06) predictive global optimization,
//!   both exhaustive (exact, exponential) and knapsack-DP
//!   (pseudo-polynomial) solvers;
//! * [`SteepestDrop`] — greedy maximize-then-reduce heuristic
//!   (Procrustes/HaDeS family);
//! * [`PidController`] — chip-level feedback capping with a uniform level
//!   (RAPL-style);
//! * [`OndemandGovernor`] — a Linux-ondemand-style utilization governor,
//!   deliberately budget-oblivious (shows why capping is needed);
//! * [`StaticUniform`] — worst-case static provisioning;
//! * [`PriorityGreedy`] — rank-by-IPS budget hand-out.
//!
//! [`IslandController`] adapts any of them (and OD-RL) to coarser
//! voltage/frequency-island granularities.
//!
//! # Example
//!
//! ```
//! use odrl_controllers::{PowerController, SteepestDrop};
//! use odrl_manycore::{System, SystemConfig};
//! use odrl_power::Watts;
//!
//! let config = SystemConfig::builder().cores(16).seed(1).build()?;
//! let budget = Watts::new(0.6 * config.max_power().value());
//! let mut system = System::new(config)?;
//! let mut ctrl = SteepestDrop::new(system.spec())?;
//! for _ in 0..20 {
//!     let obs = system.observation(budget);
//!     let actions = ctrl.decide(&obs);
//!     system.step(&actions)?;
//! }
//! assert!(system.telemetry().total_instructions() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod islands;
pub mod maxbips;
pub mod ondemand;
pub mod pid;
pub mod predict;
pub mod simple;
pub mod steepest;

pub use error::ControllerError;
pub use islands::{IslandController, IslandMap};
pub use maxbips::{MaxBips, MaxBipsMode, EXHAUSTIVE_CORE_LIMIT};
pub use ondemand::{OndemandGovernor, OndemandTuning};
pub use pid::{PidController, PidGains};
pub use predict::{PredictedPoint, PredictionTable, Predictor};
pub use simple::{PriorityGreedy, StaticUniform};
pub use steepest::SteepestDrop;

use odrl_manycore::Observation;
use odrl_obs::{EventCounts, EventRecord, LearnDiag, MetricsSnapshot};
use odrl_power::LevelId;

/// A per-epoch DVFS power-capping policy.
///
/// Implementations must be deterministic given their construction seed and
/// the observation sequence, so experiments are reproducible.
///
/// Implementors provide [`PowerController::decide_into`], the
/// zero-allocation hot path the closed loop drives every epoch;
/// [`PowerController::decide`] is a convenience wrapper that allocates a
/// fresh vector per call.
pub trait PowerController {
    /// A short stable identifier used in reports and tables.
    fn name(&self) -> &str;

    /// Chooses one VF level per core for the upcoming epoch, writing the
    /// decision into `out` without allocating.
    ///
    /// `out` has exactly `obs.cores.len()` slots (one per observed core);
    /// every slot must be written with a level valid for the system's VF
    /// table.
    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]);

    /// Chooses one VF level per core, returning a freshly allocated vector
    /// of exactly `obs.cores.len()` levels.
    ///
    /// Prefer [`PowerController::decide_into`] with a reused buffer in hot
    /// loops; this wrapper exists for convenience and backward
    /// compatibility.
    fn decide(&mut self, obs: &Observation) -> Vec<LevelId> {
        let mut out = vec![LevelId(0); obs.cores.len()];
        self.decide_into(obs, &mut out);
        out
    }

    /// Per-kind totals of the structured events this controller recorded,
    /// when it is instrumented (see `odrl-obs`). The default — and the
    /// baselines, which have no tracer — report `None`.
    fn event_counts(&self) -> Option<EventCounts> {
        None
    }

    /// Appends every trace record this controller holds onto `out`
    /// (see `odrl-obs`). The default — and the baselines, which record
    /// nothing — is a no-op; pass the result through
    /// `odrl_obs::merge_records` before export.
    fn extend_trace_into(&self, out: &mut Vec<EventRecord>) {
        let _ = out;
    }

    /// The controller's most recent per-epoch metrics snapshot, when it is
    /// instrumented (see `odrl-obs`). The default — and the baselines,
    /// which keep no metrics — report `None`.
    fn metrics_snapshot(&self) -> Option<&MetricsSnapshot> {
        None
    }

    /// Run-cumulative learning-health diagnostics, when the controller
    /// learns and records them (see `odrl-obs`). Baselines and
    /// non-learning controllers report `None`.
    fn learn_diag(&self) -> Option<&LearnDiag> {
        None
    }
}
