//! Voltage/frequency-island (VFI) grouping: run any controller at a
//! coarser DVFS granularity.
//!
//! Real many-cores rarely give every core its own voltage regulator;
//! cores are grouped into islands sharing one VF domain (the design space
//! explored by the VFI literature this paper builds on). The
//! [`IslandController`] adapter makes any [`PowerController`] island-aware:
//! it collapses the per-core observation into one pseudo-core per island
//! (mean rates and counters, summed-then-averaged power, hottest
//! temperature), scales the chip budget to the pseudo-core count, runs the
//! inner controller, and broadcasts each island's level to its member
//! cores.
//!
//! Per-core VFIs (`island_size == 1`) reduce to the identity adapter, so
//! the granularity sweep in `exp_granularity` is apples-to-apples.

use crate::error::ControllerError;
use crate::PowerController;
use odrl_manycore::{CoreObservation, Observation, SystemSpec};
use odrl_power::{Celsius, LevelId, Watts};
use odrl_workload::PhaseParams;
use serde::{Deserialize, Serialize};

/// A partition of cores into voltage/frequency islands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandMap {
    /// `assignments[core] = island index`.
    assignments: Vec<usize>,
    /// Member cores per island.
    members: Vec<Vec<usize>>,
}

impl IslandMap {
    /// Partitions `cores` cores into contiguous islands of `island_size`
    /// (the last island may be smaller if sizes do not divide evenly).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] if `cores == 0` or
    /// [`ControllerError::InvalidParameter`] if `island_size == 0`.
    pub fn uniform(cores: usize, island_size: usize) -> Result<Self, ControllerError> {
        if cores == 0 {
            return Err(ControllerError::EmptySpec);
        }
        if island_size == 0 {
            return Err(ControllerError::InvalidParameter {
                name: "island_size",
                value: 0.0,
            });
        }
        let assignments: Vec<usize> = (0..cores).map(|c| c / island_size).collect();
        Self::new(assignments)
    }

    /// Builds a map from explicit per-core island indices.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for an empty assignment or
    /// [`ControllerError::InvalidParameter`] if island ids are not exactly
    /// `0..n_islands` with every island non-empty.
    pub fn new(assignments: Vec<usize>) -> Result<Self, ControllerError> {
        if assignments.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        let islands = assignments.iter().copied().max().unwrap_or(0) + 1;
        let mut members = vec![Vec::new(); islands];
        for (core, &isl) in assignments.iter().enumerate() {
            members[isl].push(core);
        }
        if members.iter().any(Vec::is_empty) {
            return Err(ControllerError::InvalidParameter {
                name: "assignments",
                value: islands as f64,
            });
        }
        Ok(Self {
            assignments,
            members,
        })
    }

    /// Number of cores covered.
    pub fn cores(&self) -> usize {
        self.assignments.len()
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.members.len()
    }

    /// The island core `c` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn island_of(&self, c: usize) -> usize {
        self.assignments[c]
    }

    /// Member cores of island `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn members(&self, i: usize) -> &[usize] {
        &self.members[i]
    }

    /// The island-level system spec an inner controller should be built
    /// against: one pseudo-core per island.
    pub fn island_spec(&self, spec: &SystemSpec) -> SystemSpec {
        SystemSpec {
            cores: self.islands(),
            ..spec.clone()
        }
    }
}

/// Wraps a controller built against [`IslandMap::island_spec`] so it drives
/// a per-core system at island granularity.
///
/// ```
/// use odrl_controllers::{IslandController, IslandMap, PowerController, SteepestDrop};
/// use odrl_manycore::SystemConfig;
///
/// let spec = SystemConfig::builder().cores(16).build()?.spec();
/// let map = IslandMap::uniform(16, 4)?; // four 4-core islands
/// let inner = SteepestDrop::new(map.island_spec(&spec))?;
/// let ctrl = IslandController::new(inner, map)?;
/// assert_eq!(ctrl.name(), "steepest-drop@x4");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IslandController<C> {
    inner: C,
    map: IslandMap,
    name: String,
}

impl<C: PowerController> IslandController<C> {
    /// Wraps `inner` (built for [`IslandMap::island_spec`]) with `map`.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] if the map covers no cores.
    pub fn new(inner: C, map: IslandMap) -> Result<Self, ControllerError> {
        if map.cores() == 0 {
            return Err(ControllerError::EmptySpec);
        }
        let size = map.cores().div_ceil(map.islands());
        let name = format!("{}@x{}", inner.name(), size);
        Ok(Self { inner, map, name })
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The island partition.
    pub fn map(&self) -> &IslandMap {
        &self.map
    }

    fn collapse(&self, obs: &Observation) -> Observation {
        let scale = self.map.islands() as f64 / self.map.cores() as f64;
        let cores = (0..self.map.islands())
            .map(|i| {
                let members = self.map.members(i);
                let k = members.len() as f64;
                let mean = |f: &dyn Fn(&CoreObservation) -> f64| {
                    members.iter().map(|&c| f(&obs.cores[c])).sum::<f64>() / k
                };
                CoreObservation {
                    level: obs.cores[members[0]].level,
                    ips: mean(&|c| c.ips),
                    power: Watts::new(mean(&|c| c.power.value())),
                    temperature: Celsius::new(
                        members
                            .iter()
                            .map(|&c| obs.cores[c].temperature.value())
                            .fold(f64::NEG_INFINITY, f64::max),
                    ),
                    counters: PhaseParams {
                        cpi_base: mean(&|c| c.counters.cpi_base),
                        mpki: mean(&|c| c.counters.mpki),
                        activity: mean(&|c| c.counters.activity),
                    },
                }
            })
            .collect();
        Observation {
            epoch: obs.epoch,
            dt: obs.dt,
            budget: obs.budget * scale,
            cores,
            total_power: obs.total_power * scale,
        }
    }
}

impl<C: PowerController> PowerController for IslandController<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        if obs.cores.len() != self.map.cores() {
            // Defensive: an observation of the wrong size gets the floor.
            out.fill(LevelId(0));
            return;
        }
        let island_obs = self.collapse(obs);
        let island_levels = self.inner.decide(&island_obs);
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = island_levels
                .get(self.map.island_of(c))
                .copied()
                .unwrap_or(LevelId(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steepest::SteepestDrop;
    use odrl_manycore::{System, SystemConfig};

    fn spec(cores: usize) -> SystemSpec {
        SystemConfig::builder().cores(cores).build().unwrap().spec()
    }

    #[test]
    fn uniform_map_partitions_contiguously() {
        let map = IslandMap::uniform(8, 4).unwrap();
        assert_eq!(map.islands(), 2);
        assert_eq!(map.members(0), &[0, 1, 2, 3]);
        assert_eq!(map.members(1), &[4, 5, 6, 7]);
        assert_eq!(map.island_of(5), 1);
        // Uneven split: last island smaller.
        let map = IslandMap::uniform(10, 4).unwrap();
        assert_eq!(map.islands(), 3);
        assert_eq!(map.members(2), &[8, 9]);
    }

    #[test]
    fn map_rejects_degenerate_inputs() {
        assert!(IslandMap::uniform(0, 4).is_err());
        assert!(IslandMap::uniform(8, 0).is_err());
        assert!(IslandMap::new(vec![]).is_err());
        // Island 1 empty (ids 0 and 2 used).
        assert!(IslandMap::new(vec![0, 2]).is_err());
    }

    #[test]
    fn members_of_an_island_share_a_level() {
        let cores = 16;
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(2)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        let map = IslandMap::uniform(cores, 4).unwrap();
        let inner = SteepestDrop::new(map.island_spec(&spec(cores))).unwrap();
        let mut ctrl = IslandController::new(inner, map.clone()).unwrap();
        let obs = sys.observation(Watts::new(25.0));
        let actions = ctrl.decide(&obs);
        assert_eq!(actions.len(), cores);
        for i in 0..map.islands() {
            let ms = map.members(i);
            assert!(ms.iter().all(|&c| actions[c] == actions[ms[0]]));
        }
    }

    #[test]
    fn island_size_one_matches_plain_controller() {
        let cores = 8;
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(3)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        let obs = sys.observation(Watts::new(14.0));

        let mut plain = SteepestDrop::new(spec(cores)).unwrap();
        let map = IslandMap::uniform(cores, 1).unwrap();
        let inner = SteepestDrop::new(map.island_spec(&spec(cores))).unwrap();
        let mut islanded = IslandController::new(inner, map).unwrap();
        assert_eq!(plain.decide(&obs), islanded.decide(&obs));
    }

    #[test]
    fn collapsed_budget_scales_with_island_count() {
        let map = IslandMap::uniform(8, 4).unwrap();
        let inner = SteepestDrop::new(map.island_spec(&spec(8))).unwrap();
        let ctrl = IslandController::new(inner, map).unwrap();
        let config = SystemConfig::builder().cores(8).seed(1).build().unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&[LevelId(4); 8]).unwrap();
        let obs = sys.observation(Watts::new(16.0));
        let collapsed = ctrl.collapse(&obs);
        assert_eq!(collapsed.cores.len(), 2);
        assert!((collapsed.budget.value() - 4.0).abs() < 1e-12); // 16 * 2/8
                                                                 // Pseudo-core power is the island mean.
        let mean: f64 = obs.cores[..4].iter().map(|c| c.power.value()).sum::<f64>() / 4.0;
        assert!((collapsed.cores[0].power.value() - mean).abs() < 1e-12);
    }

    #[test]
    fn wrong_sized_observation_degrades_safely() {
        let map = IslandMap::uniform(8, 2).unwrap();
        let inner = SteepestDrop::new(map.island_spec(&spec(8))).unwrap();
        let mut ctrl = IslandController::new(inner, map).unwrap();
        let config = SystemConfig::builder().cores(4).seed(1).build().unwrap();
        let sys = System::new(config).unwrap();
        let obs = sys.observation(Watts::new(10.0));
        let actions = ctrl.decide(&obs);
        assert_eq!(actions.len(), 4);
        assert!(actions.iter().all(|&a| a == LevelId(0)));
    }

    #[test]
    fn name_reflects_granularity() {
        let map = IslandMap::uniform(16, 8).unwrap();
        let inner = SteepestDrop::new(map.island_spec(&spec(16))).unwrap();
        let ctrl = IslandController::new(inner, map).unwrap();
        assert_eq!(ctrl.name(), "steepest-drop@x8");
    }
}
