//! An `ondemand`-style commodity governor: per-core, utilization-driven,
//! **budget-oblivious**.
//!
//! Linux's classic `ondemand` cpufreq governor raises frequency when a core
//! is busy and lowers it when idle, with no notion of a chip power budget.
//! The analogue for an always-busy many-core is memory-boundedness: a core
//! stalled on DRAM gains nothing from frequency (analogous to idle time),
//! while a compute-bound core wants the top level immediately. Hysteresis
//! (consecutive-epoch thresholds) avoids thrashing on phase noise.
//!
//! This baseline shows *why* power capping exists: it delivers excellent
//! throughput and energy-proportionality but blows straight through any
//! TDP constraint.

use crate::error::ControllerError;
use crate::PowerController;
use odrl_manycore::{Observation, SystemSpec};
use odrl_power::LevelId;
use serde::{Deserialize, Serialize};

/// Tuning of the [`OndemandGovernor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OndemandTuning {
    /// Memory-boundedness below which the core jumps straight to the top
    /// level (the governor's "high utilization" threshold).
    pub up_threshold: f64,
    /// Memory-boundedness above which the core steps down one level per
    /// `down_epochs` epochs.
    pub down_threshold: f64,
    /// Consecutive epochs above `down_threshold` required per step down.
    pub down_epochs: u32,
}

impl Default for OndemandTuning {
    fn default() -> Self {
        Self {
            up_threshold: 0.3,
            down_threshold: 0.6,
            down_epochs: 3,
        }
    }
}

/// The budget-oblivious ondemand-style governor.
///
/// ```
/// use odrl_controllers::{OndemandGovernor, PowerController};
/// use odrl_manycore::SystemConfig;
///
/// let spec = SystemConfig::builder().cores(16).build()?.spec();
/// let gov = OndemandGovernor::new(spec, Default::default())?;
/// assert_eq!(gov.name(), "ondemand");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    tuning: OndemandTuning,
    max_level: LevelId,
    /// Per-core count of consecutive memory-bound epochs.
    bound_streak: Vec<u32>,
    levels: Vec<LevelId>,
}

impl OndemandGovernor {
    /// Creates a governor.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptySpec`] for a degenerate spec or
    /// [`ControllerError::InvalidParameter`] for thresholds outside `[0, 1]`
    /// or inverted (`up >= down`), or `down_epochs == 0`.
    pub fn new(spec: SystemSpec, tuning: OndemandTuning) -> Result<Self, ControllerError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(ControllerError::EmptySpec);
        }
        for (name, v) in [
            ("up_threshold", tuning.up_threshold),
            ("down_threshold", tuning.down_threshold),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(ControllerError::InvalidParameter { name, value: v });
            }
        }
        if tuning.up_threshold >= tuning.down_threshold {
            return Err(ControllerError::InvalidParameter {
                name: "up_threshold",
                value: tuning.up_threshold,
            });
        }
        if tuning.down_epochs == 0 {
            return Err(ControllerError::InvalidParameter {
                name: "down_epochs",
                value: 0.0,
            });
        }
        Ok(Self {
            tuning,
            max_level: spec.vf_table.max_level(),
            bound_streak: vec![0; spec.cores],
            levels: vec![spec.vf_table.max_level(); spec.cores],
        })
    }
}

impl PowerController for OndemandGovernor {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        debug_assert_eq!(out.len(), obs.cores.len());
        let n = obs.cores.len().min(self.levels.len());
        for i in 0..n {
            let mb = obs.cores[i].memory_boundedness();
            if mb < self.tuning.up_threshold {
                // Busy: jump straight to the top (ondemand semantics).
                self.levels[i] = self.max_level;
                self.bound_streak[i] = 0;
            } else if mb > self.tuning.down_threshold {
                self.bound_streak[i] += 1;
                if self.bound_streak[i] >= self.tuning.down_epochs {
                    self.levels[i] = self.levels[i].step_down();
                    self.bound_streak[i] = 0;
                }
            } else {
                self.bound_streak[i] = 0;
            }
        }
        out[..n].copy_from_slice(&self.levels[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};
    use odrl_power::Watts;
    use odrl_workload::MixPolicy;

    fn spec(cores: usize) -> SystemSpec {
        SystemConfig::builder().cores(cores).build().unwrap().spec()
    }

    fn run(mix: MixPolicy, epochs: u64) -> (System, Vec<LevelId>) {
        let config = SystemConfig::builder()
            .cores(8)
            .mix(mix)
            .seed(3)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        let mut gov = OndemandGovernor::new(sys.spec(), OndemandTuning::default()).unwrap();
        let mut last = Vec::new();
        for _ in 0..epochs {
            let obs = sys.observation(Watts::new(1.0)); // budget is ignored
            last = gov.decide(&obs);
            sys.step(&last).unwrap();
        }
        (sys, last)
    }

    #[test]
    fn compute_bound_cores_run_flat_out() {
        let (_, levels) = run(MixPolicy::Homogeneous("swaptions".into()), 50);
        assert!(levels.iter().all(|&l| l == LevelId(7)), "{levels:?}");
    }

    #[test]
    fn memory_bound_cores_step_down() {
        let (_, levels) = run(MixPolicy::Homogeneous("streamcluster".into()), 100);
        assert!(
            levels.iter().all(|&l| l < LevelId(7)),
            "memory-bound cores should throttle: {levels:?}"
        );
    }

    #[test]
    fn ignores_the_budget_entirely() {
        let config = SystemConfig::builder().cores(8).seed(1).build().unwrap();
        let mut sys_a = System::new(config.clone()).unwrap();
        let mut sys_b = System::new(config).unwrap();
        let mut gov_a = OndemandGovernor::new(sys_a.spec(), OndemandTuning::default()).unwrap();
        let mut gov_b = OndemandGovernor::new(sys_b.spec(), OndemandTuning::default()).unwrap();
        for _ in 0..30 {
            let oa = sys_a.observation(Watts::new(1e-3));
            let ob = sys_b.observation(Watts::new(1e9));
            let aa = gov_a.decide(&oa);
            let ab = gov_b.decide(&ob);
            assert_eq!(aa, ab);
            sys_a.step(&aa).unwrap();
            sys_b.step(&ab).unwrap();
        }
    }

    #[test]
    fn hysteresis_delays_step_down() {
        let spec = spec(1);
        let mut gov = OndemandGovernor::new(spec.clone(), OndemandTuning::default()).unwrap();
        // Build a synthetic memory-bound observation.
        let obs = |level: LevelId| Observation {
            epoch: 0,
            dt: odrl_power::Seconds::new(1e-3),
            budget: Watts::new(10.0),
            cores: vec![odrl_manycore::CoreObservation {
                level,
                ips: 1e9,
                power: Watts::new(1.0),
                temperature: odrl_power::Celsius::new(70.0),
                counters: odrl_workload::PhaseParams::new(1.2, 25.0, 0.5).unwrap(),
            }],
            total_power: Watts::new(1.0),
        };
        // down_epochs = 3: the first two memory-bound epochs hold level.
        assert_eq!(gov.decide(&obs(LevelId(7)))[0], LevelId(7));
        assert_eq!(gov.decide(&obs(LevelId(7)))[0], LevelId(7));
        assert_eq!(gov.decide(&obs(LevelId(7)))[0], LevelId(6));
    }

    #[test]
    fn rejects_bad_tuning() {
        let spec = spec(4);
        let bad = OndemandTuning {
            up_threshold: 0.7,
            down_threshold: 0.3,
            down_epochs: 3,
        };
        assert!(OndemandGovernor::new(spec.clone(), bad).is_err());
        let bad = OndemandTuning {
            down_epochs: 0,
            ..OndemandTuning::default()
        };
        assert!(OndemandGovernor::new(spec.clone(), bad).is_err());
        let bad = OndemandTuning {
            up_threshold: -0.1,
            ..OndemandTuning::default()
        };
        assert!(OndemandGovernor::new(spec, bad).is_err());
    }
}
