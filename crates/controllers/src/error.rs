//! Error types for controller construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing a controller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControllerError {
    /// A tuning parameter was non-finite or out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The controller cannot handle a system of this size (e.g. exhaustive
    /// MaxBIPS beyond its combinatorial limit).
    TooManyCores {
        /// The requested core count.
        requested: usize,
        /// The controller's limit.
        limit: usize,
    },
    /// The system spec was degenerate (zero cores or levels).
    EmptySpec,
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            Self::TooManyCores { requested, limit } => write!(
                f,
                "controller limited to {limit} cores, {requested} requested"
            ),
            Self::EmptySpec => write!(f, "system spec has no cores or levels"),
        }
    }
}

impl Error for ControllerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ControllerError::TooManyCores {
            requested: 64,
            limit: 8,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ControllerError>();
    }
}
