//! Per-core performance/power prediction for model-based baselines.

use odrl_manycore::{CoreObservation, SystemSpec};
use odrl_power::{LevelId, Watts};
use serde::{Deserialize, Serialize};

/// One predicted operating point for one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedPoint {
    /// The VF level this prediction is for.
    pub level: LevelId,
    /// Predicted instructions per second.
    pub ips: f64,
    /// Predicted core power.
    pub power: Watts,
}

/// Predicts each core's (IPS, power) at every VF level from its last-epoch
/// counters.
///
/// This is the "system model" that MaxBIPS-class algorithms assume: given
/// the counter-derived workload signature of the previous epoch, an
/// analytical model extrapolates performance and power across the whole
/// DVFS table. The prediction is *stale by one epoch* — precisely the
/// weakness the paper's model-free OD-RL avoids when workloads shift
/// between decisions.
///
/// ```
/// use odrl_controllers::Predictor;
/// use odrl_manycore::SystemConfig;
/// # use odrl_manycore::{System};
/// # use odrl_power::{LevelId, Watts};
/// let config = SystemConfig::builder().cores(2).seed(0).build()?;
/// let mut system = System::new(config)?;
/// system.step(&vec![LevelId(3); 2])?;
/// let predictor = Predictor::new(system.spec());
/// let obs = system.observation(Watts::new(10.0));
/// let points = predictor.predict(&obs.cores[0]);
/// assert_eq!(points.len(), 8);
/// assert!(points[7].power > points[0].power);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predictor {
    spec: SystemSpec,
}

impl Predictor {
    /// Creates a predictor for a system spec.
    pub fn new(spec: SystemSpec) -> Self {
        Self { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Predicts (IPS, power) for `core` at every VF level, slowest first.
    ///
    /// Power uses the activity derating the real hardware exhibits (stalled
    /// cycles clock-gate the datapath) and the core's measured temperature
    /// for leakage.
    pub fn predict(&self, core: &CoreObservation) -> Vec<PredictedPoint> {
        let mut out = Vec::new();
        self.each_point(core, |p| out.push(p));
        out
    }

    /// Predicts the full system: one row per core, one column per level.
    pub fn predict_all(&self, cores: &[CoreObservation]) -> Vec<Vec<PredictedPoint>> {
        cores.iter().map(|c| self.predict(c)).collect()
    }

    /// Predicts the full system into a reusable flat [`PredictionTable`],
    /// allocation-free once the table has reached capacity.
    pub fn predict_all_into(&self, cores: &[CoreObservation], table: &mut PredictionTable) {
        table.levels = self.spec.vf_table.len();
        table.points.clear();
        for core in cores {
            self.each_point(core, |p| table.points.push(p));
        }
    }

    /// Evaluates the model at every VF level for one core, slowest first.
    /// Single source of the prediction arithmetic so the allocating and
    /// scratch-reusing paths are bit-identical.
    fn each_point(&self, core: &CoreObservation, mut f: impl FnMut(PredictedPoint)) {
        let params = core.counters;
        for (id, level) in self.spec.vf_table.iter() {
            // One effective-CPI evaluation feeds both the IPS and the busy
            // fraction; `PerfModel::ips` is frequency / effective_cpi, so
            // sharing the divisor is bit-identical to evaluating it twice.
            let ecpi = self.spec.perf.effective_cpi(&params, level.frequency);
            let ips = level.frequency.to_hertz() / ecpi;
            let busy = params.cpi_base / ecpi;
            let activity = params.activity * (0.3 + 0.7 * busy);
            let power = self
                .spec
                .power
                .total_power(level, activity, core.temperature);
            f(PredictedPoint {
                level: id,
                ips,
                power,
            });
        }
    }
}

/// A full-system prediction in flat row-major layout: row `i` holds core
/// `i`'s predicted points across all VF levels, slowest first. Owned by a
/// controller and refilled in place each decision, so steady-state decides
/// never allocate.
#[derive(Debug, Clone, Default)]
pub struct PredictionTable {
    points: Vec<PredictedPoint>,
    levels: usize,
}

impl PredictionTable {
    /// Number of cores in the table.
    pub fn cores(&self) -> usize {
        self.points.len().checked_div(self.levels).unwrap_or(0)
    }

    /// Number of VF levels per core row.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Whether the table holds no predictions.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Core `i`'s predicted points across all levels, slowest first.
    pub fn row(&self, core: usize) -> &[PredictedPoint] {
        &self.points[core * self.levels..(core + 1) * self.levels]
    }

    /// Hints the prefetcher at core `i`'s row, mirroring
    /// `odrl_rl::QTableStorage::prefetch_row`: a solver scanning core `i`
    /// can pull core `i + 1`'s predictions toward L1 while the current
    /// row's arithmetic retires. No-op on non-x86_64 targets and for
    /// out-of-range cores.
    #[inline]
    pub fn prefetch_row(&self, core: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let start = core * self.levels;
            if self.levels == 0 || start >= self.points.len() {
                return;
            }
            // SAFETY: prefetch is a hint; the pointer derives from a live
            // in-bounds slice and is never dereferenced architecturally.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(self.points[start..].as_ptr().cast::<i8>()) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = core;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::SystemConfig;
    use odrl_power::Celsius;
    use odrl_workload::PhaseParams;

    fn obs(cpi: f64, mpki: f64, act: f64) -> CoreObservation {
        CoreObservation {
            level: LevelId(0),
            ips: 0.0,
            power: Watts::ZERO,
            temperature: Celsius::new(70.0),
            counters: PhaseParams::new(cpi, mpki, act).unwrap(),
        }
    }

    fn predictor() -> Predictor {
        let config = SystemConfig::builder().cores(4).build().unwrap();
        Predictor::new(config.spec())
    }

    #[test]
    fn predictions_cover_all_levels_in_order() {
        let p = predictor();
        let points = p.predict(&obs(1.0, 2.0, 0.9));
        assert_eq!(points.len(), 8);
        for (i, pt) in points.iter().enumerate() {
            assert_eq!(pt.level, LevelId(i));
        }
    }

    #[test]
    fn power_and_ips_monotone_in_level() {
        let p = predictor();
        let points = p.predict(&obs(1.0, 2.0, 0.9));
        for w in points.windows(2) {
            assert!(w[1].power > w[0].power);
            assert!(w[1].ips > w[0].ips);
        }
    }

    #[test]
    fn memory_bound_core_predicted_to_saturate() {
        let p = predictor();
        let compute = p.predict(&obs(0.7, 0.1, 1.0));
        let memory = p.predict(&obs(0.7, 25.0, 1.0));
        let gain = |pts: &[PredictedPoint]| pts[7].ips / pts[0].ips;
        assert!(gain(&compute) > 2.0);
        assert!(gain(&memory) < 1.5);
    }

    #[test]
    fn hotter_core_predicted_to_burn_more() {
        let p = predictor();
        let mut cool = obs(1.0, 1.0, 1.0);
        cool.temperature = Celsius::new(50.0);
        let mut hot = cool;
        hot.temperature = Celsius::new(95.0);
        let pc = p.predict(&cool);
        let ph = p.predict(&hot);
        assert!(ph[4].power > pc[4].power);
        // Performance prediction is temperature-independent.
        assert_eq!(ph[4].ips, pc[4].ips);
    }

    #[test]
    fn predict_all_shape() {
        let p = predictor();
        let cores = vec![obs(1.0, 1.0, 1.0), obs(1.2, 9.0, 0.6)];
        let all = p.predict_all(&cores);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].len(), 8);
    }
}
