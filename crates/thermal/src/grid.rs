//! The RC thermal grid: transient stepping and steady-state solving.

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::params::ThermalParams;
use odrl_power::{Celsius, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A lumped RC thermal network over a mesh [`Floorplan`].
///
/// Each tile is one thermal node with capacitance `C`, a vertical
/// conductance `Gv = 1/Rv` to ambient, and lateral conductances `Gl` to its
/// 4-connected neighbors:
///
/// `C · dT_i/dt = P_i − Gv·(T_i − T_amb) − Σ_j Gl·(T_i − T_j)`
///
/// Transient stepping uses forward Euler with automatic sub-stepping to stay
/// inside the stability bound `Δt < C / (Gv + deg·Gl)`.
///
/// ```
/// use odrl_thermal::{Floorplan, ThermalGrid, ThermalParams};
/// use odrl_power::{Watts, Seconds};
///
/// let fp = Floorplan::new(4, 4).unwrap();
/// let mut grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
/// let powers = vec![Watts::new(2.0); 16];
/// for _ in 0..200 {
///     grid.step(&powers, Seconds::new(1e-3)).unwrap();
/// }
/// // After many time constants the grid approaches steady state.
/// let ss = grid.steady_state(&powers).unwrap();
/// let diff = (grid.temperature(5).value() - ss[5].value()).abs();
/// assert!(diff < 0.5);
/// ```
#[derive(Debug, Clone, Deserialize)]
#[serde(try_from = "GridRepr")]
pub struct ThermalGrid {
    floorplan: Floorplan,
    params: ThermalParams,
    temps: Vec<Celsius>,
    /// Derived constants and the flattened stencil, rebuilt from
    /// `floorplan`/`params` on construction and deserialization (not part
    /// of the serialized or compared state).
    stencil: Stencil,
}

/// The serialized shape of [`ThermalGrid`] — exactly the pre-stencil field
/// set, so archives round-trip unchanged and the caches rebuild on load.
#[derive(Serialize, Deserialize)]
struct GridRepr {
    floorplan: Floorplan,
    params: ThermalParams,
    temps: Vec<Celsius>,
}

impl Serialize for ThermalGrid {
    fn to_value(&self) -> serde::Value {
        GridRepr {
            floorplan: self.floorplan,
            params: self.params,
            temps: self.temps.clone(),
        }
        .to_value()
    }
}

// Infallible by design: the derive layer only routes deserialization
// through `try_from`, and rebuilding the stencil cannot fail.
#[allow(clippy::infallible_try_from)]
impl TryFrom<GridRepr> for ThermalGrid {
    type Error = std::convert::Infallible;

    fn try_from(r: GridRepr) -> Result<Self, Self::Error> {
        let stencil = Stencil::build(r.floorplan, &r.params);
        Ok(Self {
            floorplan: r.floorplan,
            params: r.params,
            temps: r.temps,
            stencil,
        })
    }
}

impl PartialEq for ThermalGrid {
    fn eq(&self, other: &Self) -> bool {
        // The stencil is a pure function of floorplan + params.
        self.floorplan == other.floorplan
            && self.params == other.params
            && self.temps == other.temps
    }
}

/// Everything [`ThermalGrid::step`] can hoist out of the per-tile loop:
/// conductances, the stability bound, the interior/boundary split of the
/// mesh, and the sub-step schedule of the last-seen `dt`.
///
/// Interior tiles (all four neighbors present) are traversed row by row
/// with fixed index offsets `i−1, i+1, i−cols, i+cols` — the same
/// left/right/up/down order [`Floorplan::neighbors`] yields, so the flow
/// sum is bit-identical to the naive stepper. Boundary tiles keep explicit
/// per-tile neighbor lists in flat arrays.
#[derive(Debug, Clone)]
struct Stencil {
    /// Vertical conductance `1/R_v`.
    gv: f64,
    /// Lateral conductance.
    gl: f64,
    /// Tile heat capacity.
    c: f64,
    /// Ambient temperature, °C.
    amb: f64,
    /// Largest stable forward-Euler sub-step (half the theoretical bound).
    h_max: f64,
    cols: usize,
    rows: usize,
    /// Boundary tile indices, ascending.
    boundary: Vec<u32>,
    /// Prefix offsets into `nbrs`: boundary tile `k` owns
    /// `nbrs[nbr_start[k]..nbr_start[k + 1]]`.
    nbr_start: Vec<u32>,
    /// Flat neighbor indices of the boundary tiles, in
    /// [`Floorplan::neighbors`] order per tile.
    nbrs: Vec<u32>,
    /// `f64` mirror of the temperature field (ping-pong partner of the
    /// caller's integration buffer); sized on first use.
    field: Vec<f64>,
    /// The `dt` the cached sub-step schedule was computed for.
    sched_dt: f64,
    /// Sub-steps for `sched_dt`.
    substeps: usize,
    /// Sub-step length for `sched_dt`.
    h: f64,
}

impl Stencil {
    fn build(floorplan: Floorplan, params: &ThermalParams) -> Self {
        let cols = floorplan.cols();
        let rows = floorplan.rows();
        let gv = params.g_vertical();
        let gl = params.g_lateral;
        let g_max = gv + 4.0 * gl;
        // Half the theoretical bound for a comfortable stability margin.
        let h_max = 0.5 * params.c_tile / g_max;
        let mut boundary = Vec::new();
        let mut nbr_start = vec![0u32];
        let mut nbrs = Vec::new();
        for i in 0..floorplan.tiles() {
            let (x, y) = floorplan.position(i);
            if x > 0 && x + 1 < cols && y > 0 && y + 1 < rows {
                continue; // interior: handled by the offset loop
            }
            boundary.push(i as u32);
            nbrs.extend(floorplan.neighbors(i).map(|j| j as u32));
            nbr_start.push(nbrs.len() as u32);
        }
        Self {
            gv,
            gl,
            c: params.c_tile,
            amb: params.ambient.value(),
            h_max,
            cols,
            rows,
            boundary,
            nbr_start,
            nbrs,
            field: Vec::new(),
            sched_dt: f64::NAN,
            substeps: 0,
            h: 0.0,
        }
    }

    /// The sub-step schedule for `dt`, memoized on the last-seen value (the
    /// epoch length is fixed in steady state, so this computes once).
    fn schedule(&mut self, dt: f64) -> (usize, f64) {
        if dt != self.sched_dt {
            self.substeps = (dt / self.h_max).ceil().max(1.0) as usize;
            self.h = dt / self.substeps as f64;
            self.sched_dt = dt;
        }
        (self.substeps, self.h)
    }

    /// One forward-Euler sub-step `src → dst` over flat `f64` fields. The
    /// per-tile arithmetic is exactly the naive stepper's: vertical flow
    /// first, then each present neighbor in left/right/up/down order.
    fn substep(&self, powers: &[Watts], src: &[f64], dst: &mut [f64], h: f64) {
        let (gv, gl, c, amb) = (self.gv, self.gl, self.c, self.amb);
        let cols = self.cols;
        // Interior rows: branch-free, fixed offsets, one cache-friendly
        // sweep per row.
        for y in 1..self.rows.saturating_sub(1) {
            let row = y * cols;
            for x in 1..cols.saturating_sub(1) {
                let i = row + x;
                let t_i = src[i];
                let mut flow = powers[i].value() - gv * (t_i - amb);
                flow -= gl * (t_i - src[i - 1]);
                flow -= gl * (t_i - src[i + 1]);
                flow -= gl * (t_i - src[i - cols]);
                flow -= gl * (t_i - src[i + cols]);
                dst[i] = t_i + h * flow / c;
            }
        }
        // Boundary tiles: explicit neighbor lists.
        for (k, &bi) in self.boundary.iter().enumerate() {
            let i = bi as usize;
            let t_i = src[i];
            let mut flow = powers[i].value() - gv * (t_i - amb);
            let (lo, hi) = (self.nbr_start[k] as usize, self.nbr_start[k + 1] as usize);
            for &j in &self.nbrs[lo..hi] {
                flow -= gl * (t_i - src[j as usize]);
            }
            dst[i] = t_i + h * flow / c;
        }
    }
}

impl ThermalGrid {
    /// Creates a grid with every tile at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns an error if `params` fail validation.
    pub fn new(floorplan: Floorplan, params: ThermalParams) -> Result<Self, ThermalError> {
        params.validate()?;
        let temps = vec![params.ambient; floorplan.tiles()];
        let stencil = Stencil::build(floorplan, &params);
        Ok(Self {
            floorplan,
            params,
            temps,
            stencil,
        })
    }

    /// The floorplan this grid models.
    pub fn floorplan(&self) -> Floorplan {
        self.floorplan
    }

    /// The thermal parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Current temperature of tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn temperature(&self, i: usize) -> Celsius {
        self.temps[i]
    }

    /// All tile temperatures.
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// Hottest tile temperature.
    pub fn max_temperature(&self) -> Celsius {
        self.temps
            .iter()
            .copied()
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Resets every tile to ambient.
    pub fn reset(&mut self) {
        self.temps.fill(self.params.ambient);
    }

    /// Overwrites the temperature state (e.g. to start from a steady state).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if the slice length does
    /// not match the tile count.
    pub fn set_temperatures(&mut self, temps: &[Celsius]) -> Result<(), ThermalError> {
        self.check_len(temps.len())?;
        self.temps.copy_from_slice(temps);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), ThermalError> {
        if len != self.temps.len() {
            return Err(ThermalError::PowerLengthMismatch {
                supplied: len,
                expected: self.temps.len(),
            });
        }
        Ok(())
    }

    /// Advances the grid by `dt` under the given per-tile powers.
    ///
    /// Sub-steps internally as needed for numerical stability, so any `dt`
    /// is safe (larger steps just cost more sub-iterations).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if `powers` does not
    /// have one entry per tile.
    pub fn step(&mut self, powers: &[Watts], dt: Seconds) -> Result<(), ThermalError> {
        let mut next = Vec::new();
        self.step_with_scratch(powers, dt, &mut next)
    }

    /// Allocation-free [`ThermalGrid::step`]: the caller provides the
    /// integration buffer, which is resized on first use and reused
    /// verbatim afterwards. Results are identical to `step` for any
    /// incoming buffer contents.
    ///
    /// # Errors
    ///
    /// As [`ThermalGrid::step`].
    pub fn step_with_scratch(
        &mut self,
        powers: &[Watts],
        dt: Seconds,
        next: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        self.check_len(powers.len())?;
        let dt = dt.value();
        if dt <= 0.0 {
            return Ok(());
        }
        let (substeps, h) = self.stencil.schedule(dt);
        let n = self.temps.len();
        next.clear();
        next.resize(n, 0.0);
        // Mirror the field into flat f64 buffers, ping-pong the sub-steps
        // between them, and write back once at the end — the sub-step loop
        // itself never touches the `Celsius` wrappers. The mirror is taken
        // out of the stencil for the duration so the stencil tables can be
        // borrowed immutably alongside it.
        let mut field = std::mem::take(&mut self.stencil.field);
        field.clear();
        field.extend(self.temps.iter().map(|t| t.value()));
        {
            let stencil = &self.stencil;
            let mut src: &mut Vec<f64> = &mut field;
            let mut dst: &mut Vec<f64> = next;
            for _ in 0..substeps {
                stencil.substep(powers, src, dst, h);
                std::mem::swap(&mut src, &mut dst);
            }
            for (t, &v) in self.temps.iter_mut().zip(src.iter()) {
                *t = Celsius::new(v);
            }
        }
        self.stencil.field = field;
        Ok(())
    }

    /// Solves for the steady-state temperature field under constant powers.
    ///
    /// Uses Gauss–Seidel iteration on the conductance system; converges
    /// quickly because the matrix is strictly diagonally dominant
    /// (`Gv > 0`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if `powers` does not
    /// have one entry per tile.
    pub fn steady_state(&self, powers: &[Watts]) -> Result<Vec<Celsius>, ThermalError> {
        self.check_len(powers.len())?;
        let gv = self.params.g_vertical();
        let gl = self.params.g_lateral;
        let amb = self.params.ambient.value();
        let n = self.temps.len();
        let mut t: Vec<f64> = self.temps.iter().map(|c| c.value()).collect();
        for _ in 0..10_000 {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let mut num = powers[i].value() + gv * amb;
                let mut den = gv;
                for j in self.floorplan.neighbors(i) {
                    num += gl * t[j];
                    den += gl;
                }
                let new = num / den;
                max_delta = max_delta.max((new - t[i]).abs());
                t[i] = new;
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        Ok(t.into_iter().map(Celsius::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(cols: usize, rows: usize) -> ThermalGrid {
        ThermalGrid::new(
            Floorplan::new(cols, rows).unwrap(),
            ThermalParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn starts_at_ambient() {
        let g = grid(4, 4);
        for &t in g.temperatures() {
            assert_eq!(t, ThermalParams::default().ambient);
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut g = grid(3, 3);
        let p = vec![Watts::ZERO; 9];
        for _ in 0..100 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
        }
        for &t in g.temperatures() {
            assert!((t.value() - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_power_steady_state_matches_analytic() {
        // With uniform power, lateral flows cancel: T = amb + P*Rv.
        let g = grid(4, 4);
        let p = vec![Watts::new(2.0); 16];
        let ss = g.steady_state(&p).unwrap();
        let expect = 45.0 + 2.0 * 6.0;
        for t in ss {
            assert!((t.value() - expect).abs() < 1e-6, "{t} != {expect}");
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut g = grid(4, 4);
        let mut p = vec![Watts::new(1.0); 16];
        p[5] = Watts::new(5.0); // hot spot
        let ss = g.steady_state(&p).unwrap();
        for _ in 0..500 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
        }
        for (a, b) in g.temperatures().iter().zip(&ss) {
            assert!((a.value() - b.value()).abs() < 0.1);
        }
    }

    #[test]
    fn hot_spot_heats_neighbors() {
        let g = grid(5, 5);
        let mut p = vec![Watts::ZERO; 25];
        p[12] = Watts::new(5.0); // center
        let ss = g.steady_state(&p).unwrap();
        let center = ss[12].value();
        let neighbor = ss[11].value();
        let corner = ss[0].value();
        assert!(center > neighbor, "center {center} neighbor {neighbor}");
        assert!(neighbor > corner, "neighbor {neighbor} corner {corner}");
        assert!(corner >= 45.0 - 1e-9);
    }

    #[test]
    fn step_rejects_wrong_power_length() {
        let mut g = grid(2, 2);
        let err = g.step(&[Watts::ZERO; 3], Seconds::new(1e-3)).unwrap_err();
        assert_eq!(
            err,
            ThermalError::PowerLengthMismatch {
                supplied: 3,
                expected: 4
            }
        );
        assert!(g.steady_state(&[Watts::ZERO; 5]).is_err());
    }

    #[test]
    fn zero_or_negative_dt_is_a_noop() {
        let mut g = grid(2, 2);
        let before = g.temperatures().to_vec();
        g.step(&[Watts::new(5.0); 4], Seconds::new(0.0)).unwrap();
        g.step(&[Watts::new(5.0); 4], Seconds::new(-1.0)).unwrap();
        assert_eq!(g.temperatures(), &before[..]);
    }

    #[test]
    fn large_dt_is_stable() {
        // A dt far beyond the Euler stability bound must not blow up.
        let mut g = grid(4, 4);
        let p = vec![Watts::new(3.0); 16];
        g.step(&p, Seconds::new(1.0)).unwrap();
        for &t in g.temperatures() {
            assert!(t.value().is_finite());
            assert!((45.0..200.0).contains(&t.value()));
        }
    }

    #[test]
    fn set_temperatures_roundtrip_and_reset() {
        let mut g = grid(2, 2);
        let warm = vec![Celsius::new(80.0); 4];
        g.set_temperatures(&warm).unwrap();
        assert_eq!(g.temperature(3).value(), 80.0);
        assert_eq!(g.max_temperature().value(), 80.0);
        g.reset();
        assert_eq!(g.temperature(0).value(), 45.0);
        assert!(g.set_temperatures(&[Celsius::ZERO; 3]).is_err());
    }

    #[test]
    fn scratch_step_matches_plain_step() {
        let mut plain = grid(4, 4);
        let mut scratched = grid(4, 4);
        let mut buf = Vec::new();
        let p = vec![Watts::new(2.0); 16];
        for _ in 0..50 {
            plain.step(&p, Seconds::new(1e-3)).unwrap();
            scratched
                .step_with_scratch(&p, Seconds::new(1e-3), &mut buf)
                .unwrap();
            assert_eq!(plain.temperatures(), scratched.temperatures());
        }
        // The buffer is reused, not regrown.
        assert_eq!(buf.len(), 16);
    }

    /// The pre-stencil stepper, kept verbatim as the reference: per-tile
    /// neighbor iteration through [`Floorplan::neighbors`], recomputing the
    /// schedule every call. The blocked stencil must match it bit for bit.
    struct NaiveGrid {
        floorplan: Floorplan,
        params: ThermalParams,
        temps: Vec<f64>,
    }

    impl NaiveGrid {
        fn of(g: &ThermalGrid) -> Self {
            Self {
                floorplan: g.floorplan(),
                params: *g.params(),
                temps: g.temperatures().iter().map(|t| t.value()).collect(),
            }
        }

        fn step(&mut self, powers: &[Watts], dt: f64) {
            let h_max = 0.5 * self.params.c_tile / (self.params.g_vertical() + 4.0 * self.params.g_lateral);
            let substeps = (dt / h_max).ceil().max(1.0) as usize;
            let h = dt / substeps as f64;
            let gv = self.params.g_vertical();
            let gl = self.params.g_lateral;
            let c = self.params.c_tile;
            let amb = self.params.ambient.value();
            let n = self.temps.len();
            let mut next = vec![0.0; n];
            for _ in 0..substeps {
                for i in 0..n {
                    let t_i = self.temps[i];
                    let mut flow = powers[i].value() - gv * (t_i - amb);
                    for j in self.floorplan.neighbors(i) {
                        flow -= gl * (t_i - self.temps[j]);
                    }
                    next[i] = t_i + h * flow / c;
                }
                self.temps.copy_from_slice(&next);
            }
        }
    }

    /// Deterministic LCG so the property sweep needs no RNG dependency.
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn stencil_matches_naive_reference_bit_for_bit() {
        let mut lcg = Lcg(0x5eed_1234);
        // Shapes chosen to hit degenerate meshes (rows/cols < 3, i.e. no
        // interior tiles), tall/wide strips and squarish grids.
        let shapes = [
            (1, 1),
            (1, 7),
            (6, 1),
            (2, 2),
            (2, 5),
            (3, 3),
            (4, 3),
            (5, 8),
            (8, 8),
            (13, 4),
        ];
        for &(cols, rows) in &shapes {
            let fp = Floorplan::new(cols, rows).unwrap();
            let n = fp.tiles();
            let mut fast = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
            // Random initial field and random powers per shape.
            let init: Vec<Celsius> = (0..n)
                .map(|_| Celsius::new(40.0 + 50.0 * lcg.next_f64()))
                .collect();
            fast.set_temperatures(&init).unwrap();
            let mut naive = NaiveGrid::of(&fast);
            let mut buf = Vec::new();
            for step in 0..25 {
                let powers: Vec<Watts> =
                    (0..n).map(|_| Watts::new(6.0 * lcg.next_f64())).collect();
                // Mix dts so both the 1-substep and multi-substep schedules
                // are exercised (and the memoized schedule is invalidated).
                let dt = if step % 3 == 0 { 1e-4 } else { 2.7e-3 };
                fast.step_with_scratch(&powers, Seconds::new(dt), &mut buf)
                    .unwrap();
                naive.step(&powers, dt);
                for i in 0..n {
                    assert_eq!(
                        fast.temperature(i).value().to_bits(),
                        naive.temps[i].to_bits(),
                        "tile {i} of {cols}x{rows} diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_rebuilds_stencil() {
        let mut g = grid(4, 3);
        let p = vec![Watts::new(2.5); 12];
        g.step(&p, Seconds::new(1e-3)).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        // The serialized shape carries only the logical state.
        assert!(json.contains("floorplan") && json.contains("temps"));
        assert!(!json.contains("stencil"));
        let mut back: ThermalGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        // The rebuilt stencil steps identically to the original.
        back.step(&p, Seconds::new(1e-3)).unwrap();
        g.step(&p, Seconds::new(1e-3)).unwrap();
        for i in 0..12 {
            assert_eq!(
                back.temperature(i).value().to_bits(),
                g.temperature(i).value().to_bits()
            );
        }
    }

    #[test]
    fn monotone_heating_under_constant_power() {
        let mut g = grid(3, 3);
        let p = vec![Watts::new(2.0); 9];
        let mut last = 45.0;
        for _ in 0..20 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
            let t = g.temperature(4).value();
            assert!(t >= last - 1e-12);
            last = t;
        }
    }
}
