//! The RC thermal grid: transient stepping and steady-state solving.

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::params::ThermalParams;
use odrl_power::{Celsius, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A lumped RC thermal network over a mesh [`Floorplan`].
///
/// Each tile is one thermal node with capacitance `C`, a vertical
/// conductance `Gv = 1/Rv` to ambient, and lateral conductances `Gl` to its
/// 4-connected neighbors:
///
/// `C · dT_i/dt = P_i − Gv·(T_i − T_amb) − Σ_j Gl·(T_i − T_j)`
///
/// Transient stepping uses forward Euler with automatic sub-stepping to stay
/// inside the stability bound `Δt < C / (Gv + deg·Gl)`.
///
/// ```
/// use odrl_thermal::{Floorplan, ThermalGrid, ThermalParams};
/// use odrl_power::{Watts, Seconds};
///
/// let fp = Floorplan::new(4, 4).unwrap();
/// let mut grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
/// let powers = vec![Watts::new(2.0); 16];
/// for _ in 0..200 {
///     grid.step(&powers, Seconds::new(1e-3)).unwrap();
/// }
/// // After many time constants the grid approaches steady state.
/// let ss = grid.steady_state(&powers).unwrap();
/// let diff = (grid.temperature(5).value() - ss[5].value()).abs();
/// assert!(diff < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalGrid {
    floorplan: Floorplan,
    params: ThermalParams,
    temps: Vec<Celsius>,
}

impl ThermalGrid {
    /// Creates a grid with every tile at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns an error if `params` fail validation.
    pub fn new(floorplan: Floorplan, params: ThermalParams) -> Result<Self, ThermalError> {
        params.validate()?;
        let temps = vec![params.ambient; floorplan.tiles()];
        Ok(Self {
            floorplan,
            params,
            temps,
        })
    }

    /// The floorplan this grid models.
    pub fn floorplan(&self) -> Floorplan {
        self.floorplan
    }

    /// The thermal parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Current temperature of tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn temperature(&self, i: usize) -> Celsius {
        self.temps[i]
    }

    /// All tile temperatures.
    pub fn temperatures(&self) -> &[Celsius] {
        &self.temps
    }

    /// Hottest tile temperature.
    pub fn max_temperature(&self) -> Celsius {
        self.temps
            .iter()
            .copied()
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Resets every tile to ambient.
    pub fn reset(&mut self) {
        self.temps.fill(self.params.ambient);
    }

    /// Overwrites the temperature state (e.g. to start from a steady state).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if the slice length does
    /// not match the tile count.
    pub fn set_temperatures(&mut self, temps: &[Celsius]) -> Result<(), ThermalError> {
        self.check_len(temps.len())?;
        self.temps.copy_from_slice(temps);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), ThermalError> {
        if len != self.temps.len() {
            return Err(ThermalError::PowerLengthMismatch {
                supplied: len,
                expected: self.temps.len(),
            });
        }
        Ok(())
    }

    /// Largest stable forward-Euler step for this grid.
    fn stable_dt(&self) -> f64 {
        let g_max = self.params.g_vertical() + 4.0 * self.params.g_lateral;
        // Half the theoretical bound for a comfortable stability margin.
        0.5 * self.params.c_tile / g_max
    }

    /// Advances the grid by `dt` under the given per-tile powers.
    ///
    /// Sub-steps internally as needed for numerical stability, so any `dt`
    /// is safe (larger steps just cost more sub-iterations).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if `powers` does not
    /// have one entry per tile.
    pub fn step(&mut self, powers: &[Watts], dt: Seconds) -> Result<(), ThermalError> {
        let mut next = Vec::new();
        self.step_with_scratch(powers, dt, &mut next)
    }

    /// Allocation-free [`ThermalGrid::step`]: the caller provides the
    /// integration buffer, which is resized on first use and reused
    /// verbatim afterwards. Results are identical to `step` for any
    /// incoming buffer contents.
    ///
    /// # Errors
    ///
    /// As [`ThermalGrid::step`].
    pub fn step_with_scratch(
        &mut self,
        powers: &[Watts],
        dt: Seconds,
        next: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        self.check_len(powers.len())?;
        let dt = dt.value();
        if dt <= 0.0 {
            return Ok(());
        }
        let h_max = self.stable_dt();
        let substeps = (dt / h_max).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        let gv = self.params.g_vertical();
        let gl = self.params.g_lateral;
        let c = self.params.c_tile;
        let amb = self.params.ambient.value();
        let n = self.temps.len();
        next.clear();
        next.resize(n, 0.0);
        for _ in 0..substeps {
            for i in 0..n {
                let t_i = self.temps[i].value();
                let mut flow = powers[i].value() - gv * (t_i - amb);
                for j in self.floorplan.neighbors(i) {
                    flow -= gl * (t_i - self.temps[j].value());
                }
                next[i] = t_i + h * flow / c;
            }
            for (t, &v) in self.temps.iter_mut().zip(next.iter()) {
                *t = Celsius::new(v);
            }
        }
        Ok(())
    }

    /// Solves for the steady-state temperature field under constant powers.
    ///
    /// Uses Gauss–Seidel iteration on the conductance system; converges
    /// quickly because the matrix is strictly diagonally dominant
    /// (`Gv > 0`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if `powers` does not
    /// have one entry per tile.
    pub fn steady_state(&self, powers: &[Watts]) -> Result<Vec<Celsius>, ThermalError> {
        self.check_len(powers.len())?;
        let gv = self.params.g_vertical();
        let gl = self.params.g_lateral;
        let amb = self.params.ambient.value();
        let n = self.temps.len();
        let mut t: Vec<f64> = self.temps.iter().map(|c| c.value()).collect();
        for _ in 0..10_000 {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let mut num = powers[i].value() + gv * amb;
                let mut den = gv;
                for j in self.floorplan.neighbors(i) {
                    num += gl * t[j];
                    den += gl;
                }
                let new = num / den;
                max_delta = max_delta.max((new - t[i]).abs());
                t[i] = new;
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        Ok(t.into_iter().map(Celsius::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(cols: usize, rows: usize) -> ThermalGrid {
        ThermalGrid::new(
            Floorplan::new(cols, rows).unwrap(),
            ThermalParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn starts_at_ambient() {
        let g = grid(4, 4);
        for &t in g.temperatures() {
            assert_eq!(t, ThermalParams::default().ambient);
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut g = grid(3, 3);
        let p = vec![Watts::ZERO; 9];
        for _ in 0..100 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
        }
        for &t in g.temperatures() {
            assert!((t.value() - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_power_steady_state_matches_analytic() {
        // With uniform power, lateral flows cancel: T = amb + P*Rv.
        let g = grid(4, 4);
        let p = vec![Watts::new(2.0); 16];
        let ss = g.steady_state(&p).unwrap();
        let expect = 45.0 + 2.0 * 6.0;
        for t in ss {
            assert!((t.value() - expect).abs() < 1e-6, "{t} != {expect}");
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut g = grid(4, 4);
        let mut p = vec![Watts::new(1.0); 16];
        p[5] = Watts::new(5.0); // hot spot
        let ss = g.steady_state(&p).unwrap();
        for _ in 0..500 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
        }
        for (a, b) in g.temperatures().iter().zip(&ss) {
            assert!((a.value() - b.value()).abs() < 0.1);
        }
    }

    #[test]
    fn hot_spot_heats_neighbors() {
        let g = grid(5, 5);
        let mut p = vec![Watts::ZERO; 25];
        p[12] = Watts::new(5.0); // center
        let ss = g.steady_state(&p).unwrap();
        let center = ss[12].value();
        let neighbor = ss[11].value();
        let corner = ss[0].value();
        assert!(center > neighbor, "center {center} neighbor {neighbor}");
        assert!(neighbor > corner, "neighbor {neighbor} corner {corner}");
        assert!(corner >= 45.0 - 1e-9);
    }

    #[test]
    fn step_rejects_wrong_power_length() {
        let mut g = grid(2, 2);
        let err = g.step(&[Watts::ZERO; 3], Seconds::new(1e-3)).unwrap_err();
        assert_eq!(
            err,
            ThermalError::PowerLengthMismatch {
                supplied: 3,
                expected: 4
            }
        );
        assert!(g.steady_state(&[Watts::ZERO; 5]).is_err());
    }

    #[test]
    fn zero_or_negative_dt_is_a_noop() {
        let mut g = grid(2, 2);
        let before = g.temperatures().to_vec();
        g.step(&[Watts::new(5.0); 4], Seconds::new(0.0)).unwrap();
        g.step(&[Watts::new(5.0); 4], Seconds::new(-1.0)).unwrap();
        assert_eq!(g.temperatures(), &before[..]);
    }

    #[test]
    fn large_dt_is_stable() {
        // A dt far beyond the Euler stability bound must not blow up.
        let mut g = grid(4, 4);
        let p = vec![Watts::new(3.0); 16];
        g.step(&p, Seconds::new(1.0)).unwrap();
        for &t in g.temperatures() {
            assert!(t.value().is_finite());
            assert!((45.0..200.0).contains(&t.value()));
        }
    }

    #[test]
    fn set_temperatures_roundtrip_and_reset() {
        let mut g = grid(2, 2);
        let warm = vec![Celsius::new(80.0); 4];
        g.set_temperatures(&warm).unwrap();
        assert_eq!(g.temperature(3).value(), 80.0);
        assert_eq!(g.max_temperature().value(), 80.0);
        g.reset();
        assert_eq!(g.temperature(0).value(), 45.0);
        assert!(g.set_temperatures(&[Celsius::ZERO; 3]).is_err());
    }

    #[test]
    fn scratch_step_matches_plain_step() {
        let mut plain = grid(4, 4);
        let mut scratched = grid(4, 4);
        let mut buf = Vec::new();
        let p = vec![Watts::new(2.0); 16];
        for _ in 0..50 {
            plain.step(&p, Seconds::new(1e-3)).unwrap();
            scratched
                .step_with_scratch(&p, Seconds::new(1e-3), &mut buf)
                .unwrap();
            assert_eq!(plain.temperatures(), scratched.temperatures());
        }
        // The buffer is reused, not regrown.
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn monotone_heating_under_constant_power() {
        let mut g = grid(3, 3);
        let p = vec![Watts::new(2.0); 9];
        let mut last = 45.0;
        for _ in 0..20 {
            g.step(&p, Seconds::new(1e-3)).unwrap();
            let t = g.temperature(4).value();
            assert!(t >= last - 1e-12);
            last = t;
        }
    }
}
