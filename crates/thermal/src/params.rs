//! Compact RC thermal parameters per tile.

use crate::error::ThermalError;
use odrl_power::Celsius;
use serde::{Deserialize, Serialize};

/// Lumped RC parameters of one core tile and its package path.
///
/// * `r_vertical` — thermal resistance from the tile through the heat
///   spreader/sink to ambient, in °C/W;
/// * `c_tile` — tile heat capacity in J/°C;
/// * `g_lateral` — lateral thermal conductance between adjacent tiles, in
///   W/°C;
/// * `ambient` — ambient (heat-sink) temperature.
///
/// Defaults are HotSpot-like numbers for a ~2 mm² 22 nm core tile: ~6 °C/W
/// to ambient (a competent heat-sink path — necessary for a stable
/// leakage–temperature fixed point at full load), a thermal time constant
/// of ~12 ms at the tile granularity, and moderate lateral coupling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Vertical (tile → ambient) thermal resistance, °C/W.
    pub r_vertical: f64,
    /// Tile heat capacity, J/°C.
    pub c_tile: f64,
    /// Lateral tile-to-tile conductance, W/°C.
    pub g_lateral: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl ThermalParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if any resistance or
    /// capacitance is non-positive or non-finite, if the lateral conductance
    /// is negative, or if the ambient temperature is non-finite.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if !(self.r_vertical.is_finite() && self.r_vertical > 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "r_vertical",
                value: self.r_vertical,
            });
        }
        if !(self.c_tile.is_finite() && self.c_tile > 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "c_tile",
                value: self.c_tile,
            });
        }
        if !(self.g_lateral.is_finite() && self.g_lateral >= 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "g_lateral",
                value: self.g_lateral,
            });
        }
        if !self.ambient.value().is_finite() {
            return Err(ThermalError::InvalidParameter {
                name: "ambient",
                value: self.ambient.value(),
            });
        }
        Ok(())
    }

    /// Vertical conductance `1 / r_vertical` in W/°C.
    pub fn g_vertical(&self) -> f64 {
        1.0 / self.r_vertical
    }

    /// The per-tile thermal time constant `R·C` in seconds.
    pub fn time_constant(&self) -> f64 {
        self.r_vertical * self.c_tile
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self {
            r_vertical: 6.0,
            c_tile: 2.0e-3,
            g_lateral: 0.25,
            ambient: Celsius::new(45.0),
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field setup reads better in tests
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ThermalParams::default().validate().unwrap();
    }

    #[test]
    fn default_time_constant_is_milliseconds() {
        let tau = ThermalParams::default().time_constant();
        assert!((1e-3..1e-1).contains(&tau), "tau = {tau}");
    }

    #[test]
    fn rejects_nonpositive_r_and_c() {
        let mut p = ThermalParams::default();
        p.r_vertical = 0.0;
        assert!(p.validate().is_err());
        let mut p = ThermalParams::default();
        p.c_tile = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_negative_lateral_and_nan_ambient() {
        let mut p = ThermalParams::default();
        p.g_lateral = -0.1;
        assert!(p.validate().is_err());
        let mut p = ThermalParams::default();
        p.ambient = Celsius::new(f64::NAN);
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_lateral_coupling_is_allowed() {
        let mut p = ThermalParams::default();
        p.g_lateral = 0.0;
        assert!(p.validate().is_ok());
    }
}
