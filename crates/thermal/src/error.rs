//! Error types for the thermal crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or stepping a thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// The floorplan would contain zero tiles.
    EmptyFloorplan,
    /// The number of power inputs does not match the number of tiles.
    PowerLengthMismatch {
        /// Number of power samples supplied.
        supplied: usize,
        /// Number of tiles in the floorplan.
        expected: usize,
    },
    /// A model parameter was non-finite or out of its physical range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyFloorplan => write!(f, "floorplan has zero tiles"),
            Self::PowerLengthMismatch { supplied, expected } => write!(
                f,
                "power vector has {supplied} entries but the floorplan has {expected} tiles"
            ),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ThermalError::PowerLengthMismatch {
            supplied: 3,
            expected: 16,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("16"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ThermalError>();
    }
}
