//! Rectangular mesh floorplans: tile indexing and adjacency.

use crate::error::ThermalError;
use serde::{Deserialize, Serialize};

/// A `cols × rows` rectangular mesh of identical core tiles.
///
/// Tiles are indexed row-major: tile `i` sits at
/// `(x, y) = (i % cols, i / cols)`. This mirrors the tiled many-core
/// layouts (mesh NoC) that the paper's target systems use.
///
/// ```
/// use odrl_thermal::Floorplan;
/// let fp = Floorplan::new(8, 8).unwrap();
/// assert_eq!(fp.tiles(), 64);
/// assert_eq!(fp.position(9), (1, 1));
/// assert_eq!(fp.neighbors(0).count(), 2); // corner tile
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Floorplan {
    cols: usize,
    rows: usize,
}

impl Floorplan {
    /// Creates a `cols × rows` floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Result<Self, ThermalError> {
        if cols == 0 || rows == 0 {
            return Err(ThermalError::EmptyFloorplan);
        }
        Ok(Self { cols, rows })
    }

    /// Creates the most-square floorplan holding exactly `n` tiles.
    ///
    /// Picks `cols` as the largest divisor of `n` that is at most `√n`, so a
    /// perfect square gives a square mesh and e.g. 48 gives 6 × 8.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] if `n == 0`.
    pub fn squarish(n: usize) -> Result<Self, ThermalError> {
        if n == 0 {
            return Err(ThermalError::EmptyFloorplan);
        }
        let mut best = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                best = d;
            }
            d += 1;
        }
        Self::new(best, n / best)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// `(x, y)` grid position of tile `i` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.tiles()`.
    pub fn position(&self, i: usize) -> (usize, usize) {
        assert!(i < self.tiles(), "tile index {i} out of range");
        (i % self.cols, i / self.cols)
    }

    /// Tile index at grid position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the mesh.
    pub fn index(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.cols && y < self.rows,
            "position ({x},{y}) out of range"
        );
        y * self.cols + x
    }

    /// Iterates over the 4-connected mesh neighbors of tile `i`.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (x, y) = self.position(i);
        let cols = self.cols;
        let rows = self.rows;
        let candidates = [
            (x > 0).then(|| self.index(x - 1, y)),
            (x + 1 < cols).then(|| self.index(x + 1, y)),
            (y > 0).then(|| self.index(x, y - 1)),
            (y + 1 < rows).then(|| self.index(x, y + 1)),
        ];
        candidates.into_iter().flatten()
    }

    /// Manhattan distance between two tiles (the mesh-NoC hop count).
    pub fn manhattan(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert_eq!(Floorplan::new(0, 4), Err(ThermalError::EmptyFloorplan));
        assert_eq!(Floorplan::new(4, 0), Err(ThermalError::EmptyFloorplan));
        assert_eq!(Floorplan::squarish(0), Err(ThermalError::EmptyFloorplan));
    }

    #[test]
    fn squarish_prefers_square() {
        assert_eq!(
            Floorplan::squarish(64).unwrap(),
            Floorplan::new(8, 8).unwrap()
        );
        assert_eq!(
            Floorplan::squarish(48).unwrap(),
            Floorplan::new(6, 8).unwrap()
        );
        assert_eq!(
            Floorplan::squarish(7).unwrap(),
            Floorplan::new(1, 7).unwrap()
        );
        assert_eq!(Floorplan::squarish(1).unwrap().tiles(), 1);
    }

    #[test]
    fn position_index_roundtrip() {
        let fp = Floorplan::new(5, 3).unwrap();
        for i in 0..fp.tiles() {
            let (x, y) = fp.position(i);
            assert_eq!(fp.index(x, y), i);
        }
    }

    #[test]
    fn neighbor_counts_match_mesh_topology() {
        let fp = Floorplan::new(4, 4).unwrap();
        // Corners have 2, edges 3, interior 4.
        assert_eq!(fp.neighbors(0).count(), 2);
        assert_eq!(fp.neighbors(1).count(), 3);
        assert_eq!(fp.neighbors(5).count(), 4);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let fp = Floorplan::new(3, 4).unwrap();
        for i in 0..fp.tiles() {
            for j in fp.neighbors(i) {
                assert!(fp.neighbors(j).any(|k| k == i), "asymmetric {i}<->{j}");
            }
        }
    }

    #[test]
    fn single_tile_has_no_neighbors() {
        let fp = Floorplan::new(1, 1).unwrap();
        assert_eq!(fp.neighbors(0).count(), 0);
    }

    #[test]
    fn manhattan_distance() {
        let fp = Floorplan::new(4, 4).unwrap();
        assert_eq!(fp.manhattan(0, 0), 0);
        assert_eq!(fp.manhattan(0, 3), 3);
        assert_eq!(fp.manhattan(0, 15), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_panics_out_of_range() {
        let fp = Floorplan::new(2, 2).unwrap();
        let _ = fp.position(4);
    }
}
