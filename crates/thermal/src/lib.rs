//! HotSpot-lite RC thermal simulation for tiled many-core floorplans.
//!
//! The paper's leakage power — and therefore part of its power-capping
//! difficulty — depends on die temperature. This crate models the die as a
//! lumped RC network over a rectangular mesh [`Floorplan`]: each core tile
//! is one node with a vertical conductance to ambient and lateral
//! conductances to its mesh neighbors.
//!
//! * [`Floorplan`] — mesh geometry, tile indexing, adjacency;
//! * [`ThermalParams`] — per-tile R, C, lateral G and ambient temperature;
//! * [`ThermalGrid`] — transient forward-Euler stepping (auto-substepped
//!   for stability) and Gauss–Seidel steady-state solving.
//!
//! # Example
//!
//! ```
//! use odrl_thermal::{Floorplan, ThermalGrid, ThermalParams};
//! use odrl_power::{Watts, Seconds};
//!
//! let fp = Floorplan::squarish(64)?;
//! let mut grid = ThermalGrid::new(fp, ThermalParams::default())?;
//! let powers = vec![Watts::new(1.5); 64];
//! grid.step(&powers, Seconds::new(1e-3))?;
//! assert!(grid.max_temperature().value() > 45.0);
//! # Ok::<(), odrl_thermal::ThermalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod floorplan;
pub mod grid;
pub mod params;

pub use error::ThermalError;
pub use floorplan::Floorplan;
pub use grid::ThermalGrid;
pub use params::ThermalParams;
