//! Property-based tests for the thermal grid.

use odrl_power::{Celsius, Seconds, Watts};
use odrl_thermal::{Floorplan, ThermalGrid, ThermalParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transient stepping never produces non-finite or sub-ambient
    /// temperatures for any non-negative power map.
    #[test]
    fn transients_stay_physical(
        cols in 1usize..6,
        rows in 1usize..6,
        powers in prop::collection::vec(0.0f64..10.0, 36),
        dt_ms in 0.01f64..10.0,
        steps in 1usize..30,
    ) {
        let fp = Floorplan::new(cols, rows).unwrap();
        let mut grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
        let p: Vec<Watts> = powers[..fp.tiles()].iter().map(|&w| Watts::new(w)).collect();
        for _ in 0..steps {
            grid.step(&p, Seconds::new(dt_ms * 1e-3)).unwrap();
        }
        for &t in grid.temperatures() {
            prop_assert!(t.value().is_finite());
            prop_assert!(t.value() >= 45.0 - 1e-9, "sub-ambient {t}");
            prop_assert!(t.value() < 500.0, "runaway {t}");
        }
    }

    /// Steady state is a fixed point of the transient dynamics: starting
    /// from the steady state and stepping leaves temperatures unchanged.
    #[test]
    fn steady_state_is_a_fixed_point(
        cols in 1usize..5,
        rows in 1usize..5,
        powers in prop::collection::vec(0.0f64..8.0, 25),
    ) {
        let fp = Floorplan::new(cols, rows).unwrap();
        let mut grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
        let p: Vec<Watts> = powers[..fp.tiles()].iter().map(|&w| Watts::new(w)).collect();
        let ss = grid.steady_state(&p).unwrap();
        grid.set_temperatures(&ss).unwrap();
        grid.step(&p, Seconds::new(5e-3)).unwrap();
        for (a, b) in grid.temperatures().iter().zip(&ss) {
            prop_assert!((a.value() - b.value()).abs() < 1e-3,
                "moved off steady state: {} vs {}", a, b);
        }
    }

    /// Monotonicity: more power in one tile never cools any tile at steady
    /// state.
    #[test]
    fn steady_state_monotone_in_power(
        cols in 2usize..5,
        rows in 2usize..5,
        base in 0.0f64..4.0,
        extra in 0.1f64..5.0,
        which in 0usize..25,
    ) {
        let fp = Floorplan::new(cols, rows).unwrap();
        let grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
        let idx = which % fp.tiles();
        let p1 = vec![Watts::new(base); fp.tiles()];
        let mut p2 = p1.clone();
        p2[idx] = Watts::new(base + extra);
        let s1 = grid.steady_state(&p1).unwrap();
        let s2 = grid.steady_state(&p2).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert!(b.value() >= a.value() - 1e-9);
        }
        prop_assert!(s2[idx].value() > s1[idx].value());
    }

    /// Energy balance at steady state: total heat in equals total heat out
    /// through the vertical path (lateral flows cancel internally).
    #[test]
    fn steady_state_energy_balance(
        cols in 1usize..5,
        rows in 1usize..5,
        powers in prop::collection::vec(0.0f64..6.0, 25),
    ) {
        let fp = Floorplan::new(cols, rows).unwrap();
        let grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
        let p: Vec<Watts> = powers[..fp.tiles()].iter().map(|&w| Watts::new(w)).collect();
        let ss = grid.steady_state(&p).unwrap();
        let gv = grid.params().g_vertical();
        let amb = grid.params().ambient.value();
        let heat_in: f64 = p.iter().map(|w| w.value()).sum();
        let heat_out: f64 = ss.iter().map(|t| gv * (t.value() - amb)).sum();
        prop_assert!((heat_in - heat_out).abs() < 1e-5 * heat_in.max(1.0),
            "in {heat_in} out {heat_out}");
    }

    /// set_temperatures/temperatures round-trips.
    #[test]
    fn temperature_roundtrip(
        cols in 1usize..5,
        rows in 1usize..5,
        temps in prop::collection::vec(45.0f64..120.0, 25),
    ) {
        let fp = Floorplan::new(cols, rows).unwrap();
        let mut grid = ThermalGrid::new(fp, ThermalParams::default()).unwrap();
        let t: Vec<Celsius> = temps[..fp.tiles()].iter().map(|&v| Celsius::new(v)).collect();
        grid.set_temperatures(&t).unwrap();
        prop_assert_eq!(grid.temperatures(), &t[..]);
        let max = t.iter().cloned().fold(Celsius::new(f64::MIN), Celsius::max);
        prop_assert_eq!(grid.max_temperature(), max);
    }
}
