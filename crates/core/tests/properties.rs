//! Property-based tests for the OD-RL controller.

use odrl_controllers::PowerController;
use odrl_core::{BudgetAllocator, OdRlConfig, OdRlController, RewardShaper};
use odrl_manycore::{CoreObservation, Observation, System, SystemConfig};
use odrl_power::{Celsius, LevelId, Seconds, Watts};
use odrl_workload::PhaseParams;
use proptest::prelude::*;

fn synthetic_obs(powers: &[f64], mpkis: &[f64], ipss: &[f64], budget: f64) -> Observation {
    let cores = powers
        .iter()
        .zip(mpkis)
        .zip(ipss)
        .map(|((&p, &m), &ips)| CoreObservation {
            level: LevelId(3),
            ips,
            power: Watts::new(p),
            temperature: Celsius::new(70.0),
            counters: PhaseParams::new(1.0, m.clamp(0.0, 200.0), 0.8).unwrap(),
        })
        .collect();
    Observation {
        epoch: 0,
        dt: Seconds::new(1e-3),
        budget: Watts::new(budget),
        cores,
        total_power: Watts::new(powers.iter().sum()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budget reallocation conserves the chip budget and keeps every share
    /// non-negative for arbitrary observations.
    #[test]
    fn reallocation_conserves_budget(
        data in prop::collection::vec((0.0f64..10.0, 0.0f64..40.0, 0.0f64..5e9), 2..32),
        budget in 0.1f64..500.0,
        gain in 0.05f64..1.0,
    ) {
        let n = data.len();
        let powers: Vec<f64> = data.iter().map(|d| d.0).collect();
        let mpkis: Vec<f64> = data.iter().map(|d| d.1).collect();
        let ipss: Vec<f64> = data.iter().map(|d| d.2).collect();
        let obs = synthetic_obs(&powers, &mpkis, &ipss, budget);
        let mut alloc = BudgetAllocator::new(n, gain, 0.25);
        alloc.observe(&obs);
        let total = Watts::new(budget);
        let current = BudgetAllocator::fair_split(total, n);
        let new = alloc.reallocate(&obs, &current, total);
        let sum: f64 = new.iter().map(|w| w.value()).sum();
        prop_assert!((sum - budget).abs() < 1e-6 * budget.max(1.0), "sum {sum} != {budget}");
        for w in &new {
            prop_assert!(w.value() >= -1e-12);
        }
    }

    /// Rewards are bounded: at most 1 + epsilon above, and the penalty term
    /// scales with lambda.
    #[test]
    fn rewards_are_bounded(
        lambda in 0.0f64..10.0,
        ips in 0.0f64..5e9,
        power in 0.0f64..10.0,
        budget in 0.1f64..10.0,
    ) {
        let mut shaper = RewardShaper::new(1, 1, lambda);
        let r = shaper.reward(0, 0, ips, Watts::new(power), Watts::new(budget));
        prop_assert!(r <= 1.0 + 1e-12);
        let over = ((power - budget) / budget).max(0.0);
        prop_assert!(r >= -lambda * over - 1e-12);
        prop_assert!(r.is_finite());
    }

    /// The controller emits valid actions for any budget trajectory,
    /// including zero budgets and abrupt steps.
    #[test]
    fn controller_survives_budget_trajectories(
        cores in 1usize..10,
        seed in 0u64..20,
        budgets in prop::collection::vec(0.0f64..300.0, 1..30),
    ) {
        let config = SystemConfig::builder().cores(cores).seed(seed).build().unwrap();
        let mut sys = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig { seed, ..OdRlConfig::default() },
            &sys.spec(),
            Watts::new(budgets[0]),
        )
        .unwrap();
        for &b in &budgets {
            let obs = sys.observation(Watts::new(b));
            let actions = ctrl.decide(&obs);
            prop_assert_eq!(actions.len(), cores);
            for a in &actions {
                prop_assert!(a.index() < 8);
            }
            sys.step(&actions).unwrap();
            // Internal budgets track the chip budget.
            let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
            prop_assert!((sum - b).abs() < 1e-6 * b.max(1.0) + 1e-9, "sum {sum} vs {b}");
        }
    }

    /// Determinism: identical configs and observation streams yield
    /// identical decisions.
    #[test]
    fn controller_is_deterministic(
        cores in 1usize..8,
        seed in 0u64..20,
        epochs in 1u64..40,
    ) {
        let mk = || {
            let config = SystemConfig::builder().cores(cores).seed(seed).build().unwrap();
            let sys = System::new(config).unwrap();
            let budget = Watts::new(2.0 * cores as f64);
            let ctrl = OdRlController::new(
                OdRlConfig { seed, ..OdRlConfig::default() },
                &sys.spec(),
                budget,
            )
            .unwrap();
            (sys, ctrl, budget)
        };
        let (mut sys_a, mut ctrl_a, budget) = mk();
        let (mut sys_b, mut ctrl_b, _) = mk();
        for _ in 0..epochs {
            let oa = sys_a.observation(budget);
            let ob = sys_b.observation(budget);
            let aa = ctrl_a.decide(&oa);
            let ab = ctrl_b.decide(&ob);
            prop_assert_eq!(&aa, &ab);
            sys_a.step(&aa).unwrap();
            sys_b.step(&ab).unwrap();
        }
    }

    /// Any *valid* configuration drives a short closed loop without
    /// panicking, whatever the bin counts, schedules, algorithm or
    /// extension knobs.
    #[test]
    fn any_valid_config_runs(
        power_bins in 1usize..24,
        mem_bins in 1usize..10,
        include_level in prop::bool::ANY,
        gamma in 0.0f64..0.95,
        penalty in 0.0f64..8.0,
        realloc_period in 1u64..40,
        realloc_gain in 0.05f64..1.0,
        algorithm_idx in 0usize..3,
        thermal in prop::option::of(50.0f64..110.0),
    ) {
        use odrl_rl::{Algorithm, Schedule};
        let algorithm = [
            Algorithm::QLearning,
            Algorithm::Sarsa,
            Algorithm::DoubleQLearning,
        ][algorithm_idx];
        let config = OdRlConfig {
            power_bins,
            mem_bins,
            include_level,
            algorithm,
            gamma,
            overshoot_penalty: penalty,
            realloc_period,
            realloc_gain,
            thermal_limit: thermal,
            alpha: Schedule::inverse_time(0.9, 0.05).unwrap(),
            epsilon: Schedule::exponential(0.5, 5e-3, 0.05).unwrap(),
            ..OdRlConfig::default()
        };
        prop_assert!(config.validate().is_ok());
        let sys_config = SystemConfig::builder().cores(6).seed(3).build().unwrap();
        let budget = Watts::new(0.5 * sys_config.max_power().value());
        let mut system = System::new(sys_config).unwrap();
        let mut ctrl = OdRlController::new(config, &system.spec(), budget).unwrap();
        for _ in 0..25 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            prop_assert_eq!(actions.len(), 6);
            system.step(&actions).unwrap();
        }
        prop_assert!(system.telemetry().total_instructions() > 0.0);
    }

    /// Valid configurations validate; corrupted ones fail.
    #[test]
    fn config_validation_is_total(
        power_bins in 0usize..16,
        mem_bins in 0usize..8,
        gamma in -0.5f64..1.5,
        penalty in -2.0f64..10.0,
    ) {
        let c = OdRlConfig {
            power_bins,
            mem_bins,
            gamma,
            overshoot_penalty: penalty,
            ..OdRlConfig::default()
        };
        let expect_ok = power_bins > 0
            && mem_bins > 0
            && (0.0..1.0).contains(&gamma)
            && penalty >= 0.0;
        prop_assert_eq!(c.validate().is_ok(), expect_ok);
    }
}
