//! Coarse-grain global power-budget reallocation.

use odrl_manycore::Observation;
use odrl_power::Watts;
use serde::{Deserialize, Serialize};

/// The paper's coarse-grain layer: every `K` epochs, redistribute the chip
/// power budget across cores to maximize overall performance.
///
/// The algorithm is O(n) per invocation and fully model-free:
///
/// 1. each core's *demand* is its recent measured power plus headroom —
///    cores pressed against their share need more, idle cores need less;
/// 2. surplus (budget − total demand) is distributed proportionally to a
///    *marginal-benefit score*: an exponential moving average of the
///    observed ΔIPS/ΔW across recent level changes, falling back to the
///    core's compute-boundedness when no transition has been observed
///    (memory-bound cores gain almost nothing from extra watts);
/// 3. shortfall is absorbed proportionally above a protected minimum share
///    so no core is starved below `min_share · B/n`;
/// 4. the new allocation is blended into the old one with gain `η` to
///    avoid thrashing the fine-grain agents' state definitions.
///
/// The allocation always sums to the chip budget (up to floating-point
/// rounding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetAllocator {
    gain: f64,
    min_share: f64,
    headroom: f64,
    /// EMA of observed marginal throughput per watt, per core.
    marginals: Vec<f64>,
    /// Last observed (ips, power) per core, for marginal estimation.
    last_point: Vec<Option<(f64, f64)>>,
    /// Decaying maximum of observed power per core — budget handed out
    /// beyond this ceiling cannot be spent and is redirected.
    max_power_seen: Vec<f64>,
    ema: f64,
}

impl BudgetAllocator {
    /// Creates an allocator for `cores` cores.
    ///
    /// `gain` is the blend factor per reallocation in `(0, 1]`;
    /// `min_share` the protected fraction of the fair share.
    pub fn new(cores: usize, gain: f64, min_share: f64) -> Self {
        Self {
            gain,
            min_share,
            headroom: 1.3,
            marginals: vec![0.0; cores],
            last_point: vec![None; cores],
            max_power_seen: vec![0.0; cores],
            ema: 0.2,
        }
    }

    /// Updates the marginal-benefit estimates from the latest observation.
    ///
    /// Called every epoch (cheap: O(n)) so that by reallocation time the
    /// estimates reflect recent behaviour.
    pub fn observe(&mut self, obs: &Observation) {
        for (i, core) in obs.cores.iter().enumerate() {
            let p = core.power.value();
            let ips = core.ips;
            self.max_power_seen[i] = (self.max_power_seen[i] * 0.999).max(p);
            if let Some((last_ips, last_p)) = self.last_point[i] {
                let dp = p - last_p;
                if dp.abs() > 1e-3 {
                    let marginal = ((ips - last_ips) / dp).max(0.0);
                    if marginal.is_finite() {
                        self.marginals[i] =
                            (1.0 - self.ema) * self.marginals[i] + self.ema * marginal;
                    }
                }
            }
            self.last_point[i] = Some((ips, p));
        }
    }

    /// The current marginal-benefit score of core `i` against the given
    /// observation (falls back to compute-boundedness before any level
    /// transition has been observed).
    fn score(&self, obs: &Observation, i: usize) -> f64 {
        if self.marginals[i] > 0.0 {
            self.marginals[i]
        } else {
            // Compute-bound cores convert watts into instructions;
            // memory-bound cores do not. Small floor keeps scores positive.
            (1.0 - obs.cores[i].memory_boundedness()).max(0.05)
        }
    }

    /// Computes the new per-core budgets for chip budget `total`, blending
    /// into `current` with the configured gain.
    ///
    /// Convenience wrapper over [`BudgetAllocator::reallocate_into`] that
    /// allocates fresh working buffers and a fresh result vector per call.
    ///
    /// # Panics
    ///
    /// Panics if `current.len()` differs from the observation's core count.
    pub fn reallocate(&self, obs: &Observation, current: &[Watts], total: Watts) -> Vec<Watts> {
        let mut scratch = AllocScratch::default();
        let mut out = Vec::new();
        self.reallocate_into(obs, current, total, &mut scratch, &mut out);
        out
    }

    /// Computes the new per-core budgets for chip budget `total`, blending
    /// into `current` with the configured gain, writing the result into
    /// `out` and using `scratch` for all intermediates. Allocation-free
    /// once the buffers have reached capacity; bit-identical to
    /// [`BudgetAllocator::reallocate`].
    ///
    /// # Panics
    ///
    /// Panics if `current.len()` differs from the observation's core count.
    pub fn reallocate_into(
        &self,
        obs: &Observation,
        current: &[Watts],
        total: Watts,
        scratch: &mut AllocScratch,
        out: &mut Vec<Watts>,
    ) {
        let n = obs.cores.len();
        assert_eq!(current.len(), n, "budget vector length mismatch");
        out.clear();
        if n == 0 {
            return;
        }
        let b = total.value().max(0.0);
        let fair = b / n as f64;
        let floor = self.min_share * fair;

        // Demand: recent power with headroom, at least the floor.
        let demands = &mut scratch.demands;
        demands.clear();
        demands.extend(
            obs.cores
                .iter()
                .map(|c| (c.power.value() * self.headroom).max(floor)),
        );
        let total_demand: f64 = demands.iter().sum();

        let targets = &mut scratch.targets;
        targets.clear();
        if total_demand <= b {
            // Surplus: hand extra watts to the cores that convert them best.
            let surplus = b - total_demand;
            let scores = &mut scratch.scores;
            scores.clear();
            scores.extend((0..n).map(|i| self.score(obs, i)));
            let score_sum: f64 = scores.iter().sum();
            targets.extend(
                demands
                    .iter()
                    .zip(scores.iter())
                    .map(|(d, s)| d + surplus * s / score_sum.max(1e-12)),
            );
        } else {
            // Shortfall: shrink the above-floor portion uniformly.
            let above: f64 = demands.iter().map(|d| d - floor).sum();
            let available = (b - floor * n as f64).max(0.0);
            let scale = if above > 0.0 { available / above } else { 0.0 };
            targets.extend(demands.iter().map(|d| floor + (d - floor) * scale));
        }

        // Cap each target at the core's observed power ceiling (with slack
        // for one level step); watts a core cannot physically spend are
        // redirected to cores that can. A few passes converge.
        for _ in 0..3 {
            let caps = &mut scratch.caps;
            caps.clear();
            caps.extend((0..n).map(|i| {
                if self.max_power_seen[i] > 0.0 {
                    (self.max_power_seen[i] * 1.15).max(floor)
                } else {
                    f64::INFINITY
                }
            }));
            let mut excess = 0.0;
            let mut open_score = 0.0;
            for i in 0..n {
                if targets[i] > caps[i] {
                    excess += targets[i] - caps[i];
                    targets[i] = caps[i];
                } else {
                    open_score += self.score(obs, i);
                }
            }
            if excess <= 1e-12 || open_score <= 1e-12 {
                break;
            }
            for i in 0..n {
                if targets[i] < caps[i] {
                    targets[i] += excess * self.score(obs, i) / open_score;
                }
            }
        }

        // Blend and renormalize to exactly the chip budget.
        let new = &mut scratch.next;
        new.clear();
        new.extend(
            current
                .iter()
                .zip(targets.iter())
                .map(|(c, t)| (1.0 - self.gain) * c.value() + self.gain * t),
        );
        let sum: f64 = new.iter().sum();
        if sum > 0.0 {
            let k = b / sum;
            for v in new.iter_mut() {
                *v *= k;
            }
        } else {
            new.fill(fair);
        }
        out.extend(new.iter().copied().map(Watts::new));
    }

    /// An even split of `total` across `n` cores (the initial allocation).
    pub fn fair_split(total: Watts, n: usize) -> Vec<Watts> {
        let share = if n == 0 {
            Watts::ZERO
        } else {
            total / n as f64
        };
        vec![share; n]
    }
}

/// Reusable working buffers for [`BudgetAllocator::reallocate_into`].
///
/// The allocator itself serializes as learned state, so its per-invocation
/// intermediates live here, owned by the caller and reused across
/// reallocations.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    demands: Vec<f64>,
    scores: Vec<f64>,
    targets: Vec<f64>,
    caps: Vec<f64>,
    next: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::CoreObservation;
    use odrl_power::{Celsius, LevelId, Seconds};
    use odrl_workload::PhaseParams;

    fn obs(powers: &[f64], mpkis: &[f64], ipss: &[f64]) -> Observation {
        let cores = powers
            .iter()
            .zip(mpkis)
            .zip(ipss)
            .map(|((&p, &m), &ips)| CoreObservation {
                level: LevelId(3),
                ips,
                power: Watts::new(p),
                temperature: Celsius::new(70.0),
                counters: PhaseParams::new(1.0, m, 0.8).unwrap(),
            })
            .collect();
        Observation {
            epoch: 0,
            dt: Seconds::new(1e-3),
            budget: Watts::new(powers.iter().sum()),
            cores,
            total_power: Watts::new(powers.iter().sum()),
        }
    }

    #[test]
    fn allocation_sums_to_budget() {
        let alloc = BudgetAllocator::new(4, 1.0, 0.25);
        let o = obs(
            &[1.0, 2.0, 0.5, 3.0],
            &[1.0, 10.0, 0.1, 20.0],
            &[1e9, 5e8, 2e9, 4e8],
        );
        let total = Watts::new(10.0);
        let current = BudgetAllocator::fair_split(total, 4);
        let new = alloc.reallocate(&o, &current, total);
        let sum: f64 = new.iter().map(|w| w.value()).sum();
        assert!((sum - 10.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn compute_bound_core_gets_more_than_memory_bound() {
        let alloc = BudgetAllocator::new(2, 1.0, 0.25);
        // Same measured power, very different memory profiles.
        let o = obs(&[1.0, 1.0], &[0.1, 30.0], &[2e9, 4e8]);
        let total = Watts::new(6.0);
        let current = BudgetAllocator::fair_split(total, 2);
        let new = alloc.reallocate(&o, &current, total);
        assert!(new[0] > new[1], "compute-bound should win surplus: {new:?}");
    }

    #[test]
    fn no_core_starved_below_protected_floor() {
        let alloc = BudgetAllocator::new(4, 1.0, 0.25);
        // One core hogging power; very tight total.
        let o = obs(
            &[50.0, 0.1, 0.1, 0.1],
            &[0.1, 1.0, 1.0, 1.0],
            &[5e9, 1e8, 1e8, 1e8],
        );
        let total = Watts::new(4.0);
        let fair = 1.0;
        let floor = 0.25 * fair;
        let current = BudgetAllocator::fair_split(total, 4);
        let new = alloc.reallocate(&o, &current, total);
        for w in &new {
            assert!(
                w.value() >= floor * 0.9, // blending slack
                "core starved: {new:?}"
            );
        }
    }

    #[test]
    fn gain_blends_gradually() {
        let slow = BudgetAllocator::new(2, 0.1, 0.25);
        let fast = BudgetAllocator::new(2, 1.0, 0.25);
        let o = obs(&[3.0, 0.2], &[0.1, 25.0], &[2e9, 3e8]);
        let total = Watts::new(4.0);
        let current = BudgetAllocator::fair_split(total, 2);
        let a_slow = slow.reallocate(&o, &current, total);
        let a_fast = fast.reallocate(&o, &current, total);
        let drift = |a: &[Watts]| (a[0].value() - 2.0).abs();
        assert!(drift(&a_slow) < drift(&a_fast));
    }

    #[test]
    fn marginal_observation_shifts_scores() {
        let mut alloc = BudgetAllocator::new(2, 1.0, 0.25);
        // Two epochs: core 0 shows a big IPS gain per watt, core 1 none.
        alloc.observe(&obs(&[1.0, 1.0], &[5.0, 5.0], &[1e9, 1e9]));
        alloc.observe(&obs(&[2.0, 2.0], &[5.0, 5.0], &[3e9, 1e9]));
        let o = obs(&[1.0, 1.0], &[5.0, 5.0], &[1e9, 1e9]);
        // Keep the pot below the sum of power-ceiling caps so the
        // marginal-driven split is visible.
        let total = Watts::new(4.0);
        let current = BudgetAllocator::fair_split(total, 2);
        let new = alloc.reallocate(&o, &current, total);
        assert!(new[0] > new[1], "observed marginal should win: {new:?}");
    }

    #[test]
    fn fair_split_is_even() {
        let split = BudgetAllocator::fair_split(Watts::new(12.0), 4);
        assert_eq!(split.len(), 4);
        for w in split {
            assert!((w.value() - 3.0).abs() < 1e-12);
        }
        assert!(BudgetAllocator::fair_split(Watts::new(12.0), 0).is_empty());
    }

    #[test]
    fn reallocate_into_matches_allocating_path() {
        let mut alloc = BudgetAllocator::new(4, 0.7, 0.25);
        alloc.observe(&obs(
            &[1.0, 2.0, 0.5, 3.0],
            &[1.0, 10.0, 0.1, 20.0],
            &[1e9, 5e8, 2e9, 4e8],
        ));
        alloc.observe(&obs(
            &[1.5, 1.8, 0.9, 2.5],
            &[1.0, 10.0, 0.1, 20.0],
            &[2e9, 4e8, 3e9, 5e8],
        ));
        let total = Watts::new(9.0);
        let mut current = BudgetAllocator::fair_split(total, 4);
        let mut scratch = AllocScratch::default();
        let mut out = Vec::new();
        for round in 0..5 {
            let o = obs(
                &[1.0 + round as f64 * 0.2, 2.0, 0.5, 3.0],
                &[1.0, 10.0, 0.1, 20.0],
                &[1e9, 5e8, 2e9, 4e8],
            );
            let fresh = alloc.reallocate(&o, &current, total);
            alloc.reallocate_into(&o, &current, total, &mut scratch, &mut out);
            assert_eq!(out, fresh, "round {round}");
            current = fresh;
        }
    }

    #[test]
    fn zero_budget_yields_zero_allocation() {
        let alloc = BudgetAllocator::new(2, 1.0, 0.25);
        let o = obs(&[1.0, 1.0], &[1.0, 1.0], &[1e9, 1e9]);
        let current = BudgetAllocator::fair_split(Watts::ZERO, 2);
        let new = alloc.reallocate(&o, &current, Watts::ZERO);
        let sum: f64 = new.iter().map(|w| w.value()).sum();
        assert!(sum.abs() < 1e-9);
    }
}
