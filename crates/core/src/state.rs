//! The per-core state encoding of the fine-grain RL agents.

use crate::config::OdRlConfig;
use crate::error::OdRlError;
use odrl_manycore::CoreObservation;
use odrl_rl::{StateSpace, UniformBins};
use serde::{Deserialize, Serialize};

/// Encodes a core's sensor readings into a tabular state index.
///
/// The state the fine-grain agents condition on is deliberately
/// **action-independent** — it describes the core's *situation*, not the
/// actuator's last position — so the learned mapping state → best level is
/// stable (no self-referential limit cycles):
///
/// 1. **budget affordability** — the core's local power budget divided by
///    the highest power this core has been observed to draw (a decaying
///    maximum maintained by the controller), binned over `[0, 1.5]`. A
///    value ≥ 1 means "the budget would cover even my hungriest behaviour";
///    small values mean the budget forces throttling.
/// 2. **memory-boundedness**, binned over `[0, 1]` — derived from CPI/MPKI
///    counters; tells the agent whether frequency buys performance.
/// 3. optionally (`include_level`) the **current VF level**, for the ablation
///    that restores the action-coupled state.
///
/// All inputs are continuous sensor values; binning saturates rather than
/// failing on out-of-range readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    afford: UniformBins,
    mem: UniformBins,
    space: StateSpace,
    levels: usize,
    include_level: bool,
}

impl StateEncoder {
    /// Builds the encoder for a given config and VF-table size.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::EmptySpec`] if `levels == 0`, or forwards
    /// invalid bin counts.
    pub fn new(config: &OdRlConfig, levels: usize) -> Result<Self, OdRlError> {
        if levels == 0 {
            return Err(OdRlError::EmptySpec);
        }
        let afford = UniformBins::new(0.0, 1.5, config.power_bins)?;
        let mem = UniformBins::new(0.0, 1.0, config.mem_bins)?;
        let mut dims = vec![config.power_bins, config.mem_bins];
        if config.include_level {
            dims.push(levels);
        }
        let space = StateSpace::new(dims)?;
        Ok(Self {
            afford,
            mem,
            space,
            levels,
            include_level: config.include_level,
        })
    }

    /// Total number of states.
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Number of actions (VF levels).
    pub fn num_actions(&self) -> usize {
        self.levels
    }

    /// Number of memory-boundedness bins.
    pub fn num_mem_bins(&self) -> usize {
        self.mem.len()
    }

    /// The memory-boundedness bin of an observation (used to condition the
    /// reward normalizer on the workload phase class).
    pub fn mem_bin(&self, core: &CoreObservation) -> usize {
        self.mem.bin(core.memory_boundedness())
    }

    /// Encodes one core's observation.
    ///
    /// `affordability` is `local_budget / max observed core power`; the
    /// controller maintains the decaying maximum. Non-finite values saturate
    /// into the top bin (an unknown ceiling reads as "rich").
    pub fn encode(&self, core: &CoreObservation, affordability: f64) -> usize {
        let a = if affordability.is_finite() {
            affordability
        } else {
            f64::MAX
        };
        let ab = self.afford.bin(a);
        let mb = self.mem.bin(core.memory_boundedness());
        if self.include_level {
            let lv = core.level.index().min(self.levels - 1);
            self.space
                .index(&[ab, mb, lv])
                .expect("bins are in range by construction")
        } else {
            self.space
                .index(&[ab, mb])
                .expect("bins are in range by construction")
        }
    }

    /// [`encode`](Self::encode) that also hands back the
    /// memory-boundedness bin it computed along the way — the same value
    /// [`mem_bin`](Self::mem_bin) would return for this observation, so a
    /// decide pass can cache it for the learn pass instead of re-deriving
    /// it (two extra divisions per core).
    pub fn encode_with_mem(&self, core: &CoreObservation, affordability: f64) -> (usize, usize) {
        let a = if affordability.is_finite() {
            affordability
        } else {
            f64::MAX
        };
        let ab = self.afford.bin(a);
        let mb = self.mem.bin(core.memory_boundedness());
        let s = if self.include_level {
            let lv = core.level.index().min(self.levels - 1);
            self.space
                .index(&[ab, mb, lv])
                .expect("bins are in range by construction")
        } else {
            self.space
                .index(&[ab, mb])
                .expect("bins are in range by construction")
        };
        (s, mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_power::{Celsius, LevelId, Watts};
    use odrl_workload::PhaseParams;

    fn encoder() -> StateEncoder {
        StateEncoder::new(&OdRlConfig::default(), 8).unwrap()
    }

    fn core(mpki: f64, level: usize) -> CoreObservation {
        CoreObservation {
            level: LevelId(level),
            ips: 1e9,
            power: Watts::new(1.0),
            temperature: Celsius::new(70.0),
            counters: PhaseParams::new(1.0, mpki, 0.8).unwrap(),
        }
    }

    #[test]
    fn state_space_size_matches_config() {
        let e = encoder();
        assert_eq!(e.num_states(), 8 * 4);
        assert_eq!(e.num_actions(), 8);
        assert_eq!(e.num_mem_bins(), 4);
        let with_level = StateEncoder::new(
            &OdRlConfig {
                include_level: true,
                ..OdRlConfig::default()
            },
            8,
        )
        .unwrap();
        assert_eq!(with_level.num_states(), 8 * 4 * 8);
    }

    #[test]
    fn all_encodings_are_in_range() {
        let e = encoder();
        for &a in &[0.0, 0.4, 1.0, 1.5, 100.0, f64::INFINITY, f64::NAN] {
            for &m in &[0.0, 5.0, 50.0, 200.0] {
                for l in 0..8 {
                    let s = e.encode(&core(m, l), a);
                    assert!(s < e.num_states());
                }
            }
        }
    }

    #[test]
    fn affordability_separates_poor_and_rich() {
        let e = encoder();
        let poor = e.encode(&core(1.0, 3), 0.3);
        let rich = e.encode(&core(1.0, 3), 1.3);
        assert_ne!(poor, rich);
    }

    #[test]
    fn memory_boundedness_separates_workload_types() {
        let e = encoder();
        let compute = e.encode(&core(0.1, 3), 1.0);
        let memory = e.encode(&core(30.0, 3), 1.0);
        assert_ne!(compute, memory);
        assert_ne!(e.mem_bin(&core(0.1, 3)), e.mem_bin(&core(30.0, 3)));
    }

    #[test]
    fn state_is_action_independent_by_default() {
        let e = encoder();
        let a = e.encode(&core(1.0, 2), 0.8);
        let b = e.encode(&core(1.0, 5), 0.8);
        assert_eq!(a, b, "level must not split states by default");
        let with_level = StateEncoder::new(
            &OdRlConfig {
                include_level: true,
                ..OdRlConfig::default()
            },
            8,
        )
        .unwrap();
        let a = with_level.encode(&core(1.0, 2), 0.8);
        let b = with_level.encode(&core(1.0, 5), 0.8);
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_ceiling_reads_as_rich() {
        let e = encoder();
        let inf = e.encode(&core(1.0, 0), f64::INFINITY);
        let rich = e.encode(&core(1.0, 0), 100.0);
        assert_eq!(inf, rich);
    }
}
