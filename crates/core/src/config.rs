//! OD-RL configuration.

use crate::error::OdRlError;
use crate::watchdog::WatchdogConfig;
use odrl_manycore::Parallelism;
use odrl_market::MarketConfig;
use odrl_obs::ObsConfig;
use odrl_rl::{Algorithm, QTableLayout, Schedule};
use serde::{Deserialize, Serialize};

/// Tuning parameters of the OD-RL controller.
///
/// Defaults reproduce the paper's operating point: a compact per-core state
/// (local power-budget ratio × memory-boundedness × current level),
/// Q-learning with a floored inverse-time learning rate, floored ε-greedy
/// exploration (the controller never stops adapting), a strong local
/// overshoot penalty, and a global budget reallocation every 10 epochs.
///
/// ```
/// use odrl_core::OdRlConfig;
/// let config = OdRlConfig::default();
/// assert_eq!(config.power_bins, 8);
/// config.validate()?;
/// # Ok::<(), odrl_core::OdRlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OdRlConfig {
    /// Bins for the local power / local budget ratio (state dimension 1).
    pub power_bins: usize,
    /// Bins for counter-derived memory-boundedness (state dimension 2).
    pub mem_bins: usize,
    /// Whether the current VF level is part of the state (state dimension
    /// 3). Off by default: the ratio already reflects the actuator, and the
    /// 8× smaller table converges within a fraction of a run — on-line
    /// learning speed is worth more than the extra Markov fidelity.
    pub include_level: bool,
    /// Discount factor of the per-core agents.
    pub gamma: f64,
    /// Learning-rate schedule, indexed by per-`(s,a)` visit count.
    pub alpha: Schedule,
    /// Exploration-rate schedule, indexed by per-core decision count.
    pub epsilon: Schedule,
    /// λ — reward penalty per unit of relative local budget overshoot.
    pub overshoot_penalty: f64,
    /// Epochs between coarse-grain global budget reallocations.
    pub realloc_period: u64,
    /// Smoothing gain of each reallocation, in `(0, 1]` (1 = jump straight
    /// to the new allocation).
    pub realloc_gain: f64,
    /// Minimum per-core budget as a fraction of the fair share `B/n`.
    pub min_share: f64,
    /// Optional thermal cap: when set, per-core rewards are additionally
    /// penalised for die temperatures above this limit, so the learned
    /// policy avoids hot spots as well as budget violations (the natural
    /// OD-RL extension to joint power/thermal management).
    pub thermal_limit: Option<f64>,
    /// Weight of the thermal penalty per 10 °C of excess (only used when
    /// `thermal_limit` is set).
    pub thermal_penalty: f64,
    /// Which TD update to apply.
    pub algorithm: Algorithm,
    /// Q-table memory layout of the per-core agents. The default
    /// [`QTableLayout::Scalar`] keeps the historical `f64` tables (and
    /// bit-identical goldens); [`QTableLayout::Quantized`] stores banked
    /// `i16` fixed-point rows with a shared per-row scale, halving Q-scan
    /// cache traffic at a bounded (tested) policy-drift cost.
    #[serde(default)]
    pub layout: QTableLayout,
    /// How the per-core select/update loop executes. Per-core exploration
    /// RNG streams make every setting bit-identical; the default is
    /// [`Parallelism::Serial`].
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Controller-side sensor watchdog and graceful-degradation policy
    /// (see [`WatchdogConfig`]). Disabled by default so fault-free runs
    /// reproduce earlier releases bit-for-bit.
    #[serde(default)]
    pub watchdog: WatchdogConfig,
    /// Structured tracing and metrics (see `odrl-obs`). Off by default:
    /// a disabled controller allocates no rings and the hot path costs
    /// one branch per recording site.
    #[serde(default)]
    pub obs: ObsConfig,
    /// Predictive slack market riding the global reallocation step (see
    /// `odrl-market`): cores forecast next-epoch demand, donate predicted
    /// slack into a reclaim pool and over-budget cores apply for it every
    /// market epoch, instead of waiting out the reactive
    /// `realloc_period`. Off by default so every pre-market golden stays
    /// bit-identical; it only applies when global reallocation is on.
    #[serde(default)]
    pub market: MarketConfig,
    /// Seed for the exploration randomness.
    pub seed: u64,
}

impl Default for OdRlConfig {
    fn default() -> Self {
        Self {
            power_bins: 8,
            mem_bins: 4,
            include_level: false,
            gamma: 0.5,
            alpha: Schedule::InverseTime {
                initial: 0.9,
                floor: 0.05,
            },
            epsilon: Schedule::Exponential {
                initial: 0.5,
                rate: 5e-3,
                floor: 0.05,
            },
            overshoot_penalty: 2.0,
            realloc_period: 10,
            realloc_gain: 0.3,
            min_share: 0.25,
            thermal_limit: None,
            thermal_penalty: 2.0,
            algorithm: Algorithm::QLearning,
            layout: QTableLayout::default(),
            parallelism: Parallelism::Serial,
            watchdog: WatchdogConfig::default(),
            obs: ObsConfig::default(),
            market: MarketConfig::default(),
            seed: 0,
        }
    }
}

impl OdRlConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::InvalidConfig`] for zero bin counts, `gamma`
    /// outside `[0, 1)`, a non-positive penalty, `realloc_gain` outside
    /// `(0, 1]`, or `min_share` outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), OdRlError> {
        if self.power_bins == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "power_bins",
                reason: "must be at least 1".into(),
            });
        }
        if self.mem_bins == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "mem_bins",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.gamma.is_finite() && (0.0..1.0).contains(&self.gamma)) {
            return Err(OdRlError::InvalidConfig {
                field: "gamma",
                reason: format!("must be in [0, 1), got {}", self.gamma),
            });
        }
        if !(self.overshoot_penalty.is_finite() && self.overshoot_penalty >= 0.0) {
            return Err(OdRlError::InvalidConfig {
                field: "overshoot_penalty",
                reason: format!("must be non-negative, got {}", self.overshoot_penalty),
            });
        }
        if self.realloc_period == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "realloc_period",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.realloc_gain.is_finite() && self.realloc_gain > 0.0 && self.realloc_gain <= 1.0) {
            return Err(OdRlError::InvalidConfig {
                field: "realloc_gain",
                reason: format!("must be in (0, 1], got {}", self.realloc_gain),
            });
        }
        if !(self.min_share.is_finite() && self.min_share > 0.0 && self.min_share <= 1.0) {
            return Err(OdRlError::InvalidConfig {
                field: "min_share",
                reason: format!("must be in (0, 1], got {}", self.min_share),
            });
        }
        if let Some(limit) = self.thermal_limit {
            if !(limit.is_finite() && limit > 0.0) {
                return Err(OdRlError::InvalidConfig {
                    field: "thermal_limit",
                    reason: format!("must be finite and positive, got {limit}"),
                });
            }
        }
        if !(self.thermal_penalty.is_finite() && self.thermal_penalty >= 0.0) {
            return Err(OdRlError::InvalidConfig {
                field: "thermal_penalty",
                reason: format!("must be non-negative, got {}", self.thermal_penalty),
            });
        }
        self.watchdog.validate()?;
        self.market
            .validate()
            .map_err(|e| OdRlError::InvalidConfig {
                field: "market",
                reason: e.to_string(),
            })?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field setup reads better in tests
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        OdRlConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_bins() {
        let mut c = OdRlConfig::default();
        c.power_bins = 0;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.mem_bins = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_gamma_and_penalty() {
        let mut c = OdRlConfig::default();
        c.gamma = 1.0;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.overshoot_penalty = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn thermal_limit_validation() {
        let mut c = OdRlConfig::default();
        c.thermal_limit = Some(85.0);
        assert!(c.validate().is_ok());
        c.thermal_limit = Some(-5.0);
        assert!(c.validate().is_err());
        c.thermal_limit = Some(f64::NAN);
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.thermal_penalty = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_watchdog_parameters() {
        let mut c = OdRlConfig::default();
        c.watchdog.margin = 2.0;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.watchdog.stale_epochs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_market_parameters() {
        let mut c = OdRlConfig::default();
        c.market.enabled = true;
        assert!(c.validate().is_ok());
        c.market.ema = 0.0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("market"), "{err}");
    }

    #[test]
    fn rejects_bad_reallocation_parameters() {
        let mut c = OdRlConfig::default();
        c.realloc_period = 0;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.realloc_gain = 0.0;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.realloc_gain = 1.5;
        assert!(c.validate().is_err());
        let mut c = OdRlConfig::default();
        c.min_share = 0.0;
        assert!(c.validate().is_err());
    }
}
