//! **OD-RL** — On-line Distributed Reinforcement Learning DVFS control for
//! power-limited many-core systems.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Distributed reinforcement learning for power limited many-core system
//! performance optimization"* (Zhuo Chen and Diana Marculescu, DATE 2015):
//!
//! * at the **finer grain**, a per-core tabular Q-learning agent
//!   ([`controller::OdRlController`]) learns the optimal VF-level control
//!   policy completely model-free, from (power, counters, budget-share)
//!   observations and a throughput-minus-overshoot reward
//!   ([`reward::RewardShaper`], [`state::StateEncoder`]);
//! * at the **coarser grain**, an efficient O(n) global power-budget
//!   reallocation ([`budget::BudgetAllocator`]) shifts watts toward the
//!   cores with the highest observed marginal throughput per watt.
//!
//! The controller implements
//! [`PowerController`](odrl_controllers::PowerController), so it is
//! drop-in comparable with the MaxBIPS / Steepest Drop / PID baselines in
//! `odrl-controllers`.
//!
//! # Example
//!
//! ```
//! use odrl_core::{OdRlConfig, OdRlController};
//! use odrl_controllers::PowerController;
//! use odrl_manycore::{System, SystemConfig};
//! use odrl_power::Watts;
//!
//! let config = SystemConfig::builder().cores(32).seed(1).build()?;
//! let budget = Watts::new(0.6 * config.max_power().value());
//! let mut system = System::new(config)?;
//! let mut controller = OdRlController::new(OdRlConfig::default(), &system.spec(), budget)?;
//!
//! for _ in 0..100 {
//!     let obs = system.observation(budget);
//!     let actions = controller.decide(&obs);
//!     system.step(&actions)?;
//! }
//! // The agents have explored part of their state space by now.
//! assert!(controller.coverage() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod config;
pub mod controller;
pub mod error;
pub mod hierarchy;
pub mod obs;
pub mod reward;
pub mod state;
pub mod watchdog;

pub use budget::{AllocScratch, BudgetAllocator};
pub use config::OdRlConfig;
pub use controller::{OdRlController, PolicySnapshot};
pub use error::OdRlError;
pub use hierarchy::HierarchicalOdRl;
pub use obs::CtrlTracer;
pub use odrl_market::{MarketAllocator, MarketConfig, MarketRound, MarketScratch};
pub use odrl_rl::QTableLayout;
pub use reward::RewardShaper;
pub use state::StateEncoder;
pub use watchdog::{SensorWatchdog, WatchdogConfig};
