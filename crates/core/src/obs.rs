//! Controller-side tracing: watchdog transitions, overshoot windows,
//! budget movements, RL exploration choices and decide-latency metrics.
//!
//! [`CtrlTracer`] is the controller's half of the observability layer
//! (the simulator records fault edges, VF switches and epoch boundaries —
//! see `odrl_manycore::SysTracer`). It is constructed only when
//! [`ObsConfig::enabled`](odrl_obs::ObsConfig) is set; a disabled
//! controller holds `None` and every recording site reduces to one
//! branch.
//!
//! Serial decision events go into one ring. RL exploration choices are
//! recorded *inside* the sharded select/update loop, so each shard owns a
//! private ring (indexed by `base / chunk`, the same chunking
//! `shard_chunks` uses); a core's event always lands in the same ring in
//! core order regardless of thread count, and `odrl_obs::merge_records`
//! makes the merged stream bit-identical across shard counts.

use crate::watchdog::SensorWatchdog;
use odrl_market::MarketRound;
use odrl_obs::{
    CounterId, Event, EventCounts, EventRecord, GaugeId, HistogramId, LearnDiag, MetricsRegistry,
    MetricsSnapshot, ObsConfig, SummaryId, TraceRing, WatchdogFlag, CHIP,
};
use std::sync::Mutex;
use std::time::Instant;

/// Metric handles + channel edge state for the learning-health
/// diagnostics, present only when [`ObsConfig::diagnostics`] is on so the
/// diag-off registry layout stays byte-identical to earlier revisions.
#[derive(Debug, Clone, Copy)]
struct DiagIds {
    s_td_error: SummaryId,
    s_q_span: SummaryId,
    s_visit_spread: SummaryId,
    g_explore_rate: GaugeId,
    g_quant_doublings: GaugeId,
    g_quant_saturation: GaugeId,
    g_loss_rate: GaugeId,
    /// Channel lifetime counters at the last `record_channel` call, for
    /// per-epoch deltas.
    prev_sent: u64,
    prev_delivered: u64,
}

/// Flight recorder for the OD-RL controller's decision events.
#[derive(Debug)]
pub struct CtrlTracer {
    /// Serial decision events (watchdog, overshoot, budget movements).
    ring: TraceRing,
    /// One ring per RL shard; `Mutex` for `Sync`, but each shard locks
    /// only its own ring so there is never contention.
    shard_rings: Vec<Mutex<TraceRing>>,
    metrics: MetricsRegistry,
    h_decide_ns: HistogramId,
    h_rl_decide_ns: HistogramId,
    h_rl_learn_ns: HistogramId,
    h_realloc_w: HistogramId,
    h_overshoot_w: HistogramId,
    h_market_donated_w: HistogramId,
    h_market_granted_w: HistogramId,
    h_market_pred_err_w: HistogramId,
    g_market_pool_w: GaugeId,
    c_stale: CounterId,
    c_dead: CounterId,
    c_dark: CounterId,
    c_realloc: CounterId,
    c_redistribution: CounterId,
    c_overshoot: CounterId,
    c_market_donation: CounterId,
    c_market_grant: CounterId,
    c_explore: CounterId,
    prev_stale: Vec<bool>,
    prev_dead: Vec<bool>,
    prev_dark: bool,
    /// Whether the chip was over budget last epoch (overshoot edge state).
    over: bool,
    over_since: u64,
    snapshot: MetricsSnapshot,
    /// Learning-health metric handles; `None` when diagnostics are off.
    diag: Option<DiagIds>,
    /// One per-shard diagnostics accumulator, mirroring `shard_rings`
    /// (empty when diagnostics are off). Each shard merges its stack-local
    /// accumulator in once per epoch, so there is never contention.
    shard_diags: Vec<Mutex<LearnDiag>>,
    /// Run-cumulative diagnostics, folded from the shard accumulators at
    /// each epoch boundary.
    epoch_diag: LearnDiag,
    /// Quantized-health scan period (resolved; 0 when diagnostics off).
    diag_period: u64,
}

impl CtrlTracer {
    /// Preallocates a tracer for `cores` cores split over at most
    /// `max_shards` RL shards.
    pub fn new(config: &ObsConfig, cores: usize, max_shards: usize) -> Self {
        let cap = config.effective_ring_capacity();
        let mut metrics = MetricsRegistry::new();
        let h_decide_ns = metrics
            .histogram("decide_latency_ns", 0.0, 1e7, 64)
            .expect("static histogram layout is valid");
        let h_rl_decide_ns = metrics
            .histogram("rl_decide_ns", 0.0, 1e7, 64)
            .expect("static histogram layout is valid");
        let h_rl_learn_ns = metrics
            .histogram("rl_learn_ns", 0.0, 1e7, 64)
            .expect("static histogram layout is valid");
        let h_realloc_w = metrics
            .histogram("realloc_magnitude_w", 0.0, 100.0, 50)
            .expect("static histogram layout is valid");
        let h_overshoot_w = metrics
            .histogram("overshoot_watts", 0.0, 50.0, 50)
            .expect("static histogram layout is valid");
        let h_market_donated_w = metrics
            .histogram("market_donated_w", 0.0, 100.0, 50)
            .expect("static histogram layout is valid");
        let h_market_granted_w = metrics
            .histogram("market_granted_w", 0.0, 100.0, 50)
            .expect("static histogram layout is valid");
        let h_market_pred_err_w = metrics
            .histogram("market_prediction_err_w", 0.0, 50.0, 50)
            .expect("static histogram layout is valid");
        let g_market_pool_w = metrics.gauge("market_pool_level_w");
        let c_stale = metrics.counter("watchdog_stale_flips");
        let c_dead = metrics.counter("watchdog_dead_flips");
        let c_dark = metrics.counter("watchdog_dark_flips");
        let c_realloc = metrics.counter("reallocations");
        let c_redistribution = metrics.counter("redistributions");
        let c_overshoot = metrics.counter("overshoot_onsets");
        let c_market_donation = metrics.counter("market_donation_rounds");
        let c_market_grant = metrics.counter("market_grant_rounds");
        let c_explore = metrics.counter("explore_choices");
        // Diagnostics metrics register last and only when enabled, so the
        // diag-off layout (and everything derived from it) is unchanged.
        let diag = config.diagnostics().then(|| DiagIds {
            s_td_error: metrics.summary("rl_td_error"),
            s_q_span: metrics.summary("rl_q_span"),
            s_visit_spread: metrics.summary("rl_visit_spread"),
            g_explore_rate: metrics.gauge("rl_exploration_rate"),
            g_quant_doublings: metrics.gauge("rl_quant_doublings"),
            g_quant_saturation: metrics.gauge("rl_quant_saturation"),
            g_loss_rate: metrics.gauge("budget_loss_rate"),
            prev_sent: 0,
            prev_delivered: 0,
        });
        let mut snapshot = MetricsSnapshot::new();
        metrics.snapshot_into(0, &mut snapshot);
        Self {
            ring: TraceRing::with_capacity(cap),
            shard_rings: (0..max_shards.max(1))
                .map(|_| Mutex::new(TraceRing::with_capacity(cap)))
                .collect(),
            metrics,
            h_decide_ns,
            h_rl_decide_ns,
            h_rl_learn_ns,
            h_realloc_w,
            h_overshoot_w,
            h_market_donated_w,
            h_market_granted_w,
            h_market_pred_err_w,
            g_market_pool_w,
            c_stale,
            c_dead,
            c_dark,
            c_realloc,
            c_redistribution,
            c_overshoot,
            c_market_donation,
            c_market_grant,
            c_explore,
            prev_stale: vec![false; cores],
            prev_dead: vec![false; cores],
            prev_dark: false,
            over: false,
            over_since: 0,
            snapshot,
            diag,
            shard_diags: if config.diagnostics() {
                (0..max_shards.max(1))
                    .map(|_| Mutex::new(LearnDiag::new()))
                    .collect()
            } else {
                Vec::new()
            },
            epoch_diag: LearnDiag::new(),
            diag_period: if config.diagnostics() {
                config.effective_diag_period()
            } else {
                0
            },
        }
    }

    /// Diffs the watchdog's flags against last epoch, recording one
    /// transition event per flip. Call right after the watchdog observes.
    #[inline]
    pub fn record_watchdog(&mut self, epoch: u64, wd: &SensorWatchdog) {
        for i in 0..self.prev_stale.len() {
            let stale = wd.is_stale(i);
            if stale != self.prev_stale[i] {
                self.ring.record(
                    epoch,
                    i as u32,
                    Event::Watchdog {
                        flag: WatchdogFlag::Stale,
                        entered: stale,
                    },
                );
                self.metrics.inc(self.c_stale);
                self.prev_stale[i] = stale;
            }
            let dead = wd.is_dead(i);
            if dead != self.prev_dead[i] {
                self.ring.record(
                    epoch,
                    i as u32,
                    Event::Watchdog {
                        flag: WatchdogFlag::Dead,
                        entered: dead,
                    },
                );
                self.metrics.inc(self.c_dead);
                self.prev_dead[i] = dead;
            }
        }
        let dark = wd.chip_dark();
        if dark != self.prev_dark {
            self.ring.record(
                epoch,
                CHIP,
                Event::Watchdog {
                    flag: WatchdogFlag::Dark,
                    entered: dark,
                },
            );
            self.metrics.inc(self.c_dark);
            self.prev_dark = dark;
        }
    }

    /// Detects budget-overshoot onset/end edges from the measured chip
    /// power (zero before the first epoch, so a run never starts "over").
    #[inline]
    pub fn record_power(&mut self, epoch: u64, total_power_w: f64, budget_w: f64) {
        let over = budget_w > 0.0 && total_power_w > budget_w;
        if over {
            self.metrics.observe(self.h_overshoot_w, total_power_w - budget_w);
        }
        if over && !self.over {
            self.ring.record(
                epoch,
                CHIP,
                Event::OvershootOnset {
                    over_w: total_power_w - budget_w,
                },
            );
            self.metrics.inc(self.c_overshoot);
            self.over_since = epoch;
        } else if !over && self.over {
            self.ring.record(
                epoch,
                CHIP,
                Event::OvershootEnd {
                    epochs: epoch - self.over_since,
                },
            );
        }
        self.over = over;
    }

    /// Records a coarse-grain reallocation of `magnitude_w` total moved
    /// watts (`Σ|new_i − old_i|`).
    #[inline]
    pub fn record_realloc(&mut self, epoch: u64, magnitude_w: f64) {
        self.ring
            .record(epoch, CHIP, Event::BudgetRealloc { magnitude_w });
        self.metrics.inc(self.c_realloc);
        self.metrics.observe(self.h_realloc_w, magnitude_w);
    }

    /// Records a dead-core budget redistribution of `freed_w` watts.
    #[inline]
    pub fn record_redistribution(&mut self, epoch: u64, freed_w: f64) {
        self.ring
            .record(epoch, CHIP, Event::BudgetRedistribution { freed_w });
        self.metrics.inc(self.c_redistribution);
    }

    /// Records one slack-market round: donation/grant events (only when
    /// watts were actually offered / moved), the pool's peak level, and
    /// the predictor's aggregate absolute error.
    #[inline]
    pub fn record_market(&mut self, epoch: u64, round: &MarketRound) {
        if round.donated_w > 0.0 {
            self.ring.record(
                epoch,
                CHIP,
                Event::MarketDonation {
                    donated_w: round.donated_w,
                },
            );
            self.metrics.inc(self.c_market_donation);
        }
        if round.granted_w > 0.0 {
            self.ring.record(
                epoch,
                CHIP,
                Event::MarketGrant {
                    granted_w: round.granted_w,
                },
            );
            self.metrics.inc(self.c_market_grant);
        }
        if round.prediction_abs_err_w > 0.0 {
            self.ring.record(
                epoch,
                CHIP,
                Event::MarketPrediction {
                    abs_err_w: round.prediction_abs_err_w,
                },
            );
        }
        self.metrics.set(self.g_market_pool_w, round.pool_peak_w);
        self.metrics.observe(self.h_market_donated_w, round.donated_w);
        self.metrics.observe(self.h_market_granted_w, round.granted_w);
        self.metrics
            .observe(self.h_market_pred_err_w, round.prediction_abs_err_w);
    }

    /// Records the RL stage's decide/learn split for this epoch — the
    /// widest (wall-clock dominating) shard's nanoseconds in each half of
    /// the sharded select/update loop.
    #[inline]
    pub fn record_rl_split(&mut self, decide_ns: u64, learn_ns: u64) {
        self.metrics.observe(self.h_rl_decide_ns, decide_ns as f64);
        self.metrics.observe(self.h_rl_learn_ns, learn_ns as f64);
    }

    /// The per-shard rings the RL loop records exploration choices into
    /// (shard index = `base / chunk` — the `shard_chunks` chunking).
    pub fn shard_rings(&self) -> &[Mutex<TraceRing>] {
        &self.shard_rings
    }

    /// Whether learning-health diagnostics are being recorded.
    pub fn diag_enabled(&self) -> bool {
        self.diag.is_some()
    }

    /// The quantized-health scan period (0 when diagnostics are off).
    pub fn diag_period(&self) -> u64 {
        self.diag_period
    }

    /// The per-shard diagnostics accumulators the RL loop folds its
    /// stack-local [`LearnDiag`] into (same indexing as
    /// [`CtrlTracer::shard_rings`]); `None` when diagnostics are off.
    pub fn shard_diags(&self) -> Option<&[Mutex<LearnDiag>]> {
        self.diag.is_some().then_some(&self.shard_diags[..])
    }

    /// Records a quantized-storage health scan (summed over every core's
    /// tables). No-op when diagnostics are off.
    #[inline]
    pub fn record_quant_health(&mut self, doublings: u64, saturated: u64, lanes: u64) {
        if let Some(ids) = self.diag {
            self.metrics.set(ids.g_quant_doublings, doublings as f64);
            let frac = if lanes == 0 {
                0.0
            } else {
                saturated as f64 / lanes as f64
            };
            self.metrics.set(ids.g_quant_saturation, frac);
            self.epoch_diag.quant_doublings = doublings;
            self.epoch_diag.quant_saturated = saturated;
            self.epoch_diag.quant_lanes = lanes;
        }
    }

    /// Updates the per-epoch budget-channel loss-rate gauge from the
    /// channel's lifetime `messages_sent` / `messages_delivered` counters
    /// (the tracer differences them internally). Deliveries delayed into a
    /// later epoch can exceed that epoch's sends; the loss rate saturates
    /// at zero rather than going negative. No-op when diagnostics are off.
    #[inline]
    pub fn record_channel(&mut self, sent: u64, delivered: u64) {
        if let Some(ids) = self.diag.as_mut() {
            let d_sent = sent.saturating_sub(ids.prev_sent);
            let d_delivered = delivered.saturating_sub(ids.prev_delivered);
            ids.prev_sent = sent;
            ids.prev_delivered = delivered;
            let g = ids.g_loss_rate;
            let loss = if d_sent == 0 {
                0.0
            } else {
                d_sent.saturating_sub(d_delivered) as f64 / d_sent as f64
            };
            self.metrics.set(g, loss);
        }
    }

    /// Run-cumulative learning-health diagnostics, `None` when off.
    pub fn last_diag(&self) -> Option<&LearnDiag> {
        self.diag.is_some().then_some(&self.epoch_diag)
    }

    /// Closes the epoch: records the decide latency, folds the shard
    /// diagnostics into the registry, and snapshots the metrics. Call on
    /// every decide exit path.
    #[inline]
    pub fn end_epoch(&mut self, epoch: u64, started: Instant) {
        self.metrics
            .observe(self.h_decide_ns, started.elapsed().as_nanos() as f64);
        let explored = self.total_explorations();
        let seen = self.metrics.counter_value(self.c_explore);
        self.metrics.add(self.c_explore, explored - seen);
        if let Some(ids) = self.diag {
            let mut folded = LearnDiag::new();
            for m in &self.shard_diags {
                let mut d = m.lock().expect("shard diag poisoned");
                folded.merge(&d);
                d.reset();
            }
            // Shard accumulators carry no quant fields (those come from
            // the periodic scan via record_quant_health), so this merge
            // only adds the epoch's TD/span/decision samples.
            self.epoch_diag.merge(&folded);
            self.metrics.merge_summary(ids.s_td_error, &folded.td_error);
            self.metrics.merge_summary(ids.s_q_span, &folded.q_span);
            self.metrics
                .merge_summary(ids.s_visit_spread, &folded.visit_span);
            self.metrics
                .set(ids.g_explore_rate, self.epoch_diag.exploration_rate());
        }
        self.metrics.snapshot_into(epoch, &mut self.snapshot);
    }

    /// Total RL exploration events ever recorded (survives ring wrap).
    fn total_explorations(&self) -> u64 {
        self.shard_rings
            .iter()
            .map(|r| {
                let ring = r.lock().expect("shard ring poisoned");
                ring.len() as u64 + ring.dropped()
            })
            .sum()
    }

    /// Appends every held record — serial ring first, then each shard
    /// ring — onto `out`. Pass the result through
    /// `odrl_obs::merge_records` for the canonical order.
    pub fn extend_into(&self, out: &mut Vec<EventRecord>) {
        self.ring.extend_into(out);
        for r in &self.shard_rings {
            r.lock().expect("shard ring poisoned").extend_into(out);
        }
    }

    /// The tracer's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics snapshot taken at the last epoch boundary.
    pub fn last_snapshot(&self) -> &MetricsSnapshot {
        &self.snapshot
    }

    /// Per-kind totals of the events recorded so far (the controller-side
    /// half of a run's [`EventCounts`]).
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            watchdog_stale: self.metrics.counter_value(self.c_stale),
            watchdog_dead: self.metrics.counter_value(self.c_dead),
            watchdog_dark: self.metrics.counter_value(self.c_dark),
            reallocations: self.metrics.counter_value(self.c_realloc),
            redistributions: self.metrics.counter_value(self.c_redistribution),
            overshoot_onsets: self.metrics.counter_value(self.c_overshoot),
            market_donations: self.metrics.counter_value(self.c_market_donation),
            market_grants: self.metrics.counter_value(self.c_market_grant),
            explorations: self.total_explorations(),
            ..EventCounts::default()
        }
    }
}

impl Clone for CtrlTracer {
    fn clone(&self) -> Self {
        Self {
            ring: self.ring.clone(),
            shard_rings: self
                .shard_rings
                .iter()
                .map(|r| Mutex::new(r.lock().expect("shard ring poisoned").clone()))
                .collect(),
            metrics: self.metrics.clone(),
            h_decide_ns: self.h_decide_ns,
            h_rl_decide_ns: self.h_rl_decide_ns,
            h_rl_learn_ns: self.h_rl_learn_ns,
            h_realloc_w: self.h_realloc_w,
            h_overshoot_w: self.h_overshoot_w,
            h_market_donated_w: self.h_market_donated_w,
            h_market_granted_w: self.h_market_granted_w,
            h_market_pred_err_w: self.h_market_pred_err_w,
            g_market_pool_w: self.g_market_pool_w,
            c_stale: self.c_stale,
            c_dead: self.c_dead,
            c_dark: self.c_dark,
            c_realloc: self.c_realloc,
            c_redistribution: self.c_redistribution,
            c_overshoot: self.c_overshoot,
            c_market_donation: self.c_market_donation,
            c_market_grant: self.c_market_grant,
            c_explore: self.c_explore,
            prev_stale: self.prev_stale.clone(),
            prev_dead: self.prev_dead.clone(),
            prev_dark: self.prev_dark,
            over: self.over,
            over_since: self.over_since,
            snapshot: self.snapshot.clone(),
            diag: self.diag,
            shard_diags: self
                .shard_diags
                .iter()
                .map(|d| Mutex::new(*d.lock().expect("shard diag poisoned")))
                .collect(),
            epoch_diag: self.epoch_diag,
            diag_period: self.diag_period,
        }
    }
}
