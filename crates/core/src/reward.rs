//! The reward shaping of the fine-grain agents.

use odrl_manycore::parallel::ShardSplit;
use odrl_power::Watts;
use serde::{Deserialize, Serialize};

/// Computes per-core rewards: phase-normalized throughput minus a local
/// overshoot penalty.
///
/// `r_i = ips_i / ref_i[phase] − λ · max(0, (p_i − b_i) / b_i)`
///
/// `ref_i[phase]` is a per-core, **per-phase-class** decaying maximum of
/// observed IPS (the phase class is the memory-boundedness bin of the
/// agent's state). Conditioning the normalizer on the phase class keeps the
/// throughput term comparable *within* each state: a memory-bound phase's
/// modest IPS is judged against the best seen in memory-bound phases, not
/// against a compute-phase peak — otherwise the level-to-level reward
/// differences drown in phase-to-phase variance. The penalty term makes
/// budget violations immediately and strongly negative, which is what
/// drives the paper's near-zero overshoot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardShaper {
    lambda: f64,
    phases: usize,
    /// Per-(core, phase-class) decaying max of observed IPS, row-major.
    refs: Vec<f64>,
    /// Multiplicative decay applied to the reference each epoch it is used.
    decay: f64,
}

impl RewardShaper {
    /// Creates a shaper for `cores` cores × `phases` phase classes with
    /// penalty weight `lambda`.
    pub fn new(cores: usize, phases: usize, lambda: f64) -> Self {
        Self {
            lambda,
            phases: phases.max(1),
            refs: vec![0.0; cores * phases.max(1)],
            decay: 0.999,
        }
    }

    /// The penalty weight λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The current IPS normalizer of core `i` in phase class `phase`
    /// (0 until first observation).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `phase` is out of range.
    pub fn reference(&self, i: usize, phase: usize) -> f64 {
        assert!(phase < self.phases, "phase {phase} out of range");
        self.refs[i * self.phases + phase]
    }

    /// Computes the reward for core `i` in phase class `phase` and updates
    /// that normalizer.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `phase` is out of range.
    pub fn reward(
        &mut self,
        i: usize,
        phase: usize,
        ips: f64,
        power: Watts,
        local_budget: Watts,
    ) -> f64 {
        let phases = self.phases;
        RewardRow {
            lambda: self.lambda,
            decay: self.decay,
            refs: &mut self.refs[i * phases..(i + 1) * phases],
        }
        .reward(phase, ips, power, local_budget)
    }

    /// Splits the shaper into independent per-core views (one row each), so
    /// a sharded decide loop can reward every core concurrently. Rows are
    /// returned in core order and borrow disjoint slices of the state.
    pub fn rows_mut(&mut self) -> Vec<RewardRow<'_>> {
        let (lambda, decay) = (self.lambda, self.decay);
        self.refs
            .chunks_mut(self.phases)
            .map(|refs| RewardRow {
                lambda,
                decay,
                refs,
            })
            .collect()
    }

    /// Borrows the whole shaper as a contiguous [`RewardRows`] view — the
    /// allocation-free counterpart of [`RewardShaper::rows_mut`]. The view
    /// implements [`ShardSplit`], so a sharded decide loop can split it at
    /// core boundaries and reward disjoint core ranges concurrently.
    pub fn rows_view(&mut self) -> RewardRows<'_> {
        RewardRows {
            lambda: self.lambda,
            decay: self.decay,
            phases: self.phases,
            refs: &mut self.refs,
        }
    }
}

/// One core's mutable slice of the [`RewardShaper`]: its per-phase IPS
/// normalizers plus the (shared, immutable) penalty parameters.
#[derive(Debug)]
pub struct RewardRow<'a> {
    lambda: f64,
    decay: f64,
    refs: &'a mut [f64],
}

impl RewardRow<'_> {
    /// Computes this core's reward in phase class `phase` and updates the
    /// phase's normalizer. Same arithmetic as [`RewardShaper::reward`].
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn reward(&mut self, phase: usize, ips: f64, power: Watts, local_budget: Watts) -> f64 {
        assert!(phase < self.refs.len(), "phase {phase} out of range");
        let ips = ips.max(0.0);
        self.refs[phase] = (self.refs[phase] * self.decay).max(ips);
        let perf = if self.refs[phase] > 0.0 {
            ips / self.refs[phase]
        } else {
            0.0
        };
        let over = if local_budget.value() > 0.0 {
            ((power - local_budget).value() / local_budget.value()).max(0.0)
        } else if power.value() > 0.0 {
            1.0 // any power against a zero budget is a full violation
        } else {
            0.0
        };
        perf - self.lambda * over
    }
}

/// A contiguous range of cores' reward state, borrowed from a
/// [`RewardShaper`]. Splitting at a core boundary yields two disjoint
/// views, so sharded decide loops can reward core ranges in parallel
/// without materialising one [`RewardRow`] per core.
#[derive(Debug)]
pub struct RewardRows<'a> {
    lambda: f64,
    decay: f64,
    phases: usize,
    refs: &'a mut [f64],
}

impl RewardRows<'_> {
    /// Number of cores covered by this view.
    pub fn len(&self) -> usize {
        self.refs.len() / self.phases
    }

    /// Whether the view covers no cores.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Computes the reward of the view's `row`-th core in phase class
    /// `phase` and updates that normalizer. Same arithmetic as
    /// [`RewardShaper::reward`].
    ///
    /// # Panics
    ///
    /// Panics if `row` or `phase` is out of range.
    pub fn reward(
        &mut self,
        row: usize,
        phase: usize,
        ips: f64,
        power: Watts,
        local_budget: Watts,
    ) -> f64 {
        let phases = self.phases;
        RewardRow {
            lambda: self.lambda,
            decay: self.decay,
            refs: &mut self.refs[row * phases..(row + 1) * phases],
        }
        .reward(phase, ips, power, local_budget)
    }
}

impl ShardSplit for RewardRows<'_> {
    fn shard_len(&self) -> usize {
        self.len()
    }

    fn split_at_mut(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.refs.split_at_mut(mid * self.phases);
        (
            RewardRows {
                lambda: self.lambda,
                decay: self.decay,
                phases: self.phases,
                refs: head,
            },
            RewardRows {
                lambda: self.lambda,
                decay: self.decay,
                phases: self.phases,
                refs: tail,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_reward_is_normalized_throughput() {
        let mut s = RewardShaper::new(1, 1, 4.0);
        let r = s.reward(0, 0, 2e9, Watts::new(1.0), Watts::new(2.0));
        // First observation defines the reference: perf term = 1.
        assert!((r - 1.0).abs() < 1e-12);
        // Half the throughput at the same reference: ~0.5.
        let r = s.reward(0, 0, 1e9, Watts::new(1.0), Watts::new(2.0));
        assert!((r - 0.5).abs() < 0.01);
    }

    #[test]
    fn overshoot_is_heavily_penalised() {
        let mut s = RewardShaper::new(1, 1, 4.0);
        let under = s.reward(0, 0, 1e9, Watts::new(1.9), Watts::new(2.0));
        let over = s.reward(0, 0, 1e9, Watts::new(3.0), Watts::new(2.0));
        assert!(under > 0.0);
        assert!(over < 0.0, "50% overshoot must be net-negative: {over}");
        assert!(under - over > 1.0);
    }

    #[test]
    fn phase_classes_have_independent_references() {
        let mut s = RewardShaper::new(1, 2, 0.0);
        // Compute phase: 3e9 IPS; memory phase: 5e8 IPS.
        s.reward(0, 0, 3e9, Watts::ZERO, Watts::new(1.0));
        s.reward(0, 1, 5e8, Watts::ZERO, Watts::new(1.0));
        assert!(s.reference(0, 0) > s.reference(0, 1));
        // Memory phase at its own best still earns a full perf reward.
        let r = s.reward(0, 1, 5e8, Watts::ZERO, Watts::new(1.0));
        assert!(r > 0.99, "phase-conditioned reward should be ~1, got {r}");
    }

    #[test]
    fn reference_decays_and_recovers() {
        let mut s = RewardShaper::new(1, 1, 0.0);
        s.reward(0, 0, 4e9, Watts::ZERO, Watts::new(1.0));
        let high_ref = s.reference(0, 0);
        for _ in 0..2000 {
            s.reward(0, 0, 1e9, Watts::ZERO, Watts::new(1.0));
        }
        assert!(s.reference(0, 0) < high_ref);
        let r = s.reward(0, 0, s.reference(0, 0), Watts::ZERO, Watts::new(1.0));
        assert!(r > 0.99);
    }

    #[test]
    fn zero_budget_with_power_is_a_violation() {
        let mut s = RewardShaper::new(1, 1, 4.0);
        let r = s.reward(0, 0, 1e9, Watts::new(0.5), Watts::ZERO);
        assert!(r < 0.0);
        let r0 = s.reward(0, 0, 0.0, Watts::ZERO, Watts::ZERO);
        assert!(r0 <= 0.0);
    }

    #[test]
    fn zero_lambda_ignores_overshoot() {
        let mut s = RewardShaper::new(1, 1, 0.0);
        let r = s.reward(0, 0, 1e9, Watts::new(100.0), Watts::new(1.0));
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_ips_clamps_to_zero() {
        let mut s = RewardShaper::new(1, 1, 1.0);
        let r = s.reward(0, 0, -5.0, Watts::ZERO, Watts::new(1.0));
        assert_eq!(r, 0.0);
    }

    #[test]
    fn cores_have_independent_references() {
        let mut s = RewardShaper::new(2, 1, 1.0);
        s.reward(0, 0, 4e9, Watts::ZERO, Watts::new(1.0));
        s.reward(1, 0, 1e9, Watts::ZERO, Watts::new(1.0));
        assert!(s.reference(0, 0) > s.reference(1, 0));
    }

    #[test]
    #[should_panic(expected = "phase")]
    fn out_of_range_phase_panics() {
        let mut s = RewardShaper::new(1, 2, 1.0);
        s.reward(0, 5, 1e9, Watts::ZERO, Watts::new(1.0));
    }
}
