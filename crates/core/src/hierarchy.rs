//! Hierarchical OD-RL: cluster-local controllers under a top-level budget
//! reallocator.
//!
//! OD-RL's per-epoch cost is already O(n), but a single flat controller
//! still centralizes the coarse-grain reallocation and the chip-power
//! feedback. On a 1000-core die the natural organization — and the obvious
//! implementation target for per-cluster firmware — is hierarchical: each
//! cluster runs its own [`OdRlController`] against a *cluster budget*, and
//! a top-level [`BudgetAllocator`] redistributes the chip budget across
//! clusters by the same demand/marginal-benefit rule used inside them,
//! treating each cluster as one pseudo-core.
//!
//! Decision work parallelizes trivially across clusters (each cluster's
//! decide is independent given its budget), and no global state beyond the
//! per-cluster budgets exists.

use crate::budget::BudgetAllocator;
use crate::config::OdRlConfig;
use crate::controller::OdRlController;
use crate::error::OdRlError;
use odrl_controllers::PowerController;
use odrl_manycore::{CoreObservation, Observation, SystemSpec};
use odrl_power::{Celsius, LevelId, Watts};
use odrl_workload::PhaseParams;

/// A two-level OD-RL controller: per-cluster fine+coarse OD-RL, plus a
/// chip-level reallocation of cluster budgets.
///
/// ```
/// use odrl_core::{HierarchicalOdRl, OdRlConfig};
/// use odrl_controllers::PowerController;
/// use odrl_manycore::SystemConfig;
/// use odrl_power::Watts;
///
/// let config = SystemConfig::builder().cores(64).build()?;
/// let budget = Watts::new(0.6 * config.max_power().value());
/// let ctrl = HierarchicalOdRl::new(OdRlConfig::default(), &config.spec(), budget, 16)?;
/// assert_eq!(ctrl.name(), "od-rl-hier");
/// assert_eq!(ctrl.num_clusters(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalOdRl {
    clusters: Vec<OdRlController>,
    /// `bounds[k]..bounds[k+1]` are cluster `k`'s cores.
    bounds: Vec<usize>,
    top: BudgetAllocator,
    cluster_budgets: Vec<Watts>,
    total_budget: Watts,
    realloc_period: u64,
    epochs: u64,
}

impl HierarchicalOdRl {
    /// Builds a hierarchy of contiguous clusters of (at most)
    /// `cluster_size` cores.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::EmptySpec`] for a degenerate spec or
    /// [`OdRlError::InvalidConfig`] for a zero cluster size or invalid
    /// OD-RL config.
    pub fn new(
        config: OdRlConfig,
        spec: &SystemSpec,
        initial_budget: Watts,
        cluster_size: usize,
    ) -> Result<Self, OdRlError> {
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(OdRlError::EmptySpec);
        }
        if cluster_size == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "cluster_size",
                reason: "must be at least 1".into(),
            });
        }
        let mut bounds = vec![0];
        while *bounds.last().expect("non-empty") < spec.cores {
            bounds.push((bounds.last().expect("non-empty") + cluster_size).min(spec.cores));
        }
        let n_clusters = bounds.len() - 1;
        let mut clusters = Vec::with_capacity(n_clusters);
        let mut cluster_budgets = Vec::with_capacity(n_clusters);
        for k in 0..n_clusters {
            let cores = bounds[k + 1] - bounds[k];
            let share = initial_budget * (cores as f64 / spec.cores as f64);
            let cluster_spec = SystemSpec {
                cores,
                ..spec.clone()
            };
            let cluster_config = OdRlConfig {
                // Decorrelate exploration across clusters.
                seed: config.seed.wrapping_add(k as u64).wrapping_mul(0x9E37_79B9),
                ..config.clone()
            };
            clusters.push(OdRlController::new(cluster_config, &cluster_spec, share)?);
            cluster_budgets.push(share);
        }
        Ok(Self {
            clusters,
            bounds,
            top: BudgetAllocator::new(n_clusters, config.realloc_gain, config.min_share),
            cluster_budgets,
            total_budget: initial_budget,
            realloc_period: config.realloc_period * 4, // coarser than in-cluster
            epochs: 0,
        })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Current per-cluster budgets (sum = chip budget).
    pub fn cluster_budgets(&self) -> &[Watts] {
        &self.cluster_budgets
    }

    /// Collapses a cluster's cores into one pseudo-core for the top-level
    /// allocator.
    fn cluster_observation(&self, obs: &Observation) -> Observation {
        let cores = (0..self.num_clusters())
            .map(|k| {
                let lo = self.bounds[k];
                let hi = self.bounds[k + 1];
                let n = (hi - lo) as f64;
                let sum = |f: &dyn Fn(&CoreObservation) -> f64| {
                    obs.cores[lo..hi].iter().map(f).sum::<f64>()
                };
                CoreObservation {
                    level: obs.cores[lo].level,
                    ips: sum(&|c| c.ips),
                    power: Watts::new(sum(&|c| c.power.value())),
                    temperature: Celsius::new(
                        obs.cores[lo..hi]
                            .iter()
                            .map(|c| c.temperature.value())
                            .fold(f64::NEG_INFINITY, f64::max),
                    ),
                    counters: PhaseParams {
                        cpi_base: sum(&|c| c.counters.cpi_base) / n,
                        mpki: sum(&|c| c.counters.mpki) / n,
                        activity: sum(&|c| c.counters.activity) / n,
                    },
                }
            })
            .collect();
        Observation {
            epoch: obs.epoch,
            dt: obs.dt,
            budget: obs.budget,
            cores,
            total_power: obs.total_power,
        }
    }
}

impl PowerController for HierarchicalOdRl {
    fn name(&self) -> &str {
        "od-rl-hier"
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        debug_assert_eq!(out.len(), obs.cores.len());
        let n = obs.cores.len().min(*self.bounds.last().expect("non-empty"));
        if n == 0 {
            return;
        }
        // Cores beyond the hierarchy (defensive) get the floor level.
        out.fill(LevelId(0));
        // Track chip-budget changes proportionally.
        if (obs.budget - self.total_budget).abs().value() > 1e-12 {
            let old = self.total_budget.value();
            if old > 0.0 {
                let k = obs.budget.value() / old;
                for b in &mut self.cluster_budgets {
                    *b = *b * k;
                }
            }
            self.total_budget = obs.budget;
        }

        // Top level: reallocate cluster budgets every few in-cluster
        // reallocation periods.
        let cluster_obs = self.cluster_observation(obs);
        self.top.observe(&cluster_obs);
        if self.epochs > 0 && self.epochs.is_multiple_of(self.realloc_period) {
            self.cluster_budgets =
                self.top
                    .reallocate(&cluster_obs, &self.cluster_budgets, obs.budget);
        }
        self.epochs += 1;

        // Per cluster: slice the observation and delegate.
        for k in 0..self.num_clusters() {
            let lo = self.bounds[k];
            let hi = self.bounds[k + 1].min(n);
            if lo >= hi {
                break;
            }
            let sub = Observation {
                epoch: obs.epoch,
                dt: obs.dt,
                budget: self.cluster_budgets[k],
                cores: obs.cores[lo..hi].to_vec(),
                total_power: Watts::new(obs.cores[lo..hi].iter().map(|c| c.power.value()).sum()),
            };
            self.clusters[k].decide_into(&sub, &mut out[lo..hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};

    fn run(cluster_size: usize, epochs: u64) -> (odrl_metrics::RunSummary, HierarchicalOdRl) {
        let config = SystemConfig::builder().cores(32).seed(51).build().unwrap();
        let budget = Watts::new(0.55 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl =
            HierarchicalOdRl::new(OdRlConfig::default(), &system.spec(), budget, cluster_size)
                .unwrap();
        let mut rec = odrl_metrics::RunRecorder::new(ctrl.name());
        for _ in 0..epochs {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            let report = system.step(&actions).unwrap();
            rec.record(
                report.total_power,
                budget,
                report.total_instructions(),
                report.dt,
            );
        }
        (rec.finish(), ctrl)
    }

    #[test]
    fn cluster_partitioning() {
        let spec = SystemConfig::builder().cores(10).build().unwrap().spec();
        let ctrl =
            HierarchicalOdRl::new(OdRlConfig::default(), &spec, Watts::new(20.0), 4).unwrap();
        assert_eq!(ctrl.num_clusters(), 3); // 4 + 4 + 2
        let sum: f64 = ctrl.cluster_budgets().iter().map(|w| w.value()).sum();
        assert!((sum - 20.0).abs() < 1e-9);
        // Shares proportional to cluster sizes.
        assert!((ctrl.cluster_budgets()[0].value() - 8.0).abs() < 1e-9);
        assert!((ctrl.cluster_budgets()[2].value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_construction() {
        let spec = SystemConfig::builder().cores(8).build().unwrap().spec();
        assert!(HierarchicalOdRl::new(OdRlConfig::default(), &spec, Watts::new(10.0), 0).is_err());
        let mut empty = spec;
        empty.cores = 0;
        assert!(HierarchicalOdRl::new(OdRlConfig::default(), &empty, Watts::new(10.0), 4).is_err());
    }

    #[test]
    fn respects_the_chip_budget() {
        let (s, ctrl) = run(8, 1_000);
        assert!(s.total_instructions > 0.0);
        assert!(s.mean_power.value() <= 0.55 * 302.4 / 2.0 * 1.12); // 32-core chip
        let sum: f64 = ctrl.cluster_budgets().iter().map(|w| w.value()).sum();
        // Budgets still sum to the chip budget after reallocations.
        let expect = 0.55
            * SystemConfig::builder()
                .cores(32)
                .build()
                .unwrap()
                .max_power()
                .value();
        assert!(
            (sum - expect).abs() < 1e-6 * expect,
            "sum {sum} vs {expect}"
        );
    }

    #[test]
    fn comparable_to_flat_odrl() {
        let (hier, _) = run(8, 1_200);
        // Flat controller on the identical scenario.
        let config = SystemConfig::builder().cores(32).seed(51).build().unwrap();
        let budget = Watts::new(0.55 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut flat = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
        let mut rec = odrl_metrics::RunRecorder::new("flat");
        for _ in 0..1_200 {
            let obs = system.observation(budget);
            let actions = flat.decide(&obs);
            let report = system.step(&actions).unwrap();
            rec.record(
                report.total_power,
                budget,
                report.total_instructions(),
                report.dt,
            );
        }
        let flat = rec.finish();
        let ratio = hier.throughput_ips() / flat.throughput_ips();
        assert!(
            (0.9..1.1).contains(&ratio),
            "hierarchical/flat throughput ratio {ratio}"
        );
    }

    #[test]
    fn tracks_budget_steps() {
        let config = SystemConfig::builder().cores(16).seed(53).build().unwrap();
        let max = config.max_power();
        let mut system = System::new(config).unwrap();
        let mut ctrl =
            HierarchicalOdRl::new(OdRlConfig::default(), &system.spec(), max * 0.8, 4).unwrap();
        for _ in 0..50 {
            let obs = system.observation(max * 0.8);
            let a = ctrl.decide(&obs);
            system.step(&a).unwrap();
        }
        let obs = system.observation(max * 0.4);
        ctrl.decide(&obs);
        let sum: f64 = ctrl.cluster_budgets().iter().map(|w| w.value()).sum();
        let expect = (max * 0.4).value();
        assert!((sum - expect).abs() < 1e-6 * expect);
    }
}
