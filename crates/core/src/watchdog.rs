//! Graceful degradation: sensor watchdogs for the OD-RL control loop.
//!
//! The paper's control loop trusts its telemetry. On real silicon power
//! sensors hang, cores get hot-unplugged, and the chip-level meter can go
//! dark — and a learning controller fed garbage readings learns garbage
//! policies (a stuck-at-zero sensor reads as infinite headroom and the
//! agent ramps straight through the budget). [`SensorWatchdog`] closes
//! that gap from the controller side, using only the observations real
//! hardware exposes:
//!
//! * **stale sensors** — a per-core reading that repeats bit-exactly, or
//!   reads zero while the core retires instructions, for
//!   [`WatchdogConfig::stale_epochs`] consecutive epochs is declared
//!   stale. The controller substitutes the last *good* reading and widens
//!   the core's safety margin (shrinks its effective budget by
//!   [`WatchdogConfig::margin`]) until the sensor heals.
//! * **dead cores** — zero power *and* zero IPS for
//!   [`WatchdogConfig::dead_epochs`] consecutive epochs means the core is
//!   gone (hot-unplug or power gating). Its budget share is redistributed
//!   to the survivors and its agent's tainted transitions are skipped.
//! * **dark chip telemetry** — a chip-level reading of exactly zero for
//!   [`WatchdogConfig::dark_epochs`] consecutive epochs while cores are
//!   running means the global power meter is gone. Flying blind over the
//!   budget is the one failure that can damage the part, so the
//!   controller drops every core to the lowest VF level until the meter
//!   returns.
//!
//! All detection thresholds are counted in consecutive epochs, so a
//! single noisy reading never trips a watchdog. The watchdog allocates
//! only at construction; per-epoch observation is allocation-free.

use odrl_manycore::Observation;
use odrl_power::Watts;
use serde::{Deserialize, Serialize};

use crate::error::OdRlError;

/// Tuning of the controller-side sensor watchdog.
///
/// Disabled by default: the watchdog changes the decision stream the
/// moment a heuristic fires, so it is opt-in to keep fault-free runs
/// reproducible against earlier releases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch; `false` (the default) disables all degradation
    /// logic.
    #[serde(default)]
    pub enabled: bool,
    /// Consecutive suspicious epochs (bit-exact repeat, or zero power
    /// with nonzero IPS) before a core's power sensor is declared stale.
    pub stale_epochs: u64,
    /// Consecutive epochs of zero power *and* zero IPS before a core is
    /// declared dead.
    pub dead_epochs: u64,
    /// Effective-budget multiplier applied to a core while its sensor is
    /// stale, in `(0, 1]`. Smaller is more conservative.
    pub margin: f64,
    /// Consecutive epochs of a zero chip-level reading (with cores still
    /// retiring instructions) before chip telemetry is declared dark.
    pub dark_epochs: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            stale_epochs: 5,
            dead_epochs: 3,
            margin: 0.7,
            dark_epochs: 3,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog with all default thresholds, switched on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::InvalidConfig`] for a zero epoch threshold or
    /// a margin outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), OdRlError> {
        if self.stale_epochs == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "watchdog.stale_epochs",
                reason: "must be at least 1".into(),
            });
        }
        if self.dead_epochs == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "watchdog.dead_epochs",
                reason: "must be at least 1".into(),
            });
        }
        if self.dark_epochs == 0 {
            return Err(OdRlError::InvalidConfig {
                field: "watchdog.dark_epochs",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.margin.is_finite() && self.margin > 0.0 && self.margin <= 1.0) {
            return Err(OdRlError::InvalidConfig {
                field: "watchdog.margin",
                reason: format!("must be in (0, 1], got {}", self.margin),
            });
        }
        Ok(())
    }
}

/// Per-core telemetry-health tracker (see the module docs for the
/// detection rules). Feed it every [`Observation`] in decision order;
/// query health flags afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorWatchdog {
    config: WatchdogConfig,
    /// The previous epoch's raw power reading per core.
    last_power: Vec<f64>,
    has_last: Vec<bool>,
    /// Consecutive suspicious-reading epochs per core.
    suspect: Vec<u64>,
    stale: Vec<bool>,
    /// The last reading that looked healthy, substituted while stale.
    held: Vec<Watts>,
    /// Consecutive zero-power/zero-IPS epochs per core.
    gone: Vec<u64>,
    dead: Vec<bool>,
    any_dead: bool,
    /// Consecutive zero chip-reading epochs.
    chip_zero: u64,
    dark: bool,
}

impl SensorWatchdog {
    /// A watchdog over `cores` cores. `config.enabled` is assumed true —
    /// the controller only constructs one when it is.
    pub fn new(config: WatchdogConfig, cores: usize) -> Self {
        Self {
            config,
            last_power: vec![0.0; cores],
            has_last: vec![false; cores],
            suspect: vec![0; cores],
            stale: vec![false; cores],
            held: vec![Watts::ZERO; cores],
            gone: vec![0; cores],
            dead: vec![false; cores],
            any_dead: false,
            chip_zero: 0,
            dark: false,
        }
    }

    /// Ingests one epoch's observation and refreshes every health flag.
    /// Allocation-free; call once per decision.
    pub fn observe(&mut self, obs: &Observation) {
        let n = self.last_power.len().min(obs.cores.len());
        let mut any_dead = false;
        let mut any_ips = false;
        for i in 0..n {
            let core = &obs.cores[i];
            let p = core.power.value();
            let ips = core.ips;
            any_ips |= ips > 0.0;

            // Dead: the core neither draws power nor retires instructions.
            if p == 0.0 && ips == 0.0 {
                self.gone[i] = self.gone[i].saturating_add(1);
            } else {
                self.gone[i] = 0;
            }
            self.dead[i] = self.gone[i] >= self.config.dead_epochs;
            any_dead |= self.dead[i];

            // Stale: the reading repeats bit-exactly (a healthy noisy
            // sensor essentially never does), or reads zero while the
            // core demonstrably runs. Both are counted in consecutive
            // epochs so quantised coincidences do not trip the flag.
            let repeated = self.has_last[i] && p == self.last_power[i];
            let zero_while_running = p == 0.0 && ips > 0.0;
            if repeated || zero_while_running {
                self.suspect[i] = self.suspect[i].saturating_add(1);
            } else {
                self.suspect[i] = 0;
                self.held[i] = core.power;
            }
            self.stale[i] = !self.dead[i] && self.suspect[i] >= self.config.stale_epochs;
            self.last_power[i] = p;
            self.has_last[i] = true;
        }
        self.any_dead = any_dead;

        // Dark chip telemetry: a zero total reading while cores retire
        // instructions. A genuinely idle chip (no IPS anywhere) reading
        // zero is plausible, so it does not count.
        if obs.total_power == Watts::ZERO && any_ips {
            self.chip_zero = self.chip_zero.saturating_add(1);
        } else {
            self.chip_zero = 0;
        }
        self.dark = self.chip_zero >= self.config.dark_epochs;
    }

    /// Whether core `i`'s power sensor is currently considered stale.
    pub fn is_stale(&self, i: usize) -> bool {
        self.stale[i]
    }

    /// Whether core `i` is currently considered dead.
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// Whether any core is currently considered dead.
    pub fn any_dead(&self) -> bool {
        self.any_dead
    }

    /// Whether chip-level telemetry is currently considered dark.
    pub fn chip_dark(&self) -> bool {
        self.dark
    }

    /// The last healthy-looking reading of core `i`'s sensor — what the
    /// controller substitutes while the sensor is stale.
    pub fn held_power(&self, i: usize) -> Watts {
        self.held[i]
    }

    /// The effective-budget multiplier for stale cores.
    pub fn margin(&self) -> f64 {
        self.config.margin
    }

    /// The configuration this watchdog runs with.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{CoreObservation, Observation};
    use odrl_power::{Celsius, LevelId, Seconds};
    use odrl_workload::PhaseParams;

    fn obs(readings: &[(f64, f64)], total: f64) -> Observation {
        Observation {
            epoch: 0,
            dt: Seconds::new(0.01),
            budget: Watts::new(10.0),
            cores: readings
                .iter()
                .map(|&(power, ips)| CoreObservation {
                    level: LevelId(0),
                    ips,
                    power: Watts::new(power),
                    temperature: Celsius::new(50.0),
                    counters: PhaseParams::new(1.0, 1.0, 0.8).unwrap(),
                })
                .collect(),
            total_power: Watts::new(total),
        }
    }

    #[test]
    fn healthy_telemetry_raises_no_flags() {
        let mut wd = SensorWatchdog::new(WatchdogConfig::enabled(), 2);
        for k in 0..20 {
            // Wobbling readings, busy cores.
            let p = 1.0 + 0.01 * f64::from(k);
            wd.observe(&obs(&[(p, 1e9), (p + 0.5, 1e9)], 2.0 * p));
        }
        assert!(!wd.is_stale(0) && !wd.is_stale(1));
        assert!(!wd.is_dead(0) && !wd.any_dead());
        assert!(!wd.chip_dark());
    }

    #[test]
    fn bit_exact_repeats_trip_the_stale_flag_and_heal() {
        let cfg = WatchdogConfig::enabled();
        let mut wd = SensorWatchdog::new(cfg, 1);
        wd.observe(&obs(&[(2.0, 1e9)], 2.0));
        // The reading freezes at 1.5 W; the first frozen epoch is the
        // last healthy-looking one (no repeat yet), so 1.5 W is held.
        for _ in 0..cfg.stale_epochs + 1 {
            wd.observe(&obs(&[(1.5, 1e9)], 1.5));
        }
        assert!(wd.is_stale(0));
        assert_eq!(wd.held_power(0), Watts::new(1.5));
        // A fresh (different) reading heals the sensor immediately.
        wd.observe(&obs(&[(2.2, 1e9)], 2.2));
        assert!(!wd.is_stale(0));
        assert_eq!(wd.held_power(0), Watts::new(2.2));
    }

    #[test]
    fn zero_power_on_a_busy_core_is_stale_not_dead() {
        let cfg = WatchdogConfig::enabled();
        let mut wd = SensorWatchdog::new(cfg, 1);
        wd.observe(&obs(&[(1.8, 1e9)], 1.8));
        for _ in 0..cfg.stale_epochs {
            wd.observe(&obs(&[(0.0, 1e9)], 1.8));
        }
        assert!(wd.is_stale(0));
        assert!(!wd.is_dead(0));
        assert_eq!(wd.held_power(0), Watts::new(1.8));
    }

    #[test]
    fn dead_cores_are_detected_and_rejoin() {
        let cfg = WatchdogConfig::enabled();
        let mut wd = SensorWatchdog::new(cfg, 2);
        wd.observe(&obs(&[(1.0, 1e9), (1.0, 1e9)], 2.0));
        for _ in 0..cfg.dead_epochs {
            wd.observe(&obs(&[(0.0, 0.0), (1.1, 1e9)], 1.1));
        }
        assert!(wd.is_dead(0));
        assert!(!wd.is_dead(1));
        assert!(wd.any_dead());
        // The core comes back: flags clear on the first live epoch.
        wd.observe(&obs(&[(0.9, 5e8), (1.1, 1e9)], 2.0));
        assert!(!wd.is_dead(0));
        assert!(!wd.any_dead());
    }

    #[test]
    fn dark_chip_needs_running_cores() {
        let cfg = WatchdogConfig::enabled();
        let mut wd = SensorWatchdog::new(cfg, 1);
        // Zero total while the core runs: dark after the threshold.
        for _ in 0..cfg.dark_epochs {
            wd.observe(&obs(&[(1.0, 1e9)], 0.0));
        }
        assert!(wd.chip_dark());
        // Meter returns: the flag clears.
        wd.observe(&obs(&[(1.0, 1e9)], 1.0));
        assert!(!wd.chip_dark());
        // A genuinely idle chip reading zero is never dark.
        let mut wd = SensorWatchdog::new(cfg, 1);
        for _ in 0..10 {
            wd.observe(&obs(&[(0.0, 0.0)], 0.0));
        }
        assert!(!wd.chip_dark());
    }

    #[test]
    fn single_glitches_do_not_trip_anything() {
        let cfg = WatchdogConfig::enabled();
        let mut wd = SensorWatchdog::new(cfg, 1);
        for k in 0..50u32 {
            if k % 7 == 3 {
                // isolated repeat / zero glitch
                wd.observe(&obs(&[(0.0, 1e9)], 1.0));
            } else {
                wd.observe(&obs(&[(1.0 + 0.01 * f64::from(k), 1e9)], 1.0));
            }
            assert!(!wd.is_stale(0), "epoch {k}");
            assert!(!wd.is_dead(0), "epoch {k}");
        }
    }

    #[test]
    fn config_validation() {
        WatchdogConfig::default().validate().unwrap();
        WatchdogConfig::enabled().validate().unwrap();
        let bad = WatchdogConfig {
            stale_epochs: 0,
            ..WatchdogConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WatchdogConfig {
            dead_epochs: 0,
            ..WatchdogConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WatchdogConfig {
            dark_epochs: 0,
            ..WatchdogConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WatchdogConfig {
            margin: 0.0,
            ..WatchdogConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WatchdogConfig {
            margin: 1.5,
            ..WatchdogConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_roundtrips() {
        let cfg = WatchdogConfig::enabled();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WatchdogConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
