//! Error types for the OD-RL controller.

use odrl_rl::RlError;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or running OD-RL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OdRlError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The system spec was degenerate (zero cores or levels).
    EmptySpec,
    /// An error bubbled up from the RL machinery.
    Rl(RlError),
}

impl fmt::Display for OdRlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid OD-RL config field `{field}`: {reason}")
            }
            Self::EmptySpec => write!(f, "system spec has no cores or levels"),
            Self::Rl(e) => write!(f, "rl: {e}"),
        }
    }
}

impl Error for OdRlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Rl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RlError> for OdRlError {
    fn from(e: RlError) -> Self {
        Self::Rl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_rl_errors() {
        let e = OdRlError::from(RlError::EmptySpace { what: "state" });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("rl:"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<OdRlError>();
    }
}
