//! The OD-RL controller: fine-grain per-core Q-learning plus coarse-grain
//! global budget reallocation.

use crate::budget::{AllocScratch, BudgetAllocator};
use crate::config::OdRlConfig;
use crate::error::OdRlError;
use crate::obs::CtrlTracer;
use crate::reward::RewardShaper;
use crate::state::StateEncoder;
use crate::watchdog::SensorWatchdog;
use odrl_controllers::PowerController;
use odrl_faults::{BudgetChannel, FaultEngine};
use odrl_manycore::parallel::{shard_chunks, stream_seed, ShardSplit};
use odrl_manycore::{Observation, Stage, StageTimers, SystemSpec};
use odrl_market::{MarketAllocator, MarketRound, MarketScratch};
use odrl_obs::{Event, EventCounts, EventRecord};
use odrl_power::{LevelId, Watts};
use odrl_rl::snapshot as rl_snapshot;
use odrl_rl::{
    Agent, Algorithm, DoubleAgent, EpsCache, Policy, RlError, SnapshotError, UpdateMask,
    KIND_AGENT, KIND_DOUBLE_AGENT, KIND_POLICY_SET,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

/// The per-core learner: plain/SARSA tabular agent or a double-Q pair,
/// chosen by [`OdRlConfig::algorithm`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum CoreAgent {
    Single(Agent),
    Double(DoubleAgent),
}

impl CoreAgent {
    /// The decide half of the RL step: one pass over this state's Q-row
    /// selects the action *and* captures the TD bootstrap the pending
    /// transition will be priced with — the argmax the TD target needs
    /// and the greedy choice the policy needs are the same scan. The flag
    /// is `true` when the action came from an exploration draw.
    fn decide<R: Rng + ?Sized>(
        &mut self,
        algorithm: Algorithm,
        s_next: usize,
        rng: &mut R,
        cache: &mut EpsCache,
    ) -> Result<(usize, bool, f64), RlError> {
        match self {
            Self::Single(agent) => match algorithm {
                Algorithm::Sarsa => agent.decide_sarsa_explored(s_next, rng, cache),
                _ => agent.decide_q_explored(s_next, rng, cache),
            },
            Self::Double(agent) => agent.decide_explored(s_next, rng, cache),
        }
    }

    /// Like [`CoreAgent::decide`] with the leading ε draw supplied by the
    /// controller's batched block refill (`simd` feature): `draw` is the
    /// raw `next_u64` this core's RNG would have produced. Per-core draw
    /// order is unchanged, so seeded runs match the unbatched path.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    fn decide_prepared<R: Rng + ?Sized>(
        &mut self,
        algorithm: Algorithm,
        s_next: usize,
        draw: u64,
        rng: &mut R,
        cache: &mut EpsCache,
    ) -> Result<(usize, bool, f64), RlError> {
        match self {
            Self::Single(agent) => match algorithm {
                Algorithm::Sarsa => agent.decide_sarsa_prepared(s_next, draw, rng, cache),
                _ => agent.decide_q_prepared(s_next, draw, rng, cache),
            },
            Self::Double(agent) => agent.decide_prepared(s_next, draw, rng, cache),
        }
    }

    /// The banked row and scale the next decision in `s_next` would scan,
    /// when this agent can consume a block-scanned argmax (single-agent
    /// quantized storage only — a double agent scans the sum of two
    /// tables, which the block kernel does not model).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[inline]
    fn quant_row(&self, s_next: usize) -> Option<(&[i16], f32)> {
        match self {
            Self::Single(a) => a.quant_row(s_next),
            Self::Double(_) => None,
        }
    }

    /// [`CoreAgent::decide_prepared`] with the row scan hoisted into a
    /// [`odrl_rl::kernel::scan_rows`] batch: `best`/`max_v` are that
    /// batch's results for this agent. Only reachable behind
    /// [`CoreAgent::quant_row`] returning `Some`, so the double-agent arm
    /// is unreachable.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn decide_scanned<R: Rng + ?Sized>(
        &mut self,
        algorithm: Algorithm,
        s_next: usize,
        best: usize,
        max_v: f64,
        draw: u64,
        rng: &mut R,
        cache: &mut EpsCache,
    ) -> Result<(usize, bool, f64), RlError> {
        match self {
            Self::Single(agent) => match algorithm {
                Algorithm::Sarsa => agent.decide_sarsa_scanned(s_next, best, draw, rng, cache),
                _ => agent.decide_q_scanned(s_next, best, max_v, draw, rng, cache),
            },
            Self::Double(agent) => agent.decide_prepared(s_next, draw, rng, cache),
        }
    }

    /// Whether this agent's policy consumes exactly one leading uniform
    /// draw per decision — the gate for the batched ε refill.
    fn pre_draws(&self) -> bool {
        match self {
            Self::Single(a) => a.policy_pre_draws(),
            Self::Double(a) => a.policy_pre_draws(),
        }
    }

    /// The learn half: applies the TD update for `(s, a, reward)` with the
    /// bootstrap captured by the same epoch's [`CoreAgent::decide`].
    /// Returns the TD error (the learning-health diagnostics signal).
    fn learn(&mut self, s: usize, a: usize, reward: f64, bootstrap: f64) -> Result<f64, RlError> {
        match self {
            Self::Single(agent) => agent.learn(s, a, reward, bootstrap),
            Self::Double(agent) => agent.learn(s, a, reward, bootstrap),
        }
    }

    /// [`CoreAgent::learn`] through the agents' inlinable entry points —
    /// the batched learn pass's variant (`simd` feature), so the TD-step
    /// chain flattens into the shard loop instead of paying three
    /// cross-crate calls per core.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[inline]
    fn learn_prepared(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        bootstrap: f64,
    ) -> Result<f64, RlError> {
        match self {
            Self::Single(agent) => agent.learn_prepared(s, a, reward, bootstrap),
            Self::Double(agent) => agent.learn_prepared(s, a, reward, bootstrap),
        }
    }

    /// Min/max action value and visit count of state `s` — the
    /// diagnostics tap (for double-Q, the element-wise union over both
    /// tables).
    fn row_stats(&self, s: usize) -> Result<odrl_rl::RowStats, RlError> {
        match self {
            Self::Single(a) => a.q().row_stats(s),
            Self::Double(a) => {
                let sa = a.qa().row_stats(s)?;
                let sb = a.qb().row_stats(s)?;
                Ok(odrl_rl::RowStats {
                    q_min: sa.q_min.min(sb.q_min),
                    q_max: sa.q_max.max(sb.q_max),
                    visit_min: sa.visit_min.min(sb.visit_min),
                    visit_max: sa.visit_max.max(sb.visit_max),
                })
            }
        }
    }

    /// Quantized-storage health (summed over both tables for double-Q);
    /// `None` when the storage is scalar.
    fn quant_health(&self) -> Option<odrl_rl::QuantHealth> {
        match self {
            Self::Single(a) => a.q().quant_health(),
            Self::Double(a) => {
                let ha = a.qa().quant_health()?;
                let hb = a.qb().quant_health()?;
                Some(odrl_rl::QuantHealth {
                    doublings: ha.doublings + hb.doublings,
                    saturated: ha.saturated + hb.saturated,
                    lanes: ha.lanes + hb.lanes,
                })
            }
        }
    }

    /// Hints the CPU to pull state `s`'s Q-row(s) toward L1 — issued one
    /// decide ahead so the row is resident when its scan starts.
    #[inline]
    fn prefetch(&self, s: usize) {
        match self {
            Self::Single(a) => a.q().prefetch_row(s),
            Self::Double(a) => {
                a.qa().prefetch_row(s);
                a.qb().prefetch_row(s);
            }
        }
    }

    /// Like [`CoreAgent::prefetch`] but covers the row scale too — the
    /// batched decide pass (`simd` feature) runs this several agents
    /// ahead, because the lighter SIMD scan no longer has enough work per
    /// core to hide a miss behind a single-step pipeline.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[inline]
    fn prefetch_select(&self, s: usize) {
        match self {
            Self::Single(a) => a.q().prefetch_select(s),
            Self::Double(a) => {
                a.qa().prefetch_select(s);
                a.qb().prefetch_select(s);
            }
        }
    }

    /// Hints the CPU at everything the pending TD update of `(s, a)` will
    /// touch (bank lane, row scale, visit counter — separate allocations
    /// on the quantized layout). The learn pass (`simd` feature) issues
    /// this several agents ahead.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[inline]
    fn prefetch_update(&self, s: usize, a: usize) {
        match self {
            Self::Single(ag) => ag.q().prefetch_update(s, a),
            Self::Double(ag) => {
                ag.qa().prefetch_update(s, a);
                ag.qb().prefetch_update(s, a);
            }
        }
    }

    fn coverage(&self) -> f64 {
        match self {
            Self::Single(a) => a.q().coverage(),
            Self::Double(a) => a.coverage(),
        }
    }

    fn values(&self, s: usize) -> Result<Vec<f64>, RlError> {
        match self {
            Self::Single(a) => a.q().row_values(s),
            Self::Double(a) => a.combined_row(s),
        }
    }

    /// `(states, actions)` of the underlying table(s).
    fn dims(&self) -> (usize, usize) {
        match self {
            Self::Single(a) => (a.q().states(), a.q().actions()),
            Self::Double(a) => (a.qa().states(), a.qa().actions()),
        }
    }
}

/// On-line Distributed Reinforcement Learning DVFS control
/// (Chen & Marculescu, DATE 2015).
///
/// * **Fine grain** — one tabular Q-learning [`Agent`] per core learns,
///   model-free, which VF level maximizes its throughput without exceeding
///   its share of the chip power budget. State: (local power/budget ratio,
///   memory-boundedness, current level); actions: VF levels; reward:
///   normalized IPS minus a strong local overshoot penalty.
/// * **Coarse grain** — every `realloc_period` epochs a [`BudgetAllocator`]
///   redistributes the chip budget toward the cores with the highest
///   observed marginal throughput per watt.
///
/// The per-epoch decision cost is **O(n · L)** for `n` cores and `L`
/// levels — no combinatorial search — which is the source of the paper's
/// two-orders-of-magnitude runtime advantage over MaxBIPS-class controllers
/// at hundreds of cores.
///
/// ```
/// use odrl_core::{OdRlConfig, OdRlController};
/// use odrl_controllers::PowerController;
/// use odrl_manycore::{System, SystemConfig};
/// use odrl_power::Watts;
///
/// let config = SystemConfig::builder().cores(16).seed(7).build()?;
/// let budget = Watts::new(0.6 * config.max_power().value());
/// let mut system = System::new(config)?;
/// let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget)?;
/// for _ in 0..30 {
///     let obs = system.observation(budget);
///     let actions = ctrl.decide(&obs);
///     system.step(&actions)?;
/// }
/// assert!(system.telemetry().total_instructions() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OdRlController {
    config: OdRlConfig,
    encoder: StateEncoder,
    agents: Vec<CoreAgent>,
    shaper: RewardShaper,
    allocator: Option<BudgetAllocator>,
    budgets: Vec<Watts>,
    total_budget: Watts,
    /// Decaying per-core maximum of observed power — the denominator of
    /// the state's budget-affordability dimension.
    max_power_seen: Vec<f64>,
    /// Chip-level utilisation feedback: per-core shares are scaled by this
    /// factor so that *measured chip power* tracks the budget. Discrete VF
    /// levels leave each core a safety margin below its share; without this
    /// term those margins add up to 15-25 % of unused budget. The scale
    /// rises while the chip is under budget and falls immediately when it
    /// is over (asymmetric gains: slow fill, fast back-off).
    utilisation_scale: f64,
    /// One private exploration stream per core, derived from the config
    /// seed and the core index — draws never depend on execution order, so
    /// the sharded decide path is bit-identical to the serial one.
    rngs: Vec<StdRng>,
    /// (state, action) pairs awaiting their reward.
    pending: Option<Vec<(usize, usize)>>,
    /// Retired pending buffer, reused for the next epoch's decisions so the
    /// two (state, action) vectors ping-pong without reallocating.
    spare: Vec<(usize, usize)>,
    /// Per-core TD bootstraps captured by this epoch's decide pass (the
    /// max/selected Q at the successor state, read *before* any update) —
    /// consumed by the same epoch's learn pass. Scratch, sized once.
    boots: Vec<f64>,
    /// Per-shard `[decide_ns, learn_ns]` stamps, written at each shard's
    /// chunk-base slot inside the parallel region and folded into the
    /// stage timers afterwards. Scratch, sized once.
    rl_ns: Vec<[u64; 2]>,
    /// Pre-drawn raw ε draws, one `next_u64` per core, refilled block-wide
    /// inside each shard by the batched decide pass (`simd` feature).
    /// Scratch, sized once.
    eps_draws: Vec<u64>,
    /// Memory-boundedness bin per core, cached by the batched decide
    /// pass's encode sweep and reused by the learn pass (the same
    /// observation feeds both, so re-deriving it would repeat two
    /// divisions per core). Scratch, sized once.
    mem_phase: Vec<u16>,
    /// Whether every agent's policy pre-draws exactly one leading uniform
    /// (see `Policy::pre_draws_uniform`) — the gate for the batched ε
    /// refill. Recomputed whenever the agents are replaced.
    eps_batchable: bool,
    /// Telemetry-health tracker, present when the config enables it.
    watchdog: Option<SensorWatchdog>,
    /// Unreliable budget-message link, present after
    /// [`OdRlController::attach_budget_faults`]. When absent,
    /// reallocations take effect instantly (the paper's assumption).
    channel: Option<BudgetChannel>,
    /// Validity of the (state, action) pairs recorded *this* epoch.
    mask: UpdateMask,
    /// Validity of the pending pairs (recorded last epoch); ping-pongs
    /// with `mask` so masking never reallocates.
    mask_prev: UpdateMask,
    /// Working buffers for the coarse-grain reallocation.
    alloc_scratch: AllocScratch,
    /// Double buffer for the per-core budgets across a reallocation.
    budgets_next: Vec<Watts>,
    /// Predictive slack market over the per-core budgets, present when
    /// [`crate::MarketConfig::enabled`] is set on a reallocating
    /// controller (see `odrl-market`).
    market: Option<MarketAllocator>,
    /// Staging buffers for the market pass (same reuse pattern as
    /// `alloc_scratch`).
    market_scratch: MarketScratch,
    /// Ledger of the most recent market round, for conservation gates
    /// and telemetry.
    last_market_round: Option<MarketRound>,
    /// Structured-event recorder, present only when
    /// [`OdRlConfig::obs`] enables it (boxed: ~8 bytes on the hot
    /// struct when tracing is off).
    tracer: Option<Box<CtrlTracer>>,
    /// Per-stage time spent in the controller side of the epoch pipeline
    /// (`Rl` and `Realloc`); merge with the system's timers for the full
    /// epoch breakdown.
    timers: StageTimers,
    epochs: u64,
    name: &'static str,
}

impl OdRlController {
    /// Creates the full OD-RL controller (fine + coarse grain).
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::EmptySpec`] for a degenerate spec or
    /// [`OdRlError::InvalidConfig`] for bad tuning parameters.
    pub fn new(
        config: OdRlConfig,
        spec: &SystemSpec,
        initial_budget: Watts,
    ) -> Result<Self, OdRlError> {
        Self::build(config, spec, initial_budget, true)
    }

    /// The ablation variant: per-core RL only, with budgets frozen at the
    /// fair split (no coarse-grain reallocation).
    ///
    /// # Errors
    ///
    /// As [`OdRlController::new`].
    pub fn without_reallocation(
        config: OdRlConfig,
        spec: &SystemSpec,
        initial_budget: Watts,
    ) -> Result<Self, OdRlError> {
        Self::build(config, spec, initial_budget, false)
    }

    fn build(
        config: OdRlConfig,
        spec: &SystemSpec,
        initial_budget: Watts,
        reallocate: bool,
    ) -> Result<Self, OdRlError> {
        config.validate()?;
        if spec.cores == 0 || spec.vf_table.is_empty() {
            return Err(OdRlError::EmptySpec);
        }
        let levels = spec.vf_table.len();
        let encoder = StateEncoder::new(&config, levels)?;
        // Optimistic initialisation at the value of a perfect steady
        // reward (1/(1-gamma)) makes every untried level greedily
        // attractive once, so agents discover newly affordable levels
        // after a budget reallocation without waiting for epsilon
        // exploration.
        let optimistic = 1.0 / (1.0 - config.gamma);
        let policy = Policy::EpsilonGreedy {
            epsilon: config.epsilon,
        };
        let agents = (0..spec.cores)
            .map(|_| match config.algorithm {
                Algorithm::DoubleQLearning => Ok(CoreAgent::Double(
                    DoubleAgent::builder(encoder.num_states(), encoder.num_actions())
                        .gamma(config.gamma)
                        .alpha(config.alpha)
                        .policy(policy)
                        .layout(config.layout)
                        // Selection sums both tables, so halve the prior.
                        .optimistic(optimistic / 2.0)
                        .build()?,
                )),
                _ => Ok(CoreAgent::Single(
                    Agent::builder(encoder.num_states(), encoder.num_actions())
                        .gamma(config.gamma)
                        .alpha(config.alpha)
                        .policy(policy)
                        .layout(config.layout)
                        .optimistic(optimistic)
                        .build()?,
                )),
            })
            .collect::<Result<Vec<_>, RlError>>()?;
        let allocator = reallocate
            .then(|| BudgetAllocator::new(spec.cores, config.realloc_gain, config.min_share));
        // The market rides the coarse-grain reallocation step, so the
        // local-only ablation never trades even with the knob on.
        let market = (reallocate && config.market.enabled)
            .then(|| MarketAllocator::new(spec.cores, config.market))
            .transpose()
            .map_err(|e| OdRlError::InvalidConfig {
                field: "market",
                reason: e.to_string(),
            })?;
        let watchdog = config
            .watchdog
            .enabled
            .then(|| SensorWatchdog::new(config.watchdog, spec.cores));
        let eps_batchable = agents.iter().all(CoreAgent::pre_draws);
        Ok(Self {
            shaper: RewardShaper::new(spec.cores, encoder.num_mem_bins(), config.overshoot_penalty),
            budgets: BudgetAllocator::fair_split(initial_budget, spec.cores),
            max_power_seen: vec![0.0; spec.cores],
            utilisation_scale: 1.0,
            total_budget: initial_budget,
            rngs: (0..spec.cores)
                .map(|i| {
                    StdRng::seed_from_u64(stream_seed(
                        config.seed ^ 0x0D51_5EED_0D51_5EED,
                        i as u64,
                    ))
                })
                .collect(),
            pending: None,
            spare: Vec::new(),
            boots: vec![0.0; spec.cores],
            rl_ns: vec![[0, 0]; spec.cores],
            eps_draws: vec![0; spec.cores],
            mem_phase: vec![0; spec.cores],
            eps_batchable,
            watchdog,
            channel: None,
            mask: UpdateMask::new(spec.cores),
            mask_prev: UpdateMask::new(spec.cores),
            alloc_scratch: AllocScratch::default(),
            budgets_next: Vec::new(),
            tracer: config.obs.enabled.then(|| {
                Box::new(CtrlTracer::new(
                    &config.obs,
                    spec.cores,
                    config.parallelism.shards(spec.cores),
                ))
            }),
            timers: StageTimers::new(),
            epochs: 0,
            name: if market.is_some() {
                "od-rl-market"
            } else if reallocate {
                "od-rl"
            } else {
                "od-rl-local"
            },
            market,
            market_scratch: MarketScratch::default(),
            last_market_round: None,
            config,
            encoder,
            agents,
            allocator,
        })
    }

    /// The per-core budgets currently in force.
    pub fn budgets(&self) -> &[Watts] {
        &self.budgets
    }

    /// Per-stage time spent in this controller's decision path
    /// ([`Stage::Rl`] and [`Stage::Realloc`]). Merge with
    /// [`odrl_manycore::System::stage_timers`] for the full epoch
    /// breakdown.
    pub fn stage_timers(&self) -> &StageTimers {
        &self.timers
    }

    /// Zeroes the per-stage timers (e.g. after benchmark warmup).
    pub fn reset_stage_timers(&mut self) {
        self.timers.reset();
    }

    /// Routes coarse-grain budget messages through the fault engine's
    /// unreliable channel: reallocated shares may now be lost, delayed or
    /// replaced by stale retransmissions, and agents that hear nothing
    /// keep their old share. Without this call the controller assumes the
    /// paper's perfect same-epoch delivery.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::InvalidConfig`] if the engine models a
    /// different core count than this controller.
    pub fn attach_budget_faults(&mut self, engine: &FaultEngine) -> Result<(), OdRlError> {
        if engine.num_cores() != self.agents.len() {
            return Err(OdRlError::InvalidConfig {
                field: "faults",
                reason: format!(
                    "fault engine models {} cores, controller has {}",
                    engine.num_cores(),
                    self.agents.len()
                ),
            });
        }
        self.channel = Some(engine.budget_channel());
        Ok(())
    }

    /// The sensor watchdog, when [`crate::WatchdogConfig::enabled`] is
    /// set — for telemetry and tests.
    pub fn watchdog(&self) -> Option<&SensorWatchdog> {
        self.watchdog.as_ref()
    }

    /// The slack market, when [`crate::MarketConfig::enabled`] is set on
    /// a reallocating controller.
    pub fn market(&self) -> Option<&MarketAllocator> {
        self.market.as_ref()
    }

    /// The ledger of the most recent market round — `None` until the
    /// first market epoch (or when the market arm is off). Conservation
    /// gates assert `conservation_error() == 0.0` on every round.
    pub fn market_round(&self) -> Option<&MarketRound> {
        self.last_market_round.as_ref()
    }

    /// The structured-event tracer, when [`OdRlConfig::obs`] enables it.
    pub fn tracer(&self) -> Option<&CtrlTracer> {
        self.tracer.as_deref()
    }

    /// Appends every trace record this controller holds onto `out`
    /// (no-op when tracing is disabled). Pass the result through
    /// [`odrl_obs::merge_records`] for the canonical order.
    pub fn extend_trace_into(&self, out: &mut Vec<EventRecord>) {
        if let Some(tr) = self.tracer.as_deref() {
            tr.extend_into(out);
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &OdRlConfig {
        &self.config
    }

    /// Exports the learned per-core policies for persistence or transfer
    /// (warm-starting a controller on another chip or a later run). Only
    /// the Q-tables travel; fast-relearning state (reward normalizers,
    /// power ceilings, budgets) is rebuilt on-line within tens of epochs.
    pub fn export_policy(&self) -> PolicySnapshot {
        PolicySnapshot {
            states: self.encoder.num_states(),
            actions: self.encoder.num_actions(),
            agents: self.agents.clone(),
        }
    }

    /// Replaces the per-core agents with a previously exported snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`OdRlError::InvalidConfig`] if the snapshot's state/action
    /// dimensions or core count do not match this controller.
    pub fn import_policy(&mut self, snapshot: PolicySnapshot) -> Result<(), OdRlError> {
        if snapshot.states != self.encoder.num_states()
            || snapshot.actions != self.encoder.num_actions()
        {
            return Err(OdRlError::InvalidConfig {
                field: "snapshot",
                reason: format!(
                    "snapshot is {}x{}, controller expects {}x{}",
                    snapshot.states,
                    snapshot.actions,
                    self.encoder.num_states(),
                    self.encoder.num_actions()
                ),
            });
        }
        if snapshot.agents.len() != self.agents.len() {
            return Err(OdRlError::InvalidConfig {
                field: "snapshot",
                reason: format!(
                    "snapshot has {} agents, controller has {}",
                    snapshot.agents.len(),
                    self.agents.len()
                ),
            });
        }
        self.agents = snapshot.agents;
        // Imported agents may carry any policy; re-derive the batched-ε
        // eligibility from what actually arrived.
        self.eps_batchable = self.agents.iter().all(CoreAgent::pre_draws);
        // Rewards already earned under the old tables are stale.
        self.pending = None;
        Ok(())
    }

    /// The Q-values of core `i`'s agent in the state it would encode from
    /// `obs` — the learned preference over VF levels at this instant.
    /// Returns `None` if `i` is out of range.
    ///
    /// Intended for telemetry and debugging of learned policies.
    pub fn policy_values(&self, i: usize, obs: &Observation) -> Option<Vec<f64>> {
        let core = obs.cores.get(i)?;
        let agent = self.agents.get(i)?;
        let s = self.encoder.encode(core, self.affordability(i));
        agent.values(s).ok()
    }

    /// Core `i`'s effective share: its base allocation times the chip
    /// utilisation scale.
    fn effective_budget(&self, i: usize) -> Watts {
        self.budgets[i] * self.utilisation_scale
    }

    /// `effective budget_i / max power seen on core i` (∞ before any power
    /// reading).
    fn affordability(&self, i: usize) -> f64 {
        let p_max = self.max_power_seen[i];
        if p_max > 0.0 {
            self.effective_budget(i).value() / p_max
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of `(state, action)` pairs the per-core agents have visited
    /// (averaged over cores) — a learning-progress diagnostic.
    pub fn coverage(&self) -> f64 {
        let sum: f64 = self.agents.iter().map(CoreAgent::coverage).sum();
        sum / self.agents.len() as f64
    }

    /// Rescales per-core budgets when the chip budget changes, preserving
    /// relative shares.
    fn track_budget(&mut self, budget: Watts) {
        if (budget - self.total_budget).abs().value() < 1e-12 {
            return;
        }
        let old = self.total_budget.value();
        if old > 0.0 {
            let k = budget.value() / old;
            for b in &mut self.budgets {
                *b = *b * k;
            }
        } else {
            self.budgets = BudgetAllocator::fair_split(budget, self.budgets.len());
        }
        self.total_budget = budget;
    }
}

impl PowerController for OdRlController {
    fn name(&self) -> &str {
        self.name
    }

    fn decide_into(&mut self, obs: &Observation, out: &mut [LevelId]) {
        debug_assert_eq!(out.len(), obs.cores.len());
        let n = obs.cores.len().min(self.agents.len());
        if n == 0 {
            return;
        }
        // Cores beyond the agent population (defensive) get the floor.
        out.fill(LevelId(0));
        self.track_budget(obs.budget);
        let epoch = self.epochs;
        // Clock reads only when tracing: the disabled path must cost
        // nothing beyond the `Option` branches.
        let t0 = self.tracer.is_some().then(Instant::now);

        // Telemetry health first: every degradation decision below keys
        // off the flags this refreshes.
        if let Some(wd) = &mut self.watchdog {
            wd.observe(obs);
        }
        if let Some(tr) = self.tracer.as_deref_mut() {
            if let Some(wd) = &self.watchdog {
                tr.record_watchdog(epoch, wd);
            }
            tr.record_power(epoch, obs.total_power.value(), obs.budget.value());
        }

        // Overshoot guard: with chip telemetry dark the controller cannot
        // know whether it is over budget, and flying blind upward risks
        // the part. Pin every core to the floor level (already written to
        // `out`), drop the unpriceable pending transition, and wait for
        // the meter to return.
        if self.watchdog.as_ref().is_some_and(SensorWatchdog::chip_dark) {
            if let Some(p) = self.pending.take() {
                self.spare = p;
            }
            if let (Some(tr), Some(t0)) = (self.tracer.as_deref_mut(), t0) {
                tr.end_epoch(epoch, t0);
            }
            self.timers.bump_epoch();
            self.epochs += 1;
            return;
        }

        if let Some(ch) = &mut self.channel {
            ch.begin_epoch(self.epochs);
        }

        // Coarse grain: update marginal estimates every epoch, reallocate
        // every K epochs. The new allocation is written into the budget
        // double buffer and swapped in, so periodic reallocations stay
        // allocation-free at steady state. With an unreliable budget
        // channel attached the shares travel as messages instead: each
        // core's new share is sent on its link, and only what arrives is
        // applied — an agent whose message is lost keeps its old share.
        let t_realloc = Instant::now();
        if let Some(allocator) = &mut self.allocator {
            allocator.observe(obs);
            if self.epochs > 0 && self.epochs.is_multiple_of(self.config.realloc_period) {
                allocator.reallocate_into(
                    obs,
                    &self.budgets,
                    obs.budget,
                    &mut self.alloc_scratch,
                    &mut self.budgets_next,
                );
                if let Some(tr) = self.tracer.as_deref_mut() {
                    let moved: f64 = self
                        .budgets_next
                        .iter()
                        .zip(&self.budgets)
                        .map(|(new, old)| (*new - *old).abs().value())
                        .sum();
                    tr.record_realloc(epoch, moved);
                }
                match &mut self.channel {
                    None => std::mem::swap(&mut self.budgets, &mut self.budgets_next),
                    Some(ch) => {
                        for (i, b) in self.budgets_next.iter().enumerate().take(n) {
                            ch.send(i, b.value());
                        }
                    }
                }
            }
        }
        if let Some(ch) = &mut self.channel {
            for (i, b) in self.budgets.iter_mut().enumerate().take(n) {
                if let Some(v) = ch.poll(i) {
                    *b = Watts::new(v);
                }
            }
        }
        self.timers.record(Stage::Realloc, t_realloc);

        // A dead core burns no watts: hand its share to the survivors so
        // the chip budget keeps getting spent on work. The freed watts go
        // out evenly; the next reallocation re-optimises the split (and
        // restores a floor share to a core that rejoins).
        if let Some(wd) = &self.watchdog {
            if wd.any_dead() {
                let mut freed = 0.0;
                let mut alive = 0usize;
                for i in 0..n {
                    if wd.is_dead(i) {
                        freed += self.budgets[i].value();
                        self.budgets[i] = Watts::ZERO;
                    } else {
                        alive += 1;
                    }
                }
                if freed > 0.0 && alive > 0 {
                    let bonus = Watts::new(freed / alive as f64);
                    for i in 0..n {
                        if !wd.is_dead(i) {
                            self.budgets[i] += bonus;
                        }
                    }
                    if let Some(tr) = self.tracer.as_deref_mut() {
                        tr.record_redistribution(epoch, freed);
                    }
                }
            }
        }

        // Predictive slack market (see `odrl-market`): each market epoch
        // every core forecasts its next-epoch demand, cores holding more
        // than they need donate the predicted slack into the reclaim pool
        // and over-budget cores apply for it — a fast path that moves
        // watts between reallocations instead of waiting out the reactive
        // `realloc_period`. Runs in this serial coarse-grain section, so
        // shard counts cannot affect it. With an unreliable budget channel
        // attached the post-market shares travel as messages on the same
        // lossy links reallocations use, so fault plans (lost / delayed /
        // stale) exercise the market path too.
        if let Some(market) = &mut self.market {
            if self.epochs > 0 && self.epochs.is_multiple_of(market.period()) {
                let t_market = Instant::now();
                let (powers, shares) = self.market_scratch.stage();
                for (core, b) in obs.cores.iter().zip(&self.budgets).take(n) {
                    powers.push(core.power.value());
                    shares.push(b.value());
                }
                // Cores with untrustworthy telemetry sit the round out:
                // a dead or stuck sensor must neither feed the predictor
                // nor price a donation.
                if let Some(wd) = &self.watchdog {
                    for i in 0..n {
                        if wd.is_dead(i) || wd.is_stale(i) {
                            self.market_scratch.deactivate(i);
                        }
                    }
                }
                let round = market.step(obs.budget.value(), &mut self.market_scratch);
                if round.moved() {
                    match &mut self.channel {
                        None => {
                            for (b, s) in self
                                .budgets
                                .iter_mut()
                                .zip(self.market_scratch.shares())
                                .take(n)
                            {
                                *b = Watts::new(*s);
                            }
                        }
                        Some(ch) => {
                            for (i, s) in
                                self.market_scratch.shares().iter().enumerate().take(n)
                            {
                                ch.send(i, *s);
                                if let Some(v) = ch.poll(i) {
                                    self.budgets[i] = Watts::new(v);
                                }
                            }
                        }
                    }
                }
                if let Some(tr) = self.tracer.as_deref_mut() {
                    tr.record_market(epoch, &round);
                }
                self.last_market_round = Some(round);
                self.timers.record(Stage::Realloc, t_market);
            }
        }

        // Chip-level utilisation feedback (see `utilisation_scale`), with
        // AIMD dynamics: additive fill while under budget, multiplicative
        // back-off on any overshoot epoch. The multiplicative decrease is
        // what keeps homogeneous workloads — where all cores hit their
        // share boundary in lock-step — just below the chip budget instead
        // of oscillating across it.
        if obs.total_power.value() > 0.0 && obs.budget.value() > 0.0 {
            let err = (obs.budget - obs.total_power).value() / obs.budget.value();
            if err >= 0.0 {
                self.utilisation_scale += 0.01 * err;
            } else {
                self.utilisation_scale *= 0.95;
            }
            self.utilisation_scale = self.utilisation_scale.clamp(0.9, 1.6);
        }

        // Track each core's power ceiling (decaying max) for the
        // affordability state dimension. Stale and dead readings are
        // frozen out: a stuck register must not decay (or define) a
        // ceiling the core never actually drew.
        let wd = self.watchdog.as_ref();
        for (i, (seen, core)) in self.max_power_seen.iter_mut().zip(&obs.cores).enumerate() {
            if wd.is_some_and(|w| w.is_dead(i) || w.is_stale(i)) {
                continue;
            }
            *seen = (*seen * 0.999).max(core.power.value());
        }

        // Fine grain: close the RL loop per core. Each core touches only
        // its own agent, exploration RNG and reward row, so the loop shards
        // across threads with bit-identical results (per-core streams plus
        // contiguous chunks written in place).
        let t_rl = Instant::now();
        let old_pending = self.pending.take();
        let mut decisions = std::mem::take(&mut self.spare);
        decisions.clear();
        decisions.resize(n, (0, 0));
        // Validity ping-pong: `mask_prev` now covers the pending pairs,
        // `mask` is re-armed for the decisions recorded below.
        std::mem::swap(&mut self.mask, &mut self.mask_prev);
        self.mask.reset();
        let chunk = {
            let config = &self.config;
            let encoder = &self.encoder;
            let budgets = &self.budgets;
            let scale = self.utilisation_scale;
            let max_seen = &self.max_power_seen;
            let old_pending = old_pending.as_deref();
            let wd = self.watchdog.as_ref();
            let prev_valid = self.mask_prev.as_slice();
            // Exploration events are recorded inside the sharded loop, so
            // each shard writes a private ring (`base / chunk` — the same
            // chunking `shard_chunks` applies). Locking is uncontended and
            // only happens on the rare exploration epochs.
            let trace_rings = self.tracer.as_deref().map(CtrlTracer::shard_rings);
            // Learning-health taps mirror the ring layout: each shard folds
            // its TD-error / Q-span / visit-spread samples into a private
            // accumulator and merges it once at shard end, so the summary
            // algebra sees the same exact integer adds at any shard count.
            let diag_shards = self.tracer.as_deref().and_then(CtrlTracer::shard_diags);
            // Q-row statistics (greedy-Q span, visit spread) cost a full
            // row scan per decide, and a full TD-error summary record is
            // ~15 integer/float ops per core, so both sample on the
            // diagnostics period — keyed on the epoch alone, hence
            // shard-invariant. Off-period epochs keep only the TD peak
            // (two compares) so watermark rules still see every blowup
            // the epoch it happens; the decision/exploration tallies are
            // plain increments and run every epoch.
            let diag_rows = self
                .tracer
                .as_deref()
                .is_some_and(|t| t.diag_enabled() && epoch.is_multiple_of(t.diag_period().max(1)));
            let chunk = n.div_ceil(config.parallelism.shards(n));
            // The batched decide path splits the per-core loop into
            // lane-friendly passes (encode → ε refill → scan/select). It
            // requires every policy to pre-draw exactly one uniform and is
            // compiled in only with the `simd` feature, so feature-off
            // builds run the interleaved loop byte-for-byte.
            let batched = cfg!(feature = "simd") && self.eps_batchable;
            let (rows, _) = self.shaper.rows_view().split_at_mut(n);
            let (mask_bits, _) = self.mask.as_mut_slice().split_at_mut(n);
            shard_chunks(
                config.parallelism,
                (
                    &mut self.agents[..n],
                    &mut self.rngs[..n],
                    rows,
                    &mut decisions[..n],
                    mask_bits,
                    &mut self.boots[..n],
                    &mut self.eps_draws[..n],
                    &mut self.mem_phase[..n],
                    &mut self.rl_ns[..n],
                ),
                move |base, (agents, rngs, mut rows, dec, valid, boots, draws, mem_phase, rl_ns)| {
                    // Per-shard epsilon memo: every lockstep agent shares the
                    // same (schedule, step) pair, so one `exp()` serves the
                    // whole shard instead of one per core.
                    let mut cache = EpsCache::new();
                    let len = agents.len();
                    // Stack-local diagnostics accumulator; merged into the
                    // shard slot once at the end so the hot loops never
                    // touch the mutex.
                    let diag_on = diag_shards.is_some();
                    let mut diag = odrl_obs::LearnDiag::new();
                    // Encode in place (no separate serial pass over the
                    // cores): same arithmetic as `affordability`, with the
                    // decaying power ceiling read from the shared immutable
                    // slice.
                    let encode = |i: usize| {
                        let p_max = max_seen[i];
                        let afford = if p_max > 0.0 {
                            (budgets[i] * scale).value() / p_max
                        } else {
                            f64::INFINITY
                        };
                        encoder.encode(&obs.cores[i], afford)
                    };
                    // Batched-pass variant: also captures the mem bin so
                    // the learn pass can reuse it.
                    #[cfg(feature = "simd")]
                    let encode_mem = |i: usize| {
                        let p_max = max_seen[i];
                        let afford = if p_max > 0.0 {
                            (budgets[i] * scale).value() / p_max
                        } else {
                            f64::INFINITY
                        };
                        encoder.encode_with_mem(&obs.cores[i], afford)
                    };
                    if batched {
                        // Batched decide + learn, fused block by block
                        // (cache tiling: a whole-shard pass walks more
                        // agent rows than L1/L2 hold, so by the time a
                        // later pass returned to an agent its prefetched
                        // row was evicted again; a 64-agent block stays
                        // resident across all four passes). Per block:
                        // (1) encode every state, prefetch its row and
                        // the pending update's target lanes.
                        // (2) Refill the block's ε draws — one `next_u64`
                        // per live core from that core's own stream, so
                        // per-core draw order (ε uniform, then the action
                        // draw only when exploring) matches the
                        // interleaved path exactly. (3) Scan + select
                        // with the ε branch consuming the pre-drawn
                        // value. (4) Learn: price last epoch's transition
                        // and TD-step it while the agent's scale line and
                        // the core's observation are still hot from the
                        // decide passes. Core j's decide completes before
                        // its learn, cores touch only their own tables
                        // and shaper rows, and blocks run in core order,
                        // so trace records and all per-core values are
                        // bit-identical to the split whole-shard passes.
                        //
                        // Per-block timer stamps keep the decide/learn
                        // substage split honest: ~3 clock reads per 64
                        // cores is ~1 ns/core of overhead.
                        //
                        // All the parallel arrays are exactly `len` items
                        // (one-time asserts, so the indexed passes below
                        // run without per-iteration bounds checks).
                        assert!(
                            dec.len() == len
                                && draws.len() == len
                                && boots.len() == len
                                && valid.len() == len
                                && mem_phase.len() == len
                                && rngs.len() == len
                        );
                        const BLOCK: usize = 64;
                        let (mut decide_acc, mut learn_acc) = (0u64, 0u64);
                        // Last epoch's update targets are known before any
                        // pass runs, so their lanes prefetch one block
                        // ahead: block B's pass 2 requests block B+1's
                        // lines, giving them two full passes (~2 µs) to
                        // land before B+1's learn touches them, and
                        // keeping the requests out of the encode pass,
                        // which is already streaming the observations.
                        let prefetch_updates =
                            |agents: &[CoreAgent], from: usize, to: usize| {
                                if let Some(pending) = old_pending {
                                    for k in from..to {
                                        let (ps, pa) = pending[base + k];
                                        agents[k].prefetch_update(ps, pa);
                                    }
                                }
                            };
                        prefetch_updates(agents, 0, BLOCK.min(len));
                        let mut blk = 0usize;
                        while blk < len {
                            let end = (blk + BLOCK).min(len);
                            let t0 = Instant::now();
                            for j in blk..end {
                                #[cfg(feature = "simd")]
                                let (s, mb) = encode_mem(base + j);
                                #[cfg(not(feature = "simd"))]
                                let (s, mb) = (encode(base + j), 0usize);
                                dec[j].0 = s;
                                mem_phase[j] = mb as u16;
                                agents[j].prefetch_select(s);
                            }
                            prefetch_updates(agents, end, (end + BLOCK).min(len));
                            for j in blk..end {
                                if wd.is_some_and(|w| w.is_dead(base + j)) {
                                    continue;
                                }
                                draws[j] = rngs[j].next_u64();
                            }
                            // Pass 3a: one dispatched kernel call scans
                            // the whole block's rows (single-agent
                            // quantized layout only — `quant_row` returns
                            // `None` otherwise and the per-core scans
                            // below take over). Each row's result is
                            // exactly what that core's `decide_prepared`
                            // would have computed, so pass 3b just feeds
                            // it back; dead cores' rows are scanned too
                            // (a pure read) and the result ignored.
                            let mut scans = [(0u16, 0f64); BLOCK];
                            let scanned = {
                                const EMPTY_ROW: &[i16] = &[];
                                let mut rows_buf: [(&[i16], f32); BLOCK] =
                                    [(EMPTY_ROW, 0.0); BLOCK];
                                let m = end - blk;
                                let mut ok = true;
                                for j in blk..end {
                                    match agents[j].quant_row(dec[j].0) {
                                        Some(pair) => rows_buf[j - blk] = pair,
                                        None => {
                                            ok = false;
                                            break;
                                        }
                                    }
                                }
                                if ok {
                                    odrl_rl::kernel::scan_rows(&rows_buf[..m], &mut scans[..m]);
                                }
                                ok
                            };
                            for j in blk..end {
                                let i = base + j;
                                let s_next = dec[j].0;
                                // A dead core takes no decision: pin it
                                // to the floor and taint the recorded
                                // pair so the agent never learns from a
                                // transition it did not choose.
                                if wd.is_some_and(|w| w.is_dead(i)) {
                                    valid[j] = false;
                                    dec[j] = (s_next, 0);
                                    boots[j] = 0.0;
                                    continue;
                                }
                                let (a_next, explored, bootstrap) = if scanned {
                                    let (b, mv) = scans[j - blk];
                                    agents[j].decide_scanned(
                                        config.algorithm,
                                        s_next,
                                        usize::from(b),
                                        mv,
                                        draws[j],
                                        &mut rngs[j],
                                        &mut cache,
                                    )
                                } else {
                                    agents[j].decide_prepared(
                                        config.algorithm,
                                        s_next,
                                        draws[j],
                                        &mut rngs[j],
                                        &mut cache,
                                    )
                                }
                                .expect("encoded state and indices are in range");
                                boots[j] = bootstrap;
                                if diag_on {
                                    diag.decisions += 1;
                                    if explored {
                                        diag.explorations += 1;
                                    }
                                    if diag_rows {
                                        if let Ok(st) = agents[j].row_stats(s_next) {
                                            diag.q_span.record(st.q_span());
                                            diag.visit_span.record(st.visit_spread() as f64);
                                        }
                                    }
                                }
                                if explored {
                                    if let Some(rings) = trace_rings {
                                        rings[base / chunk]
                                            .lock()
                                            .expect("shard ring poisoned")
                                            .record(
                                                epoch,
                                                i as u32,
                                                Event::RlChoice {
                                                    action: a_next as u8,
                                                    explored: true,
                                                },
                                            );
                                    }
                                }
                                dec[j] = (s_next, a_next);
                            }
                            let t1 = Instant::now();
                            decide_acc += t1.duration_since(t0).as_nanos() as u64;
                            if let Some(pending) = old_pending {
                                for j in blk..end {
                                    let agent = &mut agents[j];
                                    let i = base + j;
                                    if !prev_valid[i] || wd.is_some_and(|w| w.is_dead(i)) {
                                        continue;
                                    }
                                    let (s, a) = pending[i];
                                    // The encode sweep above cached this
                                    // epoch's mem bin, saving the two
                                    // divisions `mem_bin` would redo.
                                    let phase = usize::from(mem_phase[j]);
                                    // A stale sensor prices the transition
                                    // with the last good reading against a
                                    // margin-reduced budget: conservative
                                    // while partially blind.
                                    let (power, local_budget) = match wd {
                                        Some(w) if w.is_stale(i) => {
                                            (w.held_power(i), budgets[i] * (scale * w.margin()))
                                        }
                                        _ => (obs.cores[i].power, budgets[i] * scale),
                                    };
                                    let mut r = rows.reward(
                                        j,
                                        phase,
                                        obs.cores[i].ips,
                                        power,
                                        local_budget,
                                    );
                                    if let Some(limit) = config.thermal_limit {
                                        let excess =
                                            (obs.cores[i].temperature.value() - limit).max(0.0);
                                        r -= config.thermal_penalty * excess / 10.0;
                                    }
                                    let td = agent
                                        .learn_prepared(s, a, r, boots[j])
                                        .expect("recorded state and action are in range");
                                    if diag_rows {
                                        diag.td_error.record(td);
                                    } else if diag_on {
                                        diag.td_error.record_extreme(td);
                                    }
                                }
                            }
                            learn_acc += t1.elapsed().as_nanos() as u64;
                            blk = end;
                        }
                        rl_ns[0] = [decide_acc, learn_acc];
                    } else {
                        let t_decide = Instant::now();
                        // Decide pass, software-pipelined one core ahead:
                        // while core j's row is scanned, core j+1's state
                        // is encoded and its Q-row prefetched, hiding the
                        // row's memory latency behind the previous scan.
                        // Per-core RNG streams keep the draws independent
                        // of this order.
                        if len > 0 {
                            dec[0].0 = encode(base);
                            agents[0].prefetch(dec[0].0);
                        }
                        for j in 0..len {
                            if j + 1 < len {
                                let s = encode(base + j + 1);
                                dec[j + 1].0 = s;
                                agents[j + 1].prefetch(s);
                            }
                            let i = base + j;
                            let s_next = dec[j].0;
                            // A dead core takes no decision: pin it to the
                            // floor and taint the recorded pair so the
                            // agent never learns from a transition it did
                            // not choose.
                            if wd.is_some_and(|w| w.is_dead(i)) {
                                valid[j] = false;
                                dec[j] = (s_next, 0);
                                boots[j] = 0.0;
                                continue;
                            }
                            let (a_next, explored, bootstrap) = agents[j]
                                .decide(config.algorithm, s_next, &mut rngs[j], &mut cache)
                                .expect("encoded state and indices are in range");
                            boots[j] = bootstrap;
                            if diag_on {
                                diag.decisions += 1;
                                if explored {
                                    diag.explorations += 1;
                                }
                                if diag_rows {
                                    if let Ok(st) = agents[j].row_stats(s_next) {
                                        diag.q_span.record(st.q_span());
                                        diag.visit_span.record(st.visit_spread() as f64);
                                    }
                                }
                            }
                            if explored {
                                if let Some(rings) = trace_rings {
                                    rings[base / chunk]
                                        .lock()
                                        .expect("shard ring poisoned")
                                        .record(
                                            epoch,
                                            i as u32,
                                            Event::RlChoice {
                                                action: a_next as u8,
                                                explored: true,
                                            },
                                        );
                                }
                            }
                            dec[j] = (s_next, a_next);
                        }
                        let decide_ns = t_decide.elapsed().as_nanos() as u64;
                        // Learn pass: price last epoch's transition and
                        // apply the TD update with the bootstrap the decide
                        // pass read from the pre-update table — exactly
                        // what the fused select+update computed, so
                        // splitting the passes is bit-identical. The reward
                        // draws no randomness and each core touches only
                        // its own shaper row, so the reordering changes
                        // nothing else.
                        let t_learn = Instant::now();
                        if let Some(pending) = old_pending {
                            for (j, agent) in agents.iter_mut().enumerate() {
                                let i = base + j;
                                if !prev_valid[i] || wd.is_some_and(|w| w.is_dead(i)) {
                                    continue;
                                }
                                let (s, a) = pending[i];
                                let phase = encoder.mem_bin(&obs.cores[i]);
                                // A stale sensor prices the transition with
                                // the last good reading against a
                                // margin-reduced budget: conservative while
                                // partially blind.
                                let (power, local_budget) = match wd {
                                    Some(w) if w.is_stale(i) => {
                                        (w.held_power(i), budgets[i] * (scale * w.margin()))
                                    }
                                    _ => (obs.cores[i].power, budgets[i] * scale),
                                };
                                let mut r = rows.reward(
                                    j,
                                    phase,
                                    obs.cores[i].ips,
                                    power,
                                    local_budget,
                                );
                                if let Some(limit) = config.thermal_limit {
                                    let excess =
                                        (obs.cores[i].temperature.value() - limit).max(0.0);
                                    r -= config.thermal_penalty * excess / 10.0;
                                }
                                let td = agent
                                    .learn(s, a, r, boots[j])
                                    .expect("recorded state and action are in range");
                                if diag_rows {
                                    diag.td_error.record(td);
                                } else if diag_on {
                                    diag.td_error.record_extreme(td);
                                }
                            }
                        }
                        rl_ns[0] = [decide_ns, t_learn.elapsed().as_nanos() as u64];
                    }
                    if let Some(ds) = diag_shards {
                        ds[base / chunk]
                            .lock()
                            .expect("shard diag poisoned")
                            .merge(&diag);
                    }
                },
            );
            chunk
        };
        // Fold the per-shard stamps: shards ran concurrently, so each
        // half's wall-clock contribution is the widest shard.
        let (mut decide_ns, mut learn_ns) = (0u64, 0u64);
        let mut b = 0;
        while b < n {
            decide_ns = decide_ns.max(self.rl_ns[b][0]);
            learn_ns = learn_ns.max(self.rl_ns[b][1]);
            b += chunk;
        }
        self.timers.add_nanos(Stage::RlDecide, decide_ns);
        self.timers.add_nanos(Stage::RlLearn, learn_ns);
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record_rl_split(decide_ns, learn_ns);
        }
        for (slot, &(_, a)) in out.iter_mut().zip(decisions.iter()) {
            *slot = LevelId(a);
        }
        self.spare = old_pending.unwrap_or_default();
        self.pending = Some(decisions);
        self.timers.record(Stage::Rl, t_rl);
        // Serial diagnostics epilogue. The quantized-health scan walks
        // every agent's table, so it is period-gated; the channel tap
        // hands the tracer the lifetime delivery counters (the tracer
        // differences them into a per-epoch loss rate).
        if let Some(tr) = self.tracer.as_deref_mut() {
            if tr.diag_enabled() {
                if epoch.is_multiple_of(tr.diag_period()) {
                    let (mut doublings, mut saturated, mut lanes) = (0u64, 0u64, 0u64);
                    for agent in &self.agents[..n] {
                        if let Some(h) = agent.quant_health() {
                            doublings += h.doublings;
                            saturated += h.saturated;
                            lanes += h.lanes;
                        }
                    }
                    tr.record_quant_health(doublings, saturated, lanes);
                }
                if let Some(ch) = &self.channel {
                    tr.record_channel(ch.messages_sent(), ch.messages_delivered());
                }
            }
        }
        if let (Some(tr), Some(t0)) = (self.tracer.as_deref_mut(), t0) {
            tr.end_epoch(epoch, t0);
        }
        self.timers.bump_epoch();
        self.epochs += 1;
    }

    fn event_counts(&self) -> Option<EventCounts> {
        self.tracer.as_deref().map(CtrlTracer::counts)
    }

    fn extend_trace_into(&self, out: &mut Vec<EventRecord>) {
        OdRlController::extend_trace_into(self, out);
    }

    fn metrics_snapshot(&self) -> Option<&odrl_obs::MetricsSnapshot> {
        self.tracer.as_deref().map(CtrlTracer::last_snapshot)
    }

    fn learn_diag(&self) -> Option<&odrl_obs::LearnDiag> {
        self.tracer.as_deref().and_then(CtrlTracer::last_diag)
    }
}

/// An exported set of learned per-core policies (see
/// [`OdRlController::export_policy`]). Opaque but serializable, so it can
/// be written to disk and imported into a compatible controller later.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicySnapshot {
    states: usize,
    actions: usize,
    agents: Vec<CoreAgent>,
}

impl PolicySnapshot {
    /// Number of per-core agents in the snapshot.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// State-space size each agent's table was built for.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Action-space size each agent's table was built for.
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// Encodes the snapshot in the versioned binary format (see
    /// `odrl_rl::snapshot`): the common header with kind
    /// [`KIND_POLICY_SET`], the table dimensions and agent count, then
    /// one kind-tagged agent block per core. Floats travel as raw bits,
    /// so a decode-encode round trip is bit-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = rl_snapshot::header(KIND_POLICY_SET);
        rl_snapshot::put_u64(&mut out, self.states as u64);
        rl_snapshot::put_u64(&mut out, self.actions as u64);
        rl_snapshot::put_u64(&mut out, self.agents.len() as u64);
        for agent in &self.agents {
            match agent {
                CoreAgent::Single(a) => {
                    rl_snapshot::put_u64(&mut out, u64::from(KIND_AGENT));
                    a.encode_block(&mut out);
                }
                CoreAgent::Double(a) => {
                    rl_snapshot::put_u64(&mut out, u64::from(KIND_DOUBLE_AGENT));
                    a.encode_block(&mut out);
                }
            }
        }
        out
    }

    /// Decodes a snapshot produced by [`PolicySnapshot::to_bytes`],
    /// validating the magic, version, kind, every agent block and that
    /// each agent's table matches the header dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::Snapshot`] for any malformed, truncated or
    /// mismatched input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RlError> {
        let mut cur = rl_snapshot::check_header(bytes, KIND_POLICY_SET)?;
        let states = cur.take_len()?;
        let actions = cur.take_len()?;
        let count = cur.take_len()?;
        let mut agents = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let kind = cur.take_u64()?;
            let agent = if kind == u64::from(KIND_AGENT) {
                CoreAgent::Single(Agent::decode_block(&mut cur)?)
            } else if kind == u64::from(KIND_DOUBLE_AGENT) {
                CoreAgent::Double(DoubleAgent::decode_block(&mut cur)?)
            } else {
                return Err(RlError::Snapshot {
                    reason: "unknown agent kind in policy set",
                });
            };
            if agent.dims() != (states, actions) {
                return Err(RlError::Snapshot {
                    reason: "agent dimensions disagree with the policy-set header",
                });
            }
            agents.push(agent);
        }
        cur.finish()?;
        Ok(Self {
            states,
            actions,
            agents,
        })
    }

    /// Writes the binary snapshot to `path` — the on-disk warm-start
    /// artifact [`crate::OdRlController::import_policy`] boots from after
    /// a [`PolicySnapshot::load`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the file cannot be written.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()).map_err(SnapshotError::Io)
    }

    /// Reads a binary snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the file cannot be read, or
    /// [`SnapshotError::Format`] if its contents do not decode.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Ok(Self::from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_manycore::{System, SystemConfig};
    use odrl_workload::MixPolicy;

    fn run(
        cores: usize,
        budget_frac: f64,
        epochs: u64,
        seed: u64,
    ) -> (System, OdRlController, Watts) {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(seed)
            .build()
            .unwrap();
        let budget = Watts::new(budget_frac * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                seed,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        for _ in 0..epochs {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            system.step(&actions).unwrap();
        }
        (system, ctrl, budget)
    }

    #[test]
    fn tracer_absent_by_default_and_event_counts_none() {
        let (_, ctrl, _) = run(8, 0.6, 20, 9);
        assert!(ctrl.tracer().is_none());
        assert!(ctrl.event_counts().is_none());
        let mut recs = Vec::new();
        ctrl.extend_trace_into(&mut recs);
        assert!(recs.is_empty());
    }

    #[test]
    fn tracer_records_and_merged_trace_is_shard_count_invariant() {
        use odrl_manycore::Parallelism;
        use odrl_obs::{merge_records, ObsConfig};

        let mut traces = Vec::new();
        let mut counts = Vec::new();
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let sys_config = SystemConfig::builder().cores(16).seed(11).build().unwrap();
            let budget = Watts::new(0.5 * sys_config.max_power().value());
            let mut system = System::new(sys_config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    seed: 11,
                    parallelism: par,
                    obs: ObsConfig {
                        enabled: true,
                        ..ObsConfig::default()
                    },
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            let mut out = vec![LevelId(0); 16];
            for _ in 0..150 {
                let obs = system.observation(budget);
                ctrl.decide_into(&obs, &mut out);
                system.step(&out).unwrap();
            }
            let c = ctrl.event_counts().expect("tracer enabled");
            assert!(c.explorations > 0, "epsilon floor guarantees exploration");
            assert!(c.reallocations > 0, "realloc every 10 epochs");
            counts.push(c);
            let mut recs = Vec::new();
            ctrl.extend_trace_into(&mut recs);
            merge_records(&mut recs);
            traces.push(recs);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(traces[0], traces[1], "merged trace must not depend on shard count");
    }

    #[test]
    fn actions_are_always_valid() {
        let config = SystemConfig::builder().cores(8).seed(3).build().unwrap();
        let budget = Watts::new(0.5 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
        for _ in 0..100 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            assert_eq!(actions.len(), 8);
            assert!(actions.iter().all(|a| a.index() < 8));
            system.step(&actions).unwrap();
        }
    }

    #[test]
    fn learns_to_respect_the_budget() {
        let (system, _, budget) = run(16, 0.5, 600, 1);
        // Average power over the last quarter of the run must be near or
        // under the budget — the learned policy caps power.
        let total_energy = system.telemetry().total_energy().value();
        let avg_power = total_energy / system.telemetry().elapsed().value();
        assert!(
            avg_power < budget.value() * 1.10,
            "avg power {avg_power} vs budget {}",
            budget.value()
        );
    }

    #[test]
    fn budgets_sum_to_chip_budget() {
        let (_, ctrl, budget) = run(16, 0.6, 100, 2);
        let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
        assert!(
            (sum - budget.value()).abs() < 1e-6 * budget.value(),
            "budgets sum {sum} vs {budget}"
        );
    }

    #[test]
    fn coverage_grows_with_experience() {
        let (_, ctrl_short, _) = run(8, 0.6, 20, 3);
        let (_, ctrl_long, _) = run(8, 0.6, 400, 3);
        assert!(ctrl_long.coverage() > ctrl_short.coverage());
        assert!(ctrl_long.coverage() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (sys_a, _, _) = run(8, 0.6, 100, 42);
        let (sys_b, _, _) = run(8, 0.6, 100, 42);
        assert_eq!(
            sys_a.telemetry().total_instructions(),
            sys_b.telemetry().total_instructions()
        );
        assert_eq!(
            sys_a.telemetry().total_energy(),
            sys_b.telemetry().total_energy()
        );
    }

    #[test]
    fn parallel_decide_is_bit_identical_to_serial() {
        use odrl_manycore::Parallelism;
        let run = |par: Parallelism| {
            let config = SystemConfig::builder()
                .cores(16)
                .seed(13)
                .parallelism(par)
                .build()
                .unwrap();
            let budget = Watts::new(0.55 * config.max_power().value());
            let mut system = System::new(config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    parallelism: par,
                    seed: 13,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            let mut all_actions = Vec::new();
            for _ in 0..120 {
                let obs = system.observation(budget);
                let actions = ctrl.decide(&obs);
                all_actions.push(actions.clone());
                system.step(&actions).unwrap();
            }
            (all_actions, ctrl.export_policy(), system)
        };
        let (serial_actions, serial_policy, serial_sys) = run(Parallelism::Serial);
        for threads in [1, 2, 4, 8] {
            let (actions, policy, sys) = run(Parallelism::Threads(threads));
            assert_eq!(actions, serial_actions, "{threads} threads");
            assert_eq!(policy, serial_policy, "{threads} threads");
            assert_eq!(
                sys.telemetry().total_instructions(),
                serial_sys.telemetry().total_instructions()
            );
            assert_eq!(
                sys.telemetry().total_energy(),
                serial_sys.telemetry().total_energy()
            );
        }
    }

    #[test]
    fn tracks_budget_steps() {
        let config = SystemConfig::builder().cores(8).seed(5).build().unwrap();
        let max = config.max_power();
        let mut system = System::new(config).unwrap();
        let mut ctrl =
            OdRlController::new(OdRlConfig::default(), &system.spec(), max * 0.8).unwrap();
        for _ in 0..50 {
            let obs = system.observation(max * 0.8);
            let a = ctrl.decide(&obs);
            system.step(&a).unwrap();
        }
        // Halve the budget: the controller's internal allocation follows.
        let new_budget = max * 0.4;
        let obs = system.observation(new_budget);
        ctrl.decide(&obs);
        let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
        assert!((sum - new_budget.value()).abs() < 1e-6 * new_budget.value());
    }

    #[test]
    fn without_reallocation_keeps_fair_split() {
        let config = SystemConfig::builder()
            .cores(8)
            .mix(MixPolicy::RoundRobin)
            .seed(6)
            .build()
            .unwrap();
        let budget = Watts::new(0.5 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl =
            OdRlController::without_reallocation(OdRlConfig::default(), &system.spec(), budget)
                .unwrap();
        assert_eq!(ctrl.name(), "od-rl-local");
        for _ in 0..60 {
            let obs = system.observation(budget);
            let a = ctrl.decide(&obs);
            system.step(&a).unwrap();
        }
        let fair = budget.value() / 8.0;
        for b in ctrl.budgets() {
            assert!((b.value() - fair).abs() < 1e-9, "shares drifted: {b}");
        }
    }

    #[test]
    fn reallocation_diverges_budgets_on_heterogeneous_load() {
        let (_, ctrl, budget) = run(12, 0.6, 400, 7);
        let fair = budget.value() / 12.0;
        let max_dev = ctrl
            .budgets()
            .iter()
            .map(|b| (b.value() - fair).abs() / fair)
            .fold(0.0, f64::max);
        assert!(
            max_dev > 0.05,
            "heterogeneous mix should move budgets, max dev {max_dev}"
        );
    }

    #[test]
    fn thermal_limit_reduces_peak_temperature() {
        // Uncapped power budget, aggressive thermal limit: the thermally
        // aware controller must run measurably cooler than the plain one.
        let run = |limit: Option<f64>| {
            let config = SystemConfig::builder().cores(16).seed(9).build().unwrap();
            let budget = config.max_power(); // power cap never binds
            let mut system = System::new(config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    thermal_limit: limit,
                    thermal_penalty: 5.0,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            for _ in 0..600 {
                let obs = system.observation(budget);
                let actions = ctrl.decide(&obs);
                system.step(&actions).unwrap();
            }
            system.telemetry().peak_temperature().value()
        };
        let hot = run(None);
        let cool = run(Some(60.0));
        assert!(
            cool < hot - 1.0,
            "thermal limit should cool the die: {cool} vs {hot}"
        );
    }

    #[test]
    fn every_algorithm_variant_runs() {
        use odrl_rl::Algorithm;
        for algorithm in [
            Algorithm::QLearning,
            Algorithm::Sarsa,
            Algorithm::DoubleQLearning,
        ] {
            let config = SystemConfig::builder().cores(8).seed(4).build().unwrap();
            let budget = Watts::new(0.6 * config.max_power().value());
            let mut system = System::new(config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    algorithm,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            for _ in 0..100 {
                let obs = system.observation(budget);
                let actions = ctrl.decide(&obs);
                system.step(&actions).unwrap();
            }
            assert!(
                system.telemetry().total_instructions() > 0.0,
                "{algorithm:?}"
            );
            assert!(ctrl.coverage() > 0.0, "{algorithm:?}");
        }
    }

    #[test]
    fn warm_start_transfers_learning() {
        let mk = || {
            let config = SystemConfig::builder().cores(12).seed(45).build().unwrap();
            let budget = Watts::new(0.55 * config.max_power().value());
            let system = System::new(config).unwrap();
            let ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
            (system, ctrl, budget)
        };
        // Train a controller for 800 epochs and export its policy.
        let (mut system, mut trained, budget) = mk();
        for _ in 0..800 {
            let obs = system.observation(budget);
            let a = trained.decide(&obs);
            system.step(&a).unwrap();
        }
        let snapshot = trained.export_policy();
        assert_eq!(snapshot.num_agents(), 12);

        // Cold vs warm on a fresh system: compare the first 150 epochs.
        let early = |warm: bool| {
            let (mut system, mut ctrl, budget) = mk();
            if warm {
                ctrl.import_policy(snapshot.clone()).unwrap();
            }
            let mut instr = 0.0;
            for _ in 0..150 {
                let obs = system.observation(budget);
                let a = ctrl.decide(&obs);
                let r = system.step(&a).unwrap();
                instr += r.total_instructions();
            }
            instr
        };
        let cold = early(false);
        let warm = early(true);
        assert!(
            warm > cold * 1.02,
            "warm start should beat cold start early: {warm} vs {cold}"
        );
    }

    #[test]
    fn import_rejects_mismatched_snapshots() {
        let config = SystemConfig::builder().cores(8).seed(1).build().unwrap();
        let budget = Watts::new(20.0);
        let spec = config.spec();
        let ctrl = OdRlController::new(OdRlConfig::default(), &spec, budget).unwrap();
        let snapshot = ctrl.export_policy();

        // Different core count.
        let mut small_spec = spec.clone();
        small_spec.cores = 4;
        let mut other = OdRlController::new(OdRlConfig::default(), &small_spec, budget).unwrap();
        assert!(other.import_policy(snapshot.clone()).is_err());

        // Different state space (more bins).
        let mut other = OdRlController::new(
            OdRlConfig {
                power_bins: 16,
                ..OdRlConfig::default()
            },
            &spec,
            budget,
        )
        .unwrap();
        assert!(other.import_policy(snapshot).is_err());
    }

    #[test]
    fn degradation_survives_core_unplug() {
        use crate::watchdog::WatchdogConfig;
        use odrl_faults::{CoreFault, FaultKind, FaultPlan, Target};
        let plan = FaultPlan::new().with_event(
            FaultKind::Core(CoreFault::Unplug),
            Target::Core(2),
            50,
            100,
        );
        let config = SystemConfig::builder().cores(8).seed(11).build().unwrap();
        let budget = Watts::new(0.6 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        system.attach_faults(&plan).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                watchdog: WatchdogConfig::enabled(),
                seed: 11,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        ctrl.attach_budget_faults(system.fault_engine().unwrap())
            .unwrap();
        let mut saw_dead = false;
        for _ in 0..250 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            if ctrl.watchdog().unwrap().is_dead(2) {
                saw_dead = true;
                // The dead core's share has been handed to the survivors.
                assert_eq!(ctrl.budgets()[2], Watts::ZERO);
                let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
                assert!(sum > 0.0);
            }
            system.step(&actions).unwrap();
        }
        assert!(saw_dead, "watchdog never flagged the unplugged core");
        // The outage ended at epoch 150: the core has rejoined by now.
        assert!(!ctrl.watchdog().unwrap().is_dead(2));
        assert!(system.telemetry().total_instructions() > 0.0);
    }

    #[test]
    fn dark_chip_telemetry_pins_the_floor() {
        use crate::watchdog::WatchdogConfig;
        use odrl_faults::{FaultKind, FaultPlan, SensorFault, Target};
        let plan = FaultPlan::new().with_event(
            FaultKind::Sensor(SensorFault::StuckZero),
            Target::Chip,
            60,
            40,
        );
        let config = SystemConfig::builder().cores(8).seed(21).build().unwrap();
        let budget = Watts::new(0.6 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        system.attach_faults(&plan).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                watchdog: WatchdogConfig::enabled(),
                seed: 21,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        let mut dark_epochs = 0;
        for _ in 0..150 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            if ctrl.watchdog().unwrap().chip_dark() {
                dark_epochs += 1;
                assert!(
                    actions.iter().all(|&a| a == LevelId(0)),
                    "blind controller must pin the floor"
                );
            }
            system.step(&actions).unwrap();
        }
        assert!(dark_epochs > 10, "dark window never detected");
        // The meter healed at epoch 100; the controller runs freely again.
        assert!(!ctrl.watchdog().unwrap().chip_dark());
    }

    #[test]
    fn lost_budget_messages_keep_old_shares() {
        use odrl_faults::{BudgetFault, FaultEngine, FaultKind, FaultPlan, Target};
        let plan = FaultPlan::new().with_event(
            FaultKind::Budget(BudgetFault::Lost),
            Target::All,
            0,
            10_000,
        );
        let engine = FaultEngine::compile(&plan, 8, 1).unwrap();
        let config = SystemConfig::builder().cores(8).seed(31).build().unwrap();
        let budget = Watts::new(0.6 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl =
            OdRlController::new(OdRlConfig::default(), &system.spec(), budget).unwrap();
        ctrl.attach_budget_faults(&engine).unwrap();
        for _ in 0..100 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            system.step(&actions).unwrap();
        }
        // Every reallocation message was lost: agents still hold the
        // initial fair split.
        let fair = budget.value() / 8.0;
        for b in ctrl.budgets() {
            assert!((b.value() - fair).abs() < 1e-9, "share drifted: {b}");
        }
    }

    #[test]
    fn attach_budget_faults_rejects_core_mismatch() {
        use odrl_faults::{FaultEngine, FaultPlan};
        let engine = FaultEngine::compile(&FaultPlan::new(), 4, 0).unwrap();
        let spec = SystemConfig::builder().cores(8).build().unwrap().spec();
        let mut ctrl =
            OdRlController::new(OdRlConfig::default(), &spec, Watts::new(10.0)).unwrap();
        assert!(ctrl.attach_budget_faults(&engine).is_err());
    }

    #[test]
    fn market_arm_trades_and_conserves_every_round() {
        use odrl_market::MarketConfig;
        let config = SystemConfig::builder().cores(16).seed(17).build().unwrap();
        let budget = Watts::new(0.55 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                market: MarketConfig::enabled(),
                seed: 17,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        assert_eq!(ctrl.name(), "od-rl-market");
        let mut traded = 0u64;
        for _ in 0..200 {
            let obs = system.observation(budget);
            let actions = ctrl.decide(&obs);
            if let Some(r) = ctrl.market_round() {
                assert_eq!(r.conservation_error(), 0.0, "conservation must be bit-exact");
                if r.moved() {
                    traded += 1;
                    let sum: f64 = ctrl.budgets().iter().map(|w| w.value()).sum();
                    assert!(
                        (sum - budget.value()).abs() < 1e-9 * budget.value(),
                        "market must conserve the chip budget: {sum} vs {budget}"
                    );
                }
            }
            system.step(&actions).unwrap();
        }
        let market = ctrl.market().expect("market arm is on");
        assert_eq!(market.rounds(), 199, "one round per epoch after epoch 0");
        assert!(traded > 0, "a heterogeneous mix must trade at least once");
        assert!(market.pool().total_granted() > 0.0);
    }

    #[test]
    fn market_off_is_bit_identical_to_the_baseline() {
        // The knob defaults off; this pins that an explicit `false`
        // (and the market code being present at all) changes nothing.
        let run_with = |enabled: bool| {
            let config = SystemConfig::builder().cores(12).seed(23).build().unwrap();
            let budget = Watts::new(0.6 * config.max_power().value());
            let mut system = System::new(config).unwrap();
            let market = odrl_market::MarketConfig {
                enabled,
                ..odrl_market::MarketConfig::default()
            };
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    market,
                    seed: 23,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            for _ in 0..150 {
                let obs = system.observation(budget);
                let a = ctrl.decide(&obs);
                system.step(&a).unwrap();
            }
            (
                system.telemetry().total_instructions(),
                system.telemetry().total_energy(),
                ctrl.export_policy(),
            )
        };
        let (instr_off, energy_off, policy_off) = run_with(false);
        // Baseline controller without the field set at all.
        let (instr_base, energy_base, policy_base) = {
            let config = SystemConfig::builder().cores(12).seed(23).build().unwrap();
            let budget = Watts::new(0.6 * config.max_power().value());
            let mut system = System::new(config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    seed: 23,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            for _ in 0..150 {
                let obs = system.observation(budget);
                let a = ctrl.decide(&obs);
                system.step(&a).unwrap();
            }
            (
                system.telemetry().total_instructions(),
                system.telemetry().total_energy(),
                ctrl.export_policy(),
            )
        };
        assert_eq!(instr_off, instr_base);
        assert_eq!(energy_off, energy_base);
        assert_eq!(policy_off, policy_base);
    }

    #[test]
    fn market_is_shard_count_invariant() {
        use odrl_manycore::Parallelism;
        use odrl_market::MarketConfig;
        let run = |par: Parallelism| {
            let config = SystemConfig::builder()
                .cores(16)
                .seed(29)
                .parallelism(par)
                .build()
                .unwrap();
            let budget = Watts::new(0.55 * config.max_power().value());
            let mut system = System::new(config).unwrap();
            let mut ctrl = OdRlController::new(
                OdRlConfig {
                    market: MarketConfig::enabled(),
                    parallelism: par,
                    seed: 29,
                    ..OdRlConfig::default()
                },
                &system.spec(),
                budget,
            )
            .unwrap();
            let mut rounds = Vec::new();
            for _ in 0..120 {
                let obs = system.observation(budget);
                let a = ctrl.decide(&obs);
                system.step(&a).unwrap();
                if let Some(r) = ctrl.market_round() {
                    rounds.push(*r);
                }
            }
            let budgets: Vec<f64> = ctrl.budgets().iter().map(|w| w.value()).collect();
            (rounds, budgets, system.telemetry().total_instructions())
        };
        let serial = run(Parallelism::Serial);
        for threads in [2, 4, 8] {
            assert_eq!(run(Parallelism::Threads(threads)), serial, "{threads} shards");
        }
    }

    #[test]
    fn market_rides_the_lossy_budget_channel() {
        use odrl_faults::{BudgetFault, FaultEngine, FaultKind, FaultPlan, Target};
        use odrl_market::MarketConfig;
        let plan = FaultPlan::new().with_event(
            FaultKind::Budget(BudgetFault::Lost),
            Target::All,
            0,
            10_000,
        );
        let engine = FaultEngine::compile(&plan, 8, 7).unwrap();
        let config = SystemConfig::builder().cores(8).seed(37).build().unwrap();
        let budget = Watts::new(0.6 * config.max_power().value());
        let mut system = System::new(config).unwrap();
        let mut ctrl = OdRlController::new(
            OdRlConfig {
                market: MarketConfig::enabled(),
                seed: 37,
                ..OdRlConfig::default()
            },
            &system.spec(),
            budget,
        )
        .unwrap();
        ctrl.attach_budget_faults(&engine).unwrap();
        for _ in 0..100 {
            let obs = system.observation(budget);
            let a = ctrl.decide(&obs);
            system.step(&a).unwrap();
        }
        // Market grants were issued (the economy ran) but every share
        // message — reallocation and market alike — was lost in flight,
        // so the agents still hold the initial fair split.
        assert!(ctrl.market().unwrap().pool().total_donated() > 0.0);
        let fair = budget.value() / 8.0;
        for b in ctrl.budgets() {
            assert!((b.value() - fair).abs() < 1e-9, "share drifted: {b}");
        }
    }

    #[test]
    fn local_ablation_ignores_the_market_knob() {
        use odrl_market::MarketConfig;
        let spec = SystemConfig::builder().cores(4).build().unwrap().spec();
        let ctrl = OdRlController::without_reallocation(
            OdRlConfig {
                market: MarketConfig::enabled(),
                ..OdRlConfig::default()
            },
            &spec,
            Watts::new(10.0),
        )
        .unwrap();
        assert!(ctrl.market().is_none());
        assert_eq!(ctrl.name(), "od-rl-local");
    }

    #[test]
    fn rejects_empty_spec() {
        let spec = SystemConfig::builder().cores(4).build().unwrap().spec();
        let mut empty = spec.clone();
        empty.cores = 0;
        assert!(matches!(
            OdRlController::new(OdRlConfig::default(), &empty, Watts::new(10.0)),
            Err(OdRlError::EmptySpec)
        ));
    }
}
