//! The epoch-based many-core system simulator.

use crate::config::{SystemConfig, SystemSpec};
use crate::error::SystemError;
use crate::obs::SysTracer;
use crate::parallel::{shard_chunks, stream_seed};
use crate::profile::{Stage, StageTimers};
use crate::report::{CoreEpoch, CoreObservation, EpochReport, Observation};
use crate::soa::{CoreArrays, EpochScratch};
use crate::telemetry::Telemetry;
use odrl_faults::{FaultEngine, FaultPlan, FaultState};
use odrl_noc::NocModel;
use odrl_power::{Joules, LevelId, PowerBreakdown, PowerCoefficients, Seconds, Watts};
use std::time::Instant;
use odrl_thermal::{Floorplan, ThermalGrid};
use odrl_workload::{PhaseParams, WorkloadMix, WorkloadStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simulated many-core chip with per-core DVFS domains.
///
/// Each call to [`System::step`] advances one control epoch: the supplied
/// per-core VF levels are applied, every core executes its current workload
/// phase under the analytical performance model, power is computed from the
/// V/f point, activity and die temperature, the RC thermal grid integrates
/// the new power map, and an [`EpochReport`] is returned.
///
/// Controllers interact with the system purely through
/// [`System::observation`] (sensor data) and the level vector they pass to
/// `step` — the same interface real power-management firmware has.
///
/// ```
/// use odrl_manycore::{System, SystemConfig};
/// use odrl_power::LevelId;
///
/// let config = SystemConfig::builder().cores(4).seed(3).build()?;
/// let mut system = System::new(config)?;
/// let top = system.spec().vf_table.max_level();
/// let report = system.step(&vec![top; 4])?;
/// assert_eq!(report.cores.len(), 4);
/// assert!(report.total_power.value() > 0.0);
/// # Ok::<(), odrl_manycore::SystemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct System {
    config: SystemConfig,
    spec: SystemSpec,
    streams: Vec<WorkloadStream>,
    grid: ThermalGrid,
    /// Per-core state in struct-of-arrays layout (see [`CoreArrays`]).
    arrays: CoreArrays,
    /// Per-VF-level power coefficient tables (built once from the config's
    /// power model and VF table; the batch power pass gathers from them).
    coeffs: PowerCoefficients,
    /// Reusable per-epoch intermediates; created once, reused every epoch.
    scratch: EpochScratch,
    epoch: u64,
    /// The chip-level power sensor's stream (the whole-chip measurement).
    chip_sensor_rng: StdRng,
    /// The chip sensor's banked Box–Muller half (`NaN` = empty).
    chip_gauss_spare: f64,
    /// The last epoch's report, mutated in place every epoch after the
    /// first so the steady-state kernel never allocates.
    last_report: Option<EpochReport>,
    /// NoC model (its per-core latency output lives in `arrays`).
    noc: Option<NocModel>,
    /// Compiled fault schedule, when a plan is attached (its per-epoch
    /// scratch lives in `scratch.faults`).
    faults: Option<FaultEngine>,
    /// System-side flight recorder, present only when
    /// `SystemConfig::obs.enabled` is set.
    tracer: Option<Box<SysTracer>>,
    telemetry: Telemetry,
}

impl System {
    /// Builds a system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] or substrate errors if the
    /// configuration is inconsistent.
    pub fn new(config: SystemConfig) -> Result<Self, SystemError> {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// Builds a system that records the full per-epoch telemetry series.
    ///
    /// # Errors
    ///
    /// As [`System::new`].
    pub fn new_recording(config: SystemConfig) -> Result<Self, SystemError> {
        Self::with_telemetry(config, Telemetry::with_series())
    }

    /// Builds a system that records every `every_n`-th epoch into the
    /// telemetry series (aggregates stay exact — see
    /// [`Telemetry::with_series_decimated`]), bounding series memory for
    /// long-horizon runs.
    ///
    /// # Errors
    ///
    /// As [`System::new`].
    pub fn new_recording_decimated(
        config: SystemConfig,
        every_n: u64,
    ) -> Result<Self, SystemError> {
        Self::with_telemetry(config, Telemetry::with_series_decimated(every_n))
    }

    fn with_telemetry(config: SystemConfig, telemetry: Telemetry) -> Result<Self, SystemError> {
        config.validate()?;
        let mix = WorkloadMix::from_suite(config.cores, config.mix.clone(), config.seed)?;
        let streams = mix.streams();
        let floorplan = Floorplan::squarish(config.cores)?;
        let grid = ThermalGrid::new(floorplan, config.thermal)?;
        let spec = config.spec();
        let n = config.cores;
        let sensor_seed = config.seed ^ 0xD1CE_5EED;
        let chip_sensor_rng = StdRng::seed_from_u64(stream_seed(sensor_seed, n as u64));
        let noc = config
            .noc
            .clone()
            .map(NocModel::new)
            .transpose()
            .map_err(|e| SystemError::InvalidConfig {
                field: "noc",
                reason: e.to_string(),
            })?;
        let mem_latency = match &noc {
            Some(model) => model.latencies(&vec![0.0; n]),
            None => vec![config.perf.mem_latency_ns; n],
        };
        let arrays = CoreArrays {
            levels: vec![LevelId(0); n],
            instructions: vec![0.0; n],
            dynamic: vec![Watts::ZERO; n],
            leakage: vec![Watts::ZERO; n],
            temperature: grid.temperatures().to_vec(),
            sensor_rngs: (0..n)
                .map(|i| StdRng::seed_from_u64(stream_seed(sensor_seed, i as u64)))
                .collect(),
            gauss_spare: vec![f64::NAN; n],
            measured: vec![Watts::ZERO; n],
            variation: config.variation.sample(n, config.seed),
            mem_latency,
        };
        let scratch = EpochScratch::new(&config, &streams);
        let coeffs = config.power.coefficients(&config.vf_table);
        let tracer = config
            .obs
            .enabled
            .then(|| Box::new(SysTracer::new(&config.obs, n)));
        Ok(Self {
            config,
            spec,
            streams,
            grid,
            arrays,
            coeffs,
            scratch,
            epoch: 0,
            chip_sensor_rng,
            chip_gauss_spare: f64::NAN,
            last_report: None,
            noc,
            faults: None,
            tracer,
            telemetry,
        })
    }

    /// Compiles and attaches a fault plan: from the next epoch on, the
    /// plan's sensor/actuator/core faults are injected into the epoch
    /// pipeline (budget-channel faults live on the controller side — see
    /// `odrl-faults`). The schedule is seeded from the system seed, so the
    /// same config + plan always reproduces the same faulted run, and an
    /// **empty plan is bit-identical to no plan at all**. Replaces any
    /// previously attached plan.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the plan does not compile
    /// for this core count.
    pub fn attach_faults(&mut self, plan: &FaultPlan) -> Result<(), SystemError> {
        self.attach_faults_for_chip(plan, 0)
    }

    /// Like [`System::attach_faults`], but compiles the plan as fleet chip
    /// `chip`: plan entries scoped (via `odrl_faults::ChipScope`) to a
    /// different chip are validated but not scheduled, so a plan written
    /// for chip 0 can be attached to every chip of a fleet without its
    /// chip-local core indices corrupting the others. A standalone system
    /// is chip 0 ([`System::attach_faults`] delegates here with that
    /// index).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the plan does not compile
    /// for this core count (entries scoped to other chips included — an
    /// invalid plan is rejected on every chip).
    pub fn attach_faults_for_chip(&mut self, plan: &FaultPlan, chip: u32) -> Result<(), SystemError> {
        let engine = FaultEngine::compile_for_chip(plan, chip, self.config.cores, self.fault_seed())
            .map_err(|e| SystemError::InvalidConfig {
                field: "faults",
                reason: e.to_string(),
            })?;
        self.scratch.faults = Some(engine.state());
        self.faults = Some(engine);
        Ok(())
    }

    /// The seed fault schedules derive from (shared with
    /// [`System::attach_faults`], so a controller-side
    /// `odrl_faults::BudgetChannel` compiled from the same plan and seed
    /// sees the same schedule).
    pub fn fault_seed(&self) -> u64 {
        self.config.seed ^ 0xFA17_FA17_FA17_FA17
    }

    /// The attached fault schedule, if any.
    pub fn fault_engine(&self) -> Option<&FaultEngine> {
        self.faults.as_ref()
    }

    /// The per-epoch fault flags of the last executed epoch (liveness
    /// mask, active sensor/actuator faults, effective levels), if a plan
    /// is attached.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.scratch.faults.as_ref()
    }

    /// The static system description (core count, VF table, models, epoch).
    pub fn spec(&self) -> SystemSpec {
        self.spec.clone()
    }

    /// The full configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.cores
    }

    /// Index of the next epoch to execute.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The VF levels currently applied.
    pub fn levels(&self) -> &[LevelId] {
        &self.arrays.levels
    }

    /// The per-core state in struct-of-arrays layout.
    pub fn arrays(&self) -> &CoreArrays {
        &self.arrays
    }

    /// Accumulated run telemetry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The system-side tracer, when `SystemConfig::obs` is enabled.
    pub fn tracer(&self) -> Option<&SysTracer> {
        self.tracer.as_deref()
    }

    /// Appends the system-side trace records (oldest → newest) onto
    /// `out`; a no-op when tracing is disabled. Merge with the
    /// controller's records via `odrl_obs::merge_records` for the
    /// canonical stream.
    pub fn extend_trace_into(&self, out: &mut Vec<odrl_obs::EventRecord>) {
        if let Some(tr) = &self.tracer {
            tr.extend_into(out);
        }
    }

    /// The report of the most recently executed epoch, if any.
    pub fn last_report(&self) -> Option<&EpochReport> {
        self.last_report.as_ref()
    }

    /// Per-stage time spent in the system side of the epoch pipeline
    /// (workload/power/sensor/NoC/thermal) since construction or the last
    /// [`System::reset_stage_timers`]. Controller-side stages (`rl`,
    /// `realloc`) are recorded by controllers that keep their own
    /// [`StageTimers`]; merge the two for a full breakdown.
    pub fn stage_timers(&self) -> &StageTimers {
        &self.scratch.timers
    }

    /// Zeroes the stage timers (e.g. after warmup epochs).
    pub fn reset_stage_timers(&mut self) {
        self.scratch.timers.reset();
    }

    /// Builds the sensor observation a controller decides from, for a given
    /// chip power budget.
    ///
    /// Before the first epoch, counters reflect the initial workload phases
    /// and measured rates/powers are zero (no epoch has executed yet).
    pub fn observation(&self, budget: Watts) -> Observation {
        let mut out = Observation {
            epoch: self.epoch,
            dt: self.config.epoch,
            budget,
            cores: Vec::with_capacity(self.config.cores),
            total_power: Watts::ZERO,
        };
        self.observation_into(budget, &mut out);
        out
    }

    /// Allocation-free [`System::observation`]: refills the caller's
    /// observation in place, reusing its `cores` buffer. After the first
    /// call the steady-state observe/decide/step loop touches the heap
    /// only if the caller's buffers are undersized.
    pub fn observation_into(&self, budget: Watts, out: &mut Observation) {
        out.epoch = self.epoch;
        out.dt = self.config.epoch;
        out.budget = budget;
        out.total_power = self
            .last_report
            .as_ref()
            .map(|r| r.measured_power)
            .unwrap_or(Watts::ZERO);
        out.cores.clear();
        match &self.last_report {
            Some(report) => out
                .cores
                .extend(report.cores.iter().enumerate().map(|(i, c)| CoreObservation {
                    level: c.level,
                    ips: c.ips,
                    power: self
                        .arrays
                        .measured
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| c.power.total()),
                    temperature: c.temperature,
                    counters: c.counters,
                })),
            None => out
                .cores
                .extend(self.streams.iter().enumerate().map(|(i, s)| CoreObservation {
                    level: self.arrays.levels[i],
                    ips: 0.0,
                    power: Watts::ZERO,
                    temperature: self.grid.temperature(i),
                    counters: s.params(),
                })),
        }
    }

    /// Executes one control epoch with the given per-core VF levels.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::ActionLengthMismatch`] if `actions` does not
    /// have one entry per core, or [`SystemError::Power`] if any level id is
    /// out of range for the VF table.
    pub fn step(&mut self, actions: &[LevelId]) -> Result<EpochReport, SystemError> {
        Ok(self.step_in_place(actions)?.clone())
    }

    /// Allocation-free [`System::step`]: executes one control epoch and
    /// returns a borrow of the internally maintained report instead of a
    /// fresh one. After the first epoch (which sizes the report buffers),
    /// the steady-state kernel performs zero heap allocations under
    /// [`Parallelism::Serial`](crate::Parallelism::Serial).
    ///
    /// The epoch pipeline runs in fixed passes over the struct-of-arrays
    /// state: standalone progress → barrier gating → workload advance and
    /// activity → batch power evaluation → sensor reads → NoC/thermal/
    /// report serial tail. Each pass evaluates the exact per-core
    /// expressions of the original fused loop and every random draw stays
    /// on its core-private stream, so results are bit-identical to the
    /// pre-refactor kernel at every shard count.
    ///
    /// # Errors
    ///
    /// As [`System::step`].
    pub fn step_in_place(&mut self, actions: &[LevelId]) -> Result<&EpochReport, SystemError> {
        if actions.len() != self.config.cores {
            return Err(SystemError::ActionLengthMismatch {
                supplied: actions.len(),
                expected: self.config.cores,
            });
        }
        for &a in actions {
            self.config.vf_table.check(a)?;
        }
        let dt = self.config.epoch;
        let n = self.config.cores;
        let par = self.config.parallelism;
        let epoch = self.epoch;

        let EpochScratch {
            switched,
            vf,
            standalone,
            gated,
            params,
            cpi,
            activity,
            powers,
            miss_rates,
            thermal,
            noc: noc_scratch,
            faults,
            noise_u1,
            noise_u2,
            timers,
        } = &mut self.scratch;
        let CoreArrays {
            levels,
            instructions,
            dynamic,
            leakage,
            temperature,
            sensor_rngs,
            gauss_spare,
            measured,
            variation,
            mem_latency,
        } = &mut self.arrays;

        // VF-apply and core-mask injection points: resolve the commanded
        // levels through the fault schedule (dropped/delayed/clamped
        // actuators, forced throttles, unplugged cores). From here on
        // `actions` are the *effective* levels; with no plan attached the
        // commanded slice passes through untouched, and an empty plan
        // resolves every level to itself.
        if let (Some(engine), Some(fs)) = (&self.faults, faults.as_mut()) {
            engine.begin_epoch(epoch, fs);
            fs.apply_actions(actions);
        }
        let fstate: Option<&FaultState> = faults.as_ref();
        let actions: &[LevelId] = fstate.map_or(actions, FaultState::effective);
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record_fault_edges(epoch, fstate);
        }

        // A VF transition stalls the core for the PLL/VR settling time;
        // record which cores switched before overwriting the level state.
        for (s, (old, new)) in switched.iter_mut().zip(levels.iter().zip(actions)) {
            *s = old != new;
        }
        levels.copy_from_slice(actions);
        if let Some(tr) = self.tracer.as_deref_mut() {
            for (i, (&s, &lv)) in switched.iter().zip(actions.iter()).enumerate() {
                if s {
                    tr.record_vf(epoch, i as u32, lv.0 as u8);
                }
            }
        }

        let t_workload = Instant::now();
        // Pass 1 (sharded): resolved VF point, executing phase signature and
        // standalone progress of every core this epoch, using the
        // NoC-derived memory latency from the previous epoch (one-epoch
        // relaxation, standard for epoch-granularity congestion models).
        // Read-only per core, so shards need no coordination.
        {
            let config = &self.config;
            let streams = &self.streams;
            let mem_latency: &[f64] = mem_latency;
            let switched: &[bool] = switched;
            shard_chunks(
                par,
                (&mut vf[..], &mut params[..], &mut standalone[..], &mut cpi[..]),
                |base, (vf, params, standalone, cpi)| {
                    for j in 0..vf.len() {
                        let i = base + j;
                        params[j] = streams[i].params();
                        let level = config.vf_table.level(actions[i]);
                        vf[j] = level;
                        // One effective-CPI evaluation per core per epoch:
                        // banked for the activity pass, which needs the
                        // same value (identical inputs, identical bits).
                        cpi[j] = config.perf.effective_cpi_with_latency(
                            &params[j],
                            level.frequency,
                            mem_latency[i],
                        );
                        let ips = level.frequency.to_hertz() / cpi[j];
                        let effective_dt = if switched[i] && epoch > 0 {
                            dt.value() - config.transition_penalty.value()
                        } else {
                            dt.value()
                        };
                        standalone[j] = ips * effective_dt;
                    }
                },
            );
        }
        // Core-mask injection point: an unplugged core makes no progress
        // this epoch. Masked *before* barrier gating so losing a member
        // genuinely stalls its barrier group — the physical semantics of a
        // hot-unplug under synchronized workloads.
        if let Some(fs) = fstate {
            if fs.any_dead() {
                for (s, &alive) in standalone.iter_mut().zip(fs.alive()) {
                    if !alive {
                        *s = 0.0;
                    }
                }
            }
        }
        // Serial reduction: barrier gating couples cores within a group —
        // each core retires its group's minimum and idles (reduced
        // activity) for the time it saved.
        self.config.sync.gate_into(standalone, gated);

        // Pass 2 (sharded): per-core activity scaling and workload-stream
        // advance. Stalled cycles clock-gate most of the datapath: the
        // activity factor scales with the fraction of cycles doing useful
        // work (floored for the always-on front-end and caches), and a core
        // waiting at a barrier idles at the sync model's idle activity.
        // Each core's only mutable state is its own stream, visited by
        // exactly one shard.
        {
            let config = &self.config;
            let gated: &[(f64, f64)] = gated;
            let params: &[PhaseParams] = params;
            let cpi: &[f64] = cpi;
            shard_chunks(
                par,
                (
                    &mut self.streams[..],
                    &mut activity[..],
                    &mut instructions[..],
                ),
                |base, (streams, activity, instructions)| {
                    // Two lane-friendly sweeps instead of one interleaved
                    // loop: the activity/instruction arithmetic is pure
                    // slice math the compiler vectorizes once the branchy
                    // stream advance (per-core RNG + phase state) no longer
                    // sits in the middle of it. Per-core results are
                    // independent, so the split is bit-identical.
                    for j in 0..activity.len() {
                        let i = base + j;
                        let (instr, idle_frac) = gated[i];
                        let busy = params[i].cpi_base / cpi[i];
                        let mut act = params[i].activity * (0.3 + 0.7 * busy);
                        if idle_frac > 0.0 {
                            // Barrier wait: the active stretch runs at full
                            // activity, the idle tail at the sync model's
                            // idle activity.
                            act = act * (1.0 - idle_frac)
                                + config.sync.idle_activity() * idle_frac;
                        }
                        activity[j] = act;
                        instructions[j] = instr;
                    }
                    for (stream, &instr) in streams.iter_mut().zip(instructions.iter()) {
                        stream.advance(instr);
                    }
                },
            );
        }
        timers.record(Stage::Workload, t_workload);

        // Pass 3 (serial): batch power evaluation over the flat arrays —
        // per-VF-level coefficient gather for nominal dynamic/leakage at
        // the pre-step die temperature, then the per-core
        // process-variation multipliers.
        let t_power = Instant::now();
        temperature.copy_from_slice(self.grid.temperatures());
        self.coeffs
            .evaluate_into(levels, activity, temperature, dynamic, leakage);
        for i in 0..n {
            let (dm, lm) = variation[i];
            dynamic[i] = dynamic[i] * dm;
            leakage[i] = leakage[i] * lm;
            powers[i] = dynamic[i] + leakage[i];
        }
        // An unplugged core is power-gated: no dynamic, no leakage.
        if let Some(fs) = fstate {
            if fs.any_dead() {
                for i in 0..n {
                    if !fs.core_alive(i) {
                        dynamic[i] = Watts::ZERO;
                        leakage[i] = Watts::ZERO;
                        powers[i] = Watts::ZERO;
                        activity[i] = 0.0;
                    }
                }
            }
        }
        timers.record(Stage::Power, t_power);

        // Pass 4 (sharded): per-core power sensors. Each core's sensor RNG
        // is private to its shard, so draws never depend on execution
        // order. Fault-free dropout-free runs take the block-filled batch
        // path (bit-identical per core — see
        // [`SensorModel::measure_block`]); otherwise this is the
        // sensor-read injection point: the healthy reading is always
        // computed first (keeping every RNG stream aligned with the
        // fault-free run), then the active sensor fault — if any —
        // transforms it.
        let t_sensor = Instant::now();
        {
            let config = &self.config;
            let powers: &[Watts] = powers;
            let fview = fstate.map(FaultState::sensor_view);
            let use_block = fview.is_none() && config.sensors.dropout == 0.0;
            shard_chunks(
                par,
                (
                    &mut sensor_rngs[..],
                    &mut measured[..],
                    &mut noise_u1[..],
                    &mut noise_u2[..],
                    &mut gauss_spare[..],
                ),
                |base, (rngs, measured, u1, u2, spares)| {
                    if use_block {
                        let truth = &powers[base..base + measured.len()];
                        config
                            .sensors
                            .measure_block(truth, rngs, measured, u1, u2, spares);
                        return;
                    }
                    for j in 0..measured.len() {
                        let i = base + j;
                        let last = measured[j];
                        let fresh = config.sensors.measure_with_spare(
                            powers[i],
                            last,
                            &mut rngs[j],
                            &mut spares[j],
                        );
                        measured[j] = match fview {
                            Some(v) => v.apply(i, fresh, last),
                            None => fresh,
                        };
                    }
                },
            );
        }
        timers.record(Stage::Sensor, t_sensor);

        // Serial tail. Update next epoch's memory latencies from this
        // epoch's traffic.
        if let Some(noc) = &self.noc {
            let t_noc = Instant::now();
            for i in 0..n {
                let ips = instructions[i] / dt.value();
                miss_rates[i] = params[i].mpki / 1000.0 * ips;
            }
            noc.latencies_into(miss_rates, noc_scratch, mem_latency);
            timers.record(Stage::Noc, t_noc);
        }
        let t_thermal = Instant::now();
        self.grid.step_with_scratch(powers, dt, thermal)?;
        temperature.copy_from_slice(self.grid.temperatures());
        timers.record(Stage::Thermal, t_thermal);
        timers.bump_epoch();

        let total_power: Watts = powers.iter().sum();
        let last_chip = self
            .last_report
            .as_ref()
            .map(|r| r.measured_power)
            .unwrap_or(Watts::ZERO);
        let fresh_chip = self.config.sensors.measure_with_spare(
            total_power,
            last_chip,
            &mut self.chip_sensor_rng,
            &mut self.chip_gauss_spare,
        );
        let measured_power = match fstate {
            Some(fs) => fs.chip_sensor_value(fresh_chip, last_chip),
            None => fresh_chip,
        };

        // Refill the long-lived report in place (allocated once, on the
        // first epoch).
        let report = self.last_report.get_or_insert_with(|| EpochReport {
            epoch: 0,
            dt,
            cores: Vec::with_capacity(n),
            total_power: Watts::ZERO,
            measured_power: Watts::ZERO,
            energy: Joules::new(0.0),
        });
        report.epoch = epoch;
        report.dt = dt;
        report.total_power = total_power;
        report.measured_power = measured_power;
        report.energy = total_power.energy_over(dt);
        report.cores.clear();
        for i in 0..n {
            report.cores.push(CoreEpoch {
                level: actions[i],
                ips: instructions[i] / dt.value(),
                instructions: instructions[i],
                power: PowerBreakdown {
                    dynamic: dynamic[i],
                    leakage: leakage[i],
                },
                temperature: temperature[i],
                counters: params[i],
            });
        }
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record_epoch(epoch, total_power.value());
        }
        self.telemetry.record(report);
        self.epoch += 1;
        Ok(self.last_report.as_ref().expect("report just refilled"))
    }

    /// Runs `epochs` epochs with a fixed level vector (useful for warmup
    /// and static baselines).
    ///
    /// # Errors
    ///
    /// As [`System::step`].
    pub fn run_fixed(&mut self, levels: &[LevelId], epochs: u64) -> Result<(), SystemError> {
        for _ in 0..epochs {
            self.step_in_place(levels)?;
        }
        Ok(())
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.telemetry.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odrl_workload::MixPolicy;

    fn small_system(cores: usize, seed: u64) -> System {
        System::new(
            SystemConfig::builder()
                .cores(cores)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn step_produces_consistent_report() {
        let mut sys = small_system(8, 1);
        let r = sys.step(&[LevelId(4); 8]).unwrap();
        assert_eq!(r.epoch, 0);
        assert_eq!(r.cores.len(), 8);
        let sum: f64 = r.cores.iter().map(|c| c.power.total().value()).sum();
        assert!((sum - r.total_power.value()).abs() < 1e-9);
        assert!(r.total_instructions() > 0.0);
        assert_eq!(sys.epoch(), 1);
    }

    #[test]
    fn rejects_bad_actions() {
        let mut sys = small_system(4, 1);
        assert!(matches!(
            sys.step(&[LevelId(0); 3]),
            Err(SystemError::ActionLengthMismatch { .. })
        ));
        assert!(matches!(
            sys.step(&[LevelId(99); 4]),
            Err(SystemError::Power(_))
        ));
        // A failed step must not advance the epoch.
        assert_eq!(sys.epoch(), 0);
    }

    #[test]
    fn higher_levels_mean_more_power_and_throughput() {
        let mut slow = small_system(8, 7);
        let mut fast = small_system(8, 7);
        let r_slow = slow.step(&[LevelId(0); 8]).unwrap();
        let r_fast = fast.step(&[LevelId(7); 8]).unwrap();
        assert!(r_fast.total_power > r_slow.total_power);
        assert!(r_fast.total_instructions() > r_slow.total_instructions());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = small_system(8, 5);
        let mut b = small_system(8, 5);
        for i in 0..20 {
            let lv = vec![LevelId(i % 8); 8];
            let ra = a.step(&lv).unwrap();
            let rb = b.step(&lv).unwrap();
            assert_eq!(ra.total_power, rb.total_power);
            assert_eq!(ra.measured_power, rb.measured_power);
            assert_eq!(ra.total_instructions(), rb.total_instructions());
        }
    }

    #[test]
    fn step_in_place_matches_step() {
        let mut owned = small_system(8, 5);
        let mut borrowed = small_system(8, 5);
        for i in 0..20 {
            let lv = vec![LevelId(i % 8); 8];
            let ra = owned.step(&lv).unwrap();
            let rb = borrowed.step_in_place(&lv).unwrap();
            assert_eq!(&ra, rb, "epoch {i}");
        }
        assert_eq!(owned.telemetry(), borrowed.telemetry());
        assert_eq!(
            owned.observation(Watts::new(10.0)),
            borrowed.observation(Watts::new(10.0))
        );
    }

    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        use crate::parallel::Parallelism;
        let mk = |par| {
            System::new(
                SystemConfig::builder()
                    .cores(16)
                    .seed(11)
                    .parallelism(par)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        };
        let mut serial = mk(Parallelism::Serial);
        for threads in [1, 2, 4, 8] {
            let mut par = mk(Parallelism::Threads(threads));
            let mut reference = mk(Parallelism::Serial);
            for e in 0..30u64 {
                let lv = vec![LevelId((e % 8) as usize); 16];
                let rs = reference.step(&lv).unwrap();
                let rp = par.step(&lv).unwrap();
                assert_eq!(rs, rp, "diverged at epoch {e} with {threads} threads");
            }
        }
        // And the reference run matches an untouched serial system.
        let mut other = mk(Parallelism::Serial);
        for e in 0..30u64 {
            let lv = vec![LevelId((e % 8) as usize); 16];
            assert_eq!(serial.step(&lv).unwrap(), other.step(&lv).unwrap());
        }
    }

    #[test]
    fn initial_observation_has_zero_rates() {
        let sys = small_system(4, 2);
        let obs = sys.observation(Watts::new(10.0));
        assert_eq!(obs.num_cores(), 4);
        assert_eq!(obs.total_power, Watts::ZERO);
        assert!(obs.cores.iter().all(|c| c.ips == 0.0));
        assert!(obs.cores.iter().all(|c| c.counters.cpi_base > 0.0));
    }

    #[test]
    fn observation_reflects_last_epoch() {
        let mut sys = small_system(4, 2);
        sys.step(&[LevelId(5); 4]).unwrap();
        let obs = sys.observation(Watts::new(10.0));
        assert!(obs.total_power.value() > 0.0);
        assert!(obs.cores.iter().all(|c| c.ips > 0.0));
        assert!(obs.cores.iter().all(|c| c.level == LevelId(5)));
        assert_eq!(obs.epoch, 1);
    }

    #[test]
    fn sustained_load_heats_the_die() {
        let mut sys = small_system(16, 3);
        let t0 = sys.observation(Watts::ZERO).cores[0].temperature;
        sys.run_fixed(&[LevelId(7); 16], 200).unwrap();
        let t1 = sys.observation(Watts::ZERO).cores[0].temperature;
        assert!(
            t1.value() > t0.value() + 5.0,
            "die should heat: {t0} -> {t1}"
        );
    }

    #[test]
    fn telemetry_accumulates_over_run() {
        let mut sys = small_system(4, 9);
        sys.run_fixed(&[LevelId(3); 4], 50).unwrap();
        let t = sys.telemetry();
        assert_eq!(t.epochs(), 50);
        assert!(t.total_instructions() > 0.0);
        assert!(t.total_energy().value() > 0.0);
        assert!((t.elapsed().value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_core_gains_little_from_frequency() {
        let config = SystemConfig::builder()
            .cores(2)
            .mix(MixPolicy::Homogeneous("streamcluster".into()))
            .seed(1)
            .build()
            .unwrap();
        let mut slow = System::new(config.clone()).unwrap();
        let mut fast = System::new(config).unwrap();
        let rs = slow.step(&[LevelId(0); 2]).unwrap();
        let rf = fast.step(&[LevelId(7); 2]).unwrap();
        let perf_gain = rf.total_instructions() / rs.total_instructions();
        let power_gain = rf.total_power / rs.total_power;
        assert!(perf_gain < 1.6, "memory-bound perf gain {perf_gain}");
        assert!(power_gain > 2.0, "power gain {power_gain}");
    }

    #[test]
    fn transitions_cost_execution_time() {
        use odrl_power::Seconds;
        let mk = |penalty: f64| {
            SystemConfig::builder()
                .cores(4)
                .seed(1)
                .transition_penalty(Seconds::new(penalty))
                .build()
                .unwrap()
        };
        // Thrash levels every epoch with and without a transition penalty.
        let mut free = System::new(mk(0.0)).unwrap();
        let mut costly = System::new(mk(100e-6)).unwrap();
        for e in 0..50u64 {
            let lv = vec![LevelId((e % 2) as usize + 3); 4];
            free.step(&lv).unwrap();
            costly.step(&lv).unwrap();
        }
        let lost =
            1.0 - costly.telemetry().total_instructions() / free.telemetry().total_instructions();
        // 100 us lost per 1 ms epoch (after the first) ~ 10%.
        assert!((0.05..0.15).contains(&lost), "lost fraction {lost}");

        // A steady level vector pays only the very first transition check.
        let mut steady = System::new(mk(100e-6)).unwrap();
        let mut ideal = System::new(mk(0.0)).unwrap();
        for _ in 0..50 {
            steady.step(&[LevelId(4); 4]).unwrap();
            ideal.step(&[LevelId(4); 4]).unwrap();
        }
        let lost =
            1.0 - steady.telemetry().total_instructions() / ideal.telemetry().total_instructions();
        assert!(lost < 0.01, "steady levels should be nearly free: {lost}");
    }

    #[test]
    fn barrier_groups_share_throughput() {
        use crate::sync::SyncModel;
        let config = SystemConfig::builder()
            .cores(8)
            .sync(SyncModel::barrier(4))
            .seed(6)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        // Heterogeneous levels inside each group: fast members must be
        // gated down to the group's slowest.
        let levels: Vec<LevelId> = (0..8)
            .map(|i| LevelId(if i % 2 == 0 { 7 } else { 0 }))
            .collect();
        let r = sys.step(&levels).unwrap();
        for g in 0..2 {
            let group = &r.cores[g * 4..(g + 1) * 4];
            let first = group[0].instructions;
            assert!(
                group.iter().all(|c| (c.instructions - first).abs() < 1e-6),
                "group {g} not gated: {:?}",
                group.iter().map(|c| c.instructions).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn gated_fast_cores_burn_less_power() {
        use crate::sync::SyncModel;
        // Same actions, same seed: coupling an idle-prone fast core to a
        // slow one must reduce its power vs running independently.
        let mk = |sync| {
            SystemConfig::builder()
                .cores(2)
                .sync(sync)
                .seed(3)
                .build()
                .unwrap()
        };
        let mut coupled = System::new(mk(SyncModel::barrier(2))).unwrap();
        let mut free = System::new(mk(SyncModel::Independent)).unwrap();
        let levels = vec![LevelId(7), LevelId(0)]; // core 0 races ahead
        let rc = coupled.step(&levels).unwrap();
        let rf = free.step(&levels).unwrap();
        assert!(
            rc.cores[0].power.total() < rf.cores[0].power.total(),
            "gated core should idle-save: {} vs {}",
            rc.cores[0].power.total(),
            rf.cores[0].power.total()
        );
        assert!(rc.cores[0].instructions < rf.cores[0].instructions);
        // The slow core is unaffected.
        assert_eq!(rc.cores[1].instructions, rf.cores[1].instructions);
    }

    #[test]
    fn process_variation_spreads_core_power() {
        use crate::variation::VariationModel;
        let config = SystemConfig::builder()
            .cores(16)
            .mix(MixPolicy::Homogeneous("swaptions".into()))
            .variation(VariationModel::typical())
            .seed(21)
            .build()
            .unwrap();
        let mut varied = System::new(config.clone()).unwrap();
        let r = varied.step(&[LevelId(7); 16]).unwrap();
        // Same benchmark, same level: only variation separates the cores.
        let powers: Vec<f64> = r.cores.iter().map(|c| c.power.total().value()).collect();
        let max = powers.iter().cloned().fold(0.0, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min > 1.1,
            "variation should spread power: {min}..{max}"
        );

        // Nominal chip: all cores identical.
        let mut nominal_cfg = config;
        nominal_cfg.variation = VariationModel::none();
        let mut nominal = System::new(nominal_cfg).unwrap();
        let r = nominal.step(&[LevelId(7); 16]).unwrap();
        let powers: Vec<f64> = r.cores.iter().map(|c| c.power.total().value()).collect();
        let max = powers.iter().cloned().fold(0.0, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max / min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noc_congestion_couples_cores() {
        use odrl_noc::NocConfig;
        use odrl_thermal::Floorplan;
        let mk = |mix: MixPolicy| {
            SystemConfig::builder()
                .cores(64)
                .mix(mix)
                .noc(NocConfig::for_floorplan(Floorplan::new(8, 8).unwrap()))
                .seed(8)
                .build()
                .unwrap()
        };
        // Memory-heavy homogeneous load at top level: corner cores (next to
        // a controller) should out-run the die center once congestion kicks
        // in.
        let mut sys = System::new(mk(MixPolicy::Homogeneous("streamcluster".into()))).unwrap();
        let top = [LevelId(7); 64];
        for _ in 0..10 {
            sys.step_in_place(&top).unwrap();
        }
        let r = sys.last_report().unwrap();
        let corner = r.cores[0].ips;
        let center = r.cores[27].ips;
        assert!(
            corner > center * 1.02,
            "corner {corner} should beat center {center} under congestion"
        );

        // And NoC-enabled throughput is below the flat-latency ideal.
        let flat = SystemConfig::builder()
            .cores(64)
            .mix(MixPolicy::Homogeneous("streamcluster".into()))
            .seed(8)
            .build()
            .unwrap();
        let mut flat_sys = System::new(flat).unwrap();
        for _ in 0..10 {
            flat_sys.step_in_place(&top).unwrap();
        }
        // Note: flat model uses 80 ns everywhere; the NoC's unloaded corner
        // latency is lower (60 ns DRAM + short path), so compare totals
        // qualitatively: congestion must hurt the center cores vs flat.
        let flat_center = flat_sys.last_report().unwrap().cores[27].ips;
        assert!(center < flat_center);
    }

    #[test]
    fn recording_system_captures_series() {
        let config = SystemConfig::builder().cores(4).seed(1).build().unwrap();
        let mut sys = System::new_recording(config).unwrap();
        sys.run_fixed(&[LevelId(2); 4], 10).unwrap();
        assert_eq!(sys.telemetry().series().len(), 10);
    }
}
