//! Per-stage wall-clock accounting for the epoch hot path.
//!
//! The epoch kernel is a fixed pipeline (workload → power → sensors → NoC →
//! thermal on the system side, RL select/update → budget reallocation on
//! the controller side). [`StageTimers`] is a zero-allocation accumulator —
//! a fixed array of nanosecond counters — that both sides stamp as they
//! run, so benchmarks can print where an epoch's time actually goes
//! without any per-epoch heap traffic.

use std::fmt;
use std::time::Instant;

/// One stage of the epoch pipeline. The first five are recorded by
/// [`crate::System::step_in_place`]; `Rl` and `Realloc` belong to the
/// controller's decision path and are recorded by controllers that carry
/// their own [`StageTimers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Workload passes: VF resolve, standalone progress, barrier gating,
    /// activity scaling and stream advance.
    Workload,
    /// Batch power evaluation (coefficient gather + variation).
    Power,
    /// Per-core power sensor reads.
    Sensor,
    /// NoC latency update from this epoch's traffic.
    Noc,
    /// Thermal grid forward-Euler integration.
    Thermal,
    /// Controller: RL state encoding, action selection and TD updates.
    /// This is the whole RL pass wall clock; [`Stage::RlDecide`] and
    /// [`Stage::RlLearn`] break the same interval down and are excluded
    /// from [`StageTimers::total_nanos`] so the pipeline total is not
    /// double-counted — benchmarks should present them as a split of
    /// `rl`, not as extra pipeline stages.
    Rl,
    /// Controller: the action-selection (decide) half of the RL pass —
    /// state encoding, greedy scan and ε-draw. A sub-interval of
    /// [`Stage::Rl`].
    RlDecide,
    /// Controller: the TD-update (learn) half of the RL pass — reward
    /// pricing and Q-table writes. A sub-interval of [`Stage::Rl`].
    RlLearn,
    /// Controller: budget tracking and per-core budget reallocation.
    Realloc,
}

impl Stage {
    /// Every stage, in pipeline order. `rl_decide` and `rl_learn` follow
    /// `rl` as its sub-interval split.
    pub const ALL: [Stage; 9] = [
        Stage::Workload,
        Stage::Power,
        Stage::Sensor,
        Stage::Noc,
        Stage::Thermal,
        Stage::Rl,
        Stage::RlDecide,
        Stage::RlLearn,
        Stage::Realloc,
    ];

    /// Stable lowercase name (used as a JSON field key by benchmarks).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Workload => "workload",
            Stage::Power => "power",
            Stage::Sensor => "sensor",
            Stage::Noc => "noc",
            Stage::Thermal => "thermal",
            Stage::Rl => "rl",
            Stage::RlDecide => "rl_decide",
            Stage::RlLearn => "rl_learn",
            Stage::Realloc => "realloc",
        }
    }

    /// Whether this stage is a sub-interval of another stage (and thus
    /// excluded from pipeline totals).
    pub fn is_substage(self) -> bool {
        matches!(self, Stage::RlDecide | Stage::RlLearn)
    }
}

/// A zero-allocation per-stage time accumulator.
///
/// Stamp a stage with [`StageTimers::record`] around the work, bump the
/// epoch count once per epoch, and read totals or per-epoch means at the
/// end. `merge` combines system- and controller-side timers into one
/// breakdown.
///
/// ```
/// use odrl_manycore::{Stage, StageTimers, System, SystemConfig};
/// use odrl_power::LevelId;
///
/// let config = SystemConfig::builder().cores(4).seed(1).build()?;
/// let mut system = System::new(config)?;
/// for _ in 0..3 {
///     system.step(&vec![LevelId(2); 4])?;
/// }
/// let timers = *system.stage_timers();
/// assert_eq!(timers.epochs(), 3);
/// assert!(timers.total_nanos() > 0);
/// assert!(timers.mean_nanos(Stage::Thermal) > 0.0);
/// println!("{timers}"); // per-stage table: total ms, µs/epoch, share
/// # Ok::<(), odrl_manycore::SystemError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimers {
    nanos: [u64; Stage::ALL.len()],
    epochs: u64,
}

impl StageTimers {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the time elapsed since `t0` to `stage`'s counter.
    #[inline]
    pub fn record(&mut self, stage: Stage, t0: Instant) {
        self.nanos[stage as usize] += t0.elapsed().as_nanos() as u64;
    }

    /// Adds a pre-measured nanosecond count to `stage`'s counter — for
    /// intervals stamped off-thread (e.g. per-shard sub-stage timings
    /// aggregated after a parallel region) where no `Instant` survives.
    #[inline]
    pub fn add_nanos(&mut self, stage: Stage, nanos: u64) {
        self.nanos[stage as usize] += nanos;
    }

    /// Counts one completed epoch (drives the per-epoch means).
    #[inline]
    pub fn bump_epoch(&mut self) {
        self.epochs += 1;
    }

    /// Total nanoseconds recorded for `stage`.
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage as usize]
    }

    /// Total nanoseconds recorded across all pipeline stages. Sub-stage
    /// counters ([`Stage::is_substage`]) are excluded: they re-measure
    /// intervals already covered by their parent stage.
    pub fn total_nanos(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|s| !s.is_substage())
            .map(|&s| self.nanos[s as usize])
            .sum()
    }

    /// Number of epochs counted.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Mean nanoseconds per epoch for `stage` (0 before any epoch).
    pub fn mean_nanos(&self, stage: Stage) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.nanos[stage as usize] as f64 / self.epochs as f64
        }
    }

    /// Zeroes every counter (e.g. after warmup).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds `other`'s counters into `self`. The epoch count becomes the
    /// maximum of the two — merging a system's timers with its controller's
    /// must not double-count the epochs both sides stamped.
    pub fn merge(&mut self, other: &StageTimers) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += b;
        }
        self.epochs = self.epochs.max(other.epochs);
    }
}

impl fmt::Display for StageTimers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_nanos().max(1) as f64;
        writeln!(f, "{:<10} {:>12} {:>14} {:>7}", "stage", "total ms", "us/epoch", "share")?;
        for stage in Stage::ALL {
            let ns = self.nanos(stage);
            writeln!(
                f,
                "{:<10} {:>12.3} {:>14.3} {:>6.1}%",
                stage.name(),
                ns as f64 / 1e6,
                self.mean_nanos(stage) / 1e3,
                ns as f64 / total * 100.0
            )?;
        }
        write!(
            f,
            "{:<10} {:>12.3} {:>14.3} {:>6.1}%",
            "total",
            self.total_nanos() as f64 / 1e6,
            if self.epochs == 0 {
                0.0
            } else {
                self.total_nanos() as f64 / self.epochs as f64 / 1e3
            },
            100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_averages() {
        let mut t = StageTimers::new();
        assert_eq!(t.total_nanos(), 0);
        assert_eq!(t.mean_nanos(Stage::Rl), 0.0);
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        t.record(Stage::Rl, t0);
        t.bump_epoch();
        t.bump_epoch();
        assert!(t.nanos(Stage::Rl) >= 2_000_000);
        assert_eq!(t.epochs(), 2);
        assert!((t.mean_nanos(Stage::Rl) - t.nanos(Stage::Rl) as f64 / 2.0).abs() < 1e-9);
        assert_eq!(t.total_nanos(), t.nanos(Stage::Rl));
        t.reset();
        assert_eq!(t, StageTimers::default());
    }

    #[test]
    fn merge_sums_nanos_and_takes_max_epochs() {
        let mut a = StageTimers::new();
        let mut b = StageTimers::new();
        let t0 = Instant::now();
        a.record(Stage::Power, t0);
        a.bump_epoch();
        b.record(Stage::Rl, t0);
        b.bump_epoch();
        b.bump_epoch();
        let power = a.nanos(Stage::Power);
        let rl = b.nanos(Stage::Rl);
        a.merge(&b);
        assert_eq!(a.nanos(Stage::Power), power);
        assert_eq!(a.nanos(Stage::Rl), rl);
        assert_eq!(a.epochs(), 2);
    }

    #[test]
    fn stage_names_are_stable_and_unique() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "workload", "power", "sensor", "noc", "thermal", "rl", "rl_decide", "rl_learn",
                "realloc"
            ]
        );
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn substages_do_not_double_count_totals() {
        let mut t = StageTimers::new();
        t.add_nanos(Stage::Rl, 100);
        t.add_nanos(Stage::RlDecide, 60);
        t.add_nanos(Stage::RlLearn, 40);
        t.add_nanos(Stage::Thermal, 50);
        assert_eq!(t.nanos(Stage::RlDecide), 60);
        assert_eq!(t.nanos(Stage::RlLearn), 40);
        assert_eq!(t.total_nanos(), 150);
    }

    #[test]
    fn display_renders_every_stage() {
        let mut t = StageTimers::new();
        let t0 = Instant::now();
        t.record(Stage::Thermal, t0);
        t.bump_epoch();
        let s = format!("{t}");
        for stage in Stage::ALL {
            assert!(s.contains(stage.name()), "missing {}", stage.name());
        }
        assert!(s.contains("total"));
    }
}
