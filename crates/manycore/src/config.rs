//! System configuration and the spec controllers build against.

use crate::error::SystemError;
use crate::parallel::Parallelism;
use crate::perf::PerfModel;
use crate::sensors::SensorModel;
use crate::sync::SyncModel;
use crate::variation::VariationModel;
use odrl_noc::NocConfig;
use odrl_obs::ObsConfig;
use odrl_power::{Celsius, CorePowerModel, Seconds, VfTable, Watts};
use odrl_thermal::ThermalParams;
use odrl_workload::MixPolicy;
use serde::{Deserialize, Serialize};

/// Full configuration of a simulated many-core system.
///
/// Construct with [`SystemConfig::builder`]:
///
/// ```
/// use odrl_manycore::SystemConfig;
/// let config = SystemConfig::builder().cores(64).seed(1).build()?;
/// assert_eq!(config.cores, 64);
/// assert!(config.max_power().value() > 0.0);
/// # Ok::<(), odrl_manycore::SystemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// The per-core DVFS table (all cores share one table; each core has an
    /// independent VF domain).
    pub vf_table: VfTable,
    /// Per-core power model.
    pub power: CorePowerModel,
    /// Per-core performance model.
    pub perf: PerfModel,
    /// Thermal RC parameters.
    pub thermal: ThermalParams,
    /// Power-sensor model.
    pub sensors: SensorModel,
    /// Workload assignment policy.
    pub mix: MixPolicy,
    /// Control-epoch duration.
    pub epoch: Seconds,
    /// Thread-synchronization coupling (barrier groups).
    #[serde(default)]
    pub sync: SyncModel,
    /// Optional mesh NoC model: when set, each core's memory latency is
    /// position- and congestion-dependent instead of the flat
    /// `PerfModel::mem_latency_ns` (whose value then only calibrates the
    /// counters' memory-boundedness heuristic and the baselines'
    /// predictions — which therefore ignore congestion, as real
    /// model-based controllers do).
    #[serde(default)]
    pub noc: Option<NocConfig>,
    /// Core-to-core manufacturing process variation. The simulator applies
    /// it to the true physics; `SystemSpec` keeps the nominal models, so
    /// model-based controllers mis-predict exactly as they would on real
    /// silicon.
    #[serde(default)]
    pub variation: VariationModel,
    /// How the per-core work inside each epoch executes. Defaults to
    /// [`Parallelism::Serial`]; every setting is bit-identical (per-core RNG
    /// streams plus fixed-order reductions), so this only trades wall-clock
    /// time for worker threads.
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Execution time lost by a core whenever its VF level changes
    /// (PLL relock + voltage ramp). Real transitions cost 5-50 us; the
    /// default is zero so the idealized experiments stay comparable, and
    /// the `transition-overhead` ablation turns it on.
    pub transition_penalty: Seconds,
    /// Structured tracing + metrics for the simulator side (fault edges,
    /// VF switches, epoch boundaries). Defaults to off, which costs
    /// nothing on the hot path.
    #[serde(default)]
    pub obs: ObsConfig,
    /// Master seed for workloads and sensor noise.
    pub seed: u64,
}

impl SystemConfig {
    /// Starts building a configuration with the paper-like defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// The chip's maximum sustained power: every core at the top VF level,
    /// full activity, at a hot reference temperature (80 °C).
    ///
    /// Power budgets ("x % of TDP") are expressed as fractions of this.
    pub fn max_power(&self) -> Watts {
        let top = self.vf_table.level(self.vf_table.max_level());
        let per_core = self.power.total_power(top, 1.0, Celsius::new(80.0));
        per_core * self.cores as f64
    }

    /// The minimum sustainable chip power: every core at the bottom level,
    /// idle activity floor (0.1), at ambient-ish temperature (50 °C).
    pub fn min_power(&self) -> Watts {
        let bottom = self.vf_table.level(odrl_power::LevelId(0));
        let per_core = self.power.total_power(bottom, 0.1, Celsius::new(50.0));
        per_core * self.cores as f64
    }

    /// The immutable part controllers need: core count, VF table, models
    /// and epoch length.
    pub fn spec(&self) -> SystemSpec {
        SystemSpec {
            cores: self.cores,
            vf_table: self.vf_table.clone(),
            perf: self.perf,
            power: self.power,
            epoch: self.epoch,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] for a zero core count or a
    /// non-positive epoch, or forwards substrate validation errors.
    pub fn validate(&self) -> Result<(), SystemError> {
        if self.cores == 0 {
            return Err(SystemError::InvalidConfig {
                field: "cores",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.epoch.value().is_finite() && self.epoch.value() > 0.0) {
            return Err(SystemError::InvalidConfig {
                field: "epoch",
                reason: format!("must be finite and positive, got {}", self.epoch),
            });
        }
        let tp = self.transition_penalty.value();
        if !(tp.is_finite() && tp >= 0.0 && tp < self.epoch.value()) {
            return Err(SystemError::InvalidConfig {
                field: "transition_penalty",
                reason: format!(
                    "must be finite, non-negative and below the epoch length, got {}",
                    self.transition_penalty
                ),
            });
        }
        self.thermal.validate()?;
        self.sync.validate()?;
        self.variation.validate()?;
        Ok(())
    }
}

/// The static system description controllers are constructed against.
///
/// Baseline controllers (MaxBIPS, Steepest Drop) use the models in the spec
/// for their per-epoch predictions — the same generous assumption the
/// original papers make. OD-RL only uses `cores`, `vf_table` and `epoch`;
/// it is model-free by design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Number of cores.
    pub cores: usize,
    /// The shared DVFS table.
    pub vf_table: VfTable,
    /// The performance model (for predictive baselines).
    pub perf: PerfModel,
    /// The power model (for predictive baselines).
    pub power: CorePowerModel,
    /// Control-epoch duration.
    pub epoch: Seconds,
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    config: SystemConfig,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self {
            config: SystemConfig {
                cores: 64,
                vf_table: VfTable::alpha_like(),
                power: CorePowerModel::default(),
                perf: PerfModel::default(),
                thermal: ThermalParams::default(),
                sensors: SensorModel::default(),
                mix: MixPolicy::RoundRobin,
                epoch: Seconds::new(1e-3),
                sync: SyncModel::Independent,
                noc: None,
                variation: VariationModel::none(),
                parallelism: Parallelism::Serial,
                transition_penalty: Seconds::ZERO,
                obs: ObsConfig::default(),
                seed: 0,
            },
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets the DVFS table.
    pub fn vf_table(mut self, table: VfTable) -> Self {
        self.config.vf_table = table;
        self
    }

    /// Sets the per-core power model.
    pub fn power(mut self, power: CorePowerModel) -> Self {
        self.config.power = power;
        self
    }

    /// Sets the performance model.
    pub fn perf(mut self, perf: PerfModel) -> Self {
        self.config.perf = perf;
        self
    }

    /// Sets the thermal parameters.
    pub fn thermal(mut self, thermal: ThermalParams) -> Self {
        self.config.thermal = thermal;
        self
    }

    /// Sets the sensor model.
    pub fn sensors(mut self, sensors: SensorModel) -> Self {
        self.config.sensors = sensors;
        self
    }

    /// Sets the workload mix policy.
    pub fn mix(mut self, mix: MixPolicy) -> Self {
        self.config.mix = mix;
        self
    }

    /// Sets the control-epoch duration.
    pub fn epoch(mut self, epoch: Seconds) -> Self {
        self.config.epoch = epoch;
        self
    }

    /// Enables the mesh NoC latency model.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.config.noc = Some(noc);
        self
    }

    /// Sets the process-variation model.
    pub fn variation(mut self, variation: VariationModel) -> Self {
        self.config.variation = variation;
        self
    }

    /// Sets the thread-synchronization model.
    pub fn sync(mut self, sync: SyncModel) -> Self {
        self.config.sync = sync;
        self
    }

    /// Sets the epoch execution parallelism (bit-identical for any value).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the per-VF-transition execution-time penalty.
    pub fn transition_penalty(mut self, penalty: Seconds) -> Self {
        self.config.transition_penalty = penalty;
        self
    }

    /// Sets the observability (tracing + metrics) configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.config.obs = obs;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if any field fails validation.
    pub fn build(self) -> Result<SystemConfig, SystemError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let c = SystemConfig::builder().build().unwrap();
        assert_eq!(c.cores, 64);
        assert_eq!(c.epoch.value(), 1e-3);
    }

    #[test]
    fn transition_penalty_validation() {
        assert!(SystemConfig::builder()
            .transition_penalty(Seconds::new(10e-6))
            .build()
            .is_ok());
        assert!(SystemConfig::builder()
            .transition_penalty(Seconds::new(-1e-6))
            .build()
            .is_err());
        // Penalty must be smaller than the epoch itself.
        assert!(SystemConfig::builder()
            .transition_penalty(Seconds::new(2e-3))
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_cores_and_bad_epoch() {
        assert!(SystemConfig::builder().cores(0).build().is_err());
        assert!(SystemConfig::builder()
            .epoch(Seconds::new(0.0))
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .epoch(Seconds::new(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn max_power_scales_with_cores() {
        let small = SystemConfig::builder().cores(16).build().unwrap();
        let large = SystemConfig::builder().cores(64).build().unwrap();
        let ratio = large.max_power() / small.max_power();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn min_power_below_max_power() {
        let c = SystemConfig::builder().cores(32).build().unwrap();
        assert!(c.min_power() < c.max_power());
        assert!(c.min_power().value() > 0.0);
    }

    #[test]
    fn spec_reflects_config() {
        let c = SystemConfig::builder().cores(10).build().unwrap();
        let s = c.spec();
        assert_eq!(s.cores, 10);
        assert_eq!(s.vf_table, c.vf_table);
        assert_eq!(s.epoch, c.epoch);
    }

    #[test]
    fn default_chip_power_is_plausible() {
        // 64 cores at a few watts each: a 100-400 W many-core chip.
        let c = SystemConfig::builder().cores(64).build().unwrap();
        let p = c.max_power().value();
        assert!((100.0..500.0).contains(&p), "max power {p} W");
    }
}
