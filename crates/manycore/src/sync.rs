//! Thread-synchronization coupling: barrier groups.
//!
//! SPLASH-2/PARSEC applications are multithreaded: threads meet at barriers,
//! so a group's forward progress is gated by its slowest member, and the
//! fast members idle (clock-gated, low activity) until the laggard arrives.
//! For a DVFS controller this changes the game — watts spent speeding up a
//! non-critical thread buy *zero* throughput, so the right policy throttles
//! the gated threads and spends the budget on the critical one.
//!
//! [`SyncModel::Barrier`] partitions cores into contiguous groups of
//! `group_size`; each epoch, every member retires exactly the instructions
//! of the slowest member, and the time a faster member would have saved is
//! spent idling at a reduced activity factor.

use crate::error::SystemError;
use serde::{Deserialize, Serialize};

/// How cores' progress is coupled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum SyncModel {
    /// Independent cores (multiprogrammed mix) — the default.
    #[default]
    Independent,
    /// Barrier-synchronized groups of `group_size` contiguous cores, with
    /// idle activity factor `idle_activity` while waiting at the barrier.
    Barrier {
        /// Cores per barrier group (the last group may be smaller).
        group_size: usize,
        /// Activity factor of a core spinning/idling at the barrier, in
        /// `[0, 1]` (clock-gated cores still burn some front-end power).
        idle_activity: f64,
    },
}


impl SyncModel {
    /// A barrier model with the default idle activity (0.15).
    pub fn barrier(group_size: usize) -> Self {
        Self::Barrier {
            group_size,
            idle_activity: 0.15,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] for a zero group size or an
    /// idle activity outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SystemError> {
        match *self {
            Self::Independent => Ok(()),
            Self::Barrier {
                group_size,
                idle_activity,
            } => {
                if group_size == 0 {
                    return Err(SystemError::InvalidConfig {
                        field: "sync.group_size",
                        reason: "must be at least 1".into(),
                    });
                }
                if !(idle_activity.is_finite() && (0.0..=1.0).contains(&idle_activity)) {
                    return Err(SystemError::InvalidConfig {
                        field: "sync.idle_activity",
                        reason: format!("must be in [0, 1], got {idle_activity}"),
                    });
                }
                Ok(())
            }
        }
    }

    /// The barrier group of core `c`, or `None` when independent.
    pub fn group_of(&self, c: usize) -> Option<usize> {
        match *self {
            Self::Independent => None,
            Self::Barrier { group_size, .. } => Some(c / group_size),
        }
    }

    /// Given each core's standalone instruction count for the epoch,
    /// returns `(actual_instructions, idle_fraction)` per core after
    /// barrier gating.
    pub fn gate(&self, standalone: &[f64]) -> Vec<(f64, f64)> {
        let mut out = vec![(0.0, 0.0); standalone.len()];
        self.gate_into(standalone, &mut out);
        out
    }

    /// Allocation-free [`SyncModel::gate`]: writes each core's
    /// `(actual_instructions, idle_fraction)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != standalone.len()`.
    pub fn gate_into(&self, standalone: &[f64], out: &mut [(f64, f64)]) {
        assert_eq!(
            standalone.len(),
            out.len(),
            "gate output must have one slot per core"
        );
        match *self {
            Self::Independent => {
                for (o, &s) in out.iter_mut().zip(standalone) {
                    *o = (s, 0.0);
                }
            }
            Self::Barrier { group_size, .. } => {
                let n = standalone.len();
                let mut start = 0;
                while start < n {
                    let end = (start + group_size).min(n);
                    let slowest = standalone[start..end]
                        .iter()
                        .copied()
                        .fold(f64::MAX, f64::min);
                    for i in start..end {
                        let idle = if standalone[i] > 0.0 {
                            (1.0 - slowest / standalone[i]).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                        out[i] = (slowest, idle);
                    }
                    start = end;
                }
            }
        }
    }

    /// The idle activity factor (0 when independent — unused).
    pub fn idle_activity(&self) -> f64 {
        match *self {
            Self::Independent => 0.0,
            Self::Barrier { idle_activity, .. } => idle_activity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_passes_through() {
        let m = SyncModel::Independent;
        let gated = m.gate(&[1.0, 5.0, 3.0]);
        assert_eq!(gated, vec![(1.0, 0.0), (5.0, 0.0), (3.0, 0.0)]);
        assert_eq!(m.group_of(2), None);
    }

    #[test]
    fn barrier_gates_to_group_minimum() {
        let m = SyncModel::barrier(2);
        let gated = m.gate(&[4.0, 2.0, 6.0, 6.0]);
        assert_eq!(gated[0].0, 2.0);
        assert_eq!(gated[1].0, 2.0);
        assert!((gated[0].1 - 0.5).abs() < 1e-12); // fast member idles half
        assert_eq!(gated[1].1, 0.0); // the laggard never idles
        assert_eq!(gated[2].0, 6.0);
        assert_eq!(gated[3].0, 6.0);
    }

    #[test]
    fn uneven_final_group() {
        let m = SyncModel::barrier(2);
        let gated = m.gate(&[4.0, 2.0, 9.0]);
        assert_eq!(gated[2], (9.0, 0.0)); // singleton group ungated
    }

    #[test]
    fn group_assignment() {
        let m = SyncModel::barrier(4);
        assert_eq!(m.group_of(0), Some(0));
        assert_eq!(m.group_of(3), Some(0));
        assert_eq!(m.group_of(4), Some(1));
    }

    #[test]
    fn zero_standalone_is_safe() {
        let m = SyncModel::barrier(2);
        let gated = m.gate(&[0.0, 3.0]);
        assert_eq!(gated[0], (0.0, 0.0));
        assert_eq!(gated[1].0, 0.0);
        assert_eq!(gated[1].1, 1.0);
    }

    #[test]
    fn validation() {
        assert!(SyncModel::Independent.validate().is_ok());
        assert!(SyncModel::barrier(4).validate().is_ok());
        assert!(SyncModel::Barrier {
            group_size: 0,
            idle_activity: 0.1
        }
        .validate()
        .is_err());
        assert!(SyncModel::Barrier {
            group_size: 4,
            idle_activity: 1.5
        }
        .validate()
        .is_err());
    }
}
