//! The analytical per-core performance model.

use crate::error::SystemError;
use odrl_power::{GigaHertz, Seconds};
use odrl_workload::PhaseParams;
use serde::{Deserialize, Serialize};

/// Frequency-dependent CPI model.
///
/// The effective cycles-per-instruction at clock frequency `f` is
///
/// `CPI(f) = cpi_base + (mpki / 1000) · L_mem · f · overlap`
///
/// where `L_mem` is the (frequency-independent) DRAM round trip in
/// nanoseconds and `overlap ∈ (0, 1]` is the fraction of miss latency the
/// core cannot hide with out-of-order execution. Because the memory term
/// grows linearly with `f` (DRAM does not speed up with the core clock),
/// throughput `IPS = f / CPI(f)` **saturates** for memory-bound phases —
/// the key nonlinearity a DVFS controller must learn: raising the VF level
/// of a memory-bound core wastes power for almost no performance.
///
/// ```
/// use odrl_manycore::PerfModel;
/// use odrl_workload::PhaseParams;
/// use odrl_power::GigaHertz;
///
/// let perf = PerfModel::default();
/// let compute = PhaseParams::new(0.7, 0.2, 1.0)?;
/// let memory = PhaseParams::new(0.7, 20.0, 1.0)?;
/// let gain = |p: &PhaseParams| {
///     perf.ips(p, GigaHertz::new(3.0)) / perf.ips(p, GigaHertz::new(1.0))
/// };
/// // Compute-bound phases scale almost linearly; memory-bound ones do not.
/// assert!(gain(&compute) > 2.5);
/// assert!(gain(&memory) < 1.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// DRAM round-trip latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Fraction of miss latency exposed to the pipeline, in `(0, 1]`.
    pub overlap: f64,
}

impl PerfModel {
    /// Creates a performance model.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if `mem_latency_ns` is not
    /// finite-positive or `overlap` is outside `(0, 1]`.
    pub fn new(mem_latency_ns: f64, overlap: f64) -> Result<Self, SystemError> {
        if !(mem_latency_ns.is_finite() && mem_latency_ns > 0.0) {
            return Err(SystemError::InvalidConfig {
                field: "mem_latency_ns",
                reason: format!("must be finite and positive, got {mem_latency_ns}"),
            });
        }
        if !(overlap.is_finite() && overlap > 0.0 && overlap <= 1.0) {
            return Err(SystemError::InvalidConfig {
                field: "overlap",
                reason: format!("must be in (0, 1], got {overlap}"),
            });
        }
        Ok(Self {
            mem_latency_ns,
            overlap,
        })
    }

    /// Effective CPI of a phase at frequency `f`.
    pub fn effective_cpi(&self, params: &PhaseParams, f: GigaHertz) -> f64 {
        self.effective_cpi_with_latency(params, f, self.mem_latency_ns)
    }

    /// Effective CPI with an explicit memory round-trip latency (used when a
    /// NoC model makes the latency position- and congestion-dependent).
    pub fn effective_cpi_with_latency(
        &self,
        params: &PhaseParams,
        f: GigaHertz,
        mem_latency_ns: f64,
    ) -> f64 {
        let mem_cycles_per_instr = params.mpki / 1000.0 * mem_latency_ns * f.value() * self.overlap;
        params.cpi_base + mem_cycles_per_instr
    }

    /// Instructions per second of a phase at frequency `f`.
    pub fn ips(&self, params: &PhaseParams, f: GigaHertz) -> f64 {
        f.to_hertz() / self.effective_cpi(params, f)
    }

    /// Instructions per second with an explicit memory latency.
    pub fn ips_with_latency(&self, params: &PhaseParams, f: GigaHertz, mem_latency_ns: f64) -> f64 {
        f.to_hertz() / self.effective_cpi_with_latency(params, f, mem_latency_ns)
    }

    /// Instructions retired in `dt` at frequency `f`.
    pub fn instructions_in(&self, params: &PhaseParams, f: GigaHertz, dt: Seconds) -> f64 {
        self.ips(params, f) * dt.value()
    }

    /// The asymptotic IPS as `f → ∞` (the memory-bandwidth ceiling), or
    /// infinity for a phase with zero misses.
    pub fn saturation_ips(&self, params: &PhaseParams) -> f64 {
        if params.mpki <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / (params.mpki / 1000.0 * self.mem_latency_ns * self.overlap)
        }
    }
}

impl Default for PerfModel {
    /// 80 ns DRAM round trip, 70 % of miss latency exposed — typical of a
    /// modest out-of-order core.
    fn default() -> Self {
        Self {
            mem_latency_ns: 80.0,
            overlap: 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(cpi: f64, mpki: f64) -> PhaseParams {
        PhaseParams::new(cpi, mpki, 1.0).unwrap()
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let m = PerfModel::default();
        let p = phase(1.0, 0.0);
        let r = m.ips(&p, GigaHertz::new(2.0)) / m.ips(&p, GigaHertz::new(1.0));
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_saturates() {
        let m = PerfModel::default();
        let p = phase(1.0, 30.0);
        let ips3 = m.ips(&p, GigaHertz::new(3.0));
        let ips1 = m.ips(&p, GigaHertz::new(1.0));
        assert!(ips3 / ips1 < 1.5, "memory-bound speedup {}", ips3 / ips1);
        assert!(ips3 < m.saturation_ips(&p));
    }

    #[test]
    fn ips_monotone_in_frequency() {
        let m = PerfModel::default();
        for &mpki in &[0.0, 1.0, 10.0, 50.0] {
            let p = phase(1.0, mpki);
            let mut last = 0.0;
            for i in 1..=30 {
                let ips = m.ips(&p, GigaHertz::new(0.1 * i as f64));
                assert!(ips > last, "ips must rise with f (mpki={mpki})");
                last = ips;
            }
        }
    }

    #[test]
    fn saturation_bounds_all_frequencies() {
        let m = PerfModel::default();
        let p = phase(0.8, 12.0);
        let sat = m.saturation_ips(&p);
        for i in 1..=40 {
            assert!(m.ips(&p, GigaHertz::new(0.25 * i as f64)) < sat);
        }
    }

    #[test]
    fn instructions_scale_with_time() {
        let m = PerfModel::default();
        let p = phase(1.0, 2.0);
        let f = GigaHertz::new(2.0);
        let one = m.instructions_in(&p, f, Seconds::new(1e-3));
        let two = m.instructions_in(&p, f, Seconds::new(2e-3));
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_ghz_one_cpi_is_one_gips() {
        let m = PerfModel::default();
        let p = phase(1.0, 0.0);
        assert!((m.ips(&p, GigaHertz::new(1.0)) - 1e9).abs() < 1.0);
    }

    #[test]
    fn explicit_latency_matches_default_at_nominal() {
        let m = PerfModel::default();
        let p = phase(1.0, 8.0);
        let f = GigaHertz::new(2.0);
        assert_eq!(m.ips(&p, f), m.ips_with_latency(&p, f, m.mem_latency_ns));
        // Longer memory latency lowers throughput.
        assert!(m.ips_with_latency(&p, f, 160.0) < m.ips(&p, f));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PerfModel::new(0.0, 0.5).is_err());
        assert!(PerfModel::new(80.0, 0.0).is_err());
        assert!(PerfModel::new(80.0, 1.5).is_err());
        assert!(PerfModel::new(f64::NAN, 0.5).is_err());
        assert!(PerfModel::new(80.0, 1.0).is_ok());
    }
}
