//! Per-epoch reports and the observation interface controllers consume.

use odrl_power::{Celsius, Joules, LevelId, PowerBreakdown, Seconds, Watts};
use odrl_workload::PhaseParams;
use serde::{Deserialize, Serialize};

/// What one core did during one epoch (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEpoch {
    /// The VF level the core ran at.
    pub level: LevelId,
    /// Instructions per second achieved.
    pub ips: f64,
    /// Instructions retired this epoch.
    pub instructions: f64,
    /// True power drawn (dynamic + leakage).
    pub power: PowerBreakdown,
    /// Die temperature at the end of the epoch.
    pub temperature: Celsius,
    /// The workload signature the core executed (as exposed by hardware
    /// performance counters: CPI stacks and LLC-miss counters).
    pub counters: PhaseParams,
}

/// Everything that happened in one control epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Epoch duration.
    pub dt: Seconds,
    /// Per-core details.
    pub cores: Vec<CoreEpoch>,
    /// True total chip power.
    pub total_power: Watts,
    /// Total chip power as read through the sensor model (what controllers
    /// see).
    pub measured_power: Watts,
    /// Energy consumed this epoch.
    pub energy: Joules,
}

impl EpochReport {
    /// Total instructions retired across all cores this epoch.
    pub fn total_instructions(&self) -> f64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate throughput in instructions per second.
    pub fn throughput_ips(&self) -> f64 {
        self.cores.iter().map(|c| c.ips).sum()
    }

    /// Hottest core temperature this epoch.
    pub fn max_temperature(&self) -> Celsius {
        self.cores
            .iter()
            .map(|c| c.temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }
}

/// What one core's sensors expose to a controller at a decision point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreObservation {
    /// Current VF level.
    pub level: LevelId,
    /// Measured instructions per second over the last epoch.
    pub ips: f64,
    /// Measured core power over the last epoch.
    pub power: Watts,
    /// Measured die temperature.
    pub temperature: Celsius,
    /// Counter-derived workload signature over the last epoch.
    pub counters: PhaseParams,
}

impl CoreObservation {
    /// Memory-boundedness of the last epoch's workload, in `[0, 1]`.
    pub fn memory_boundedness(&self) -> f64 {
        self.counters.memory_boundedness()
    }
}

/// The full chip-level observation a controller decides from.
///
/// This is deliberately restricted to quantities real hardware exposes:
/// per-core counters, per-core power estimates, temperatures, and the
/// chip-level power reading. Controllers must not see the workload's future
/// or the simulator's internal phase state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Index of the epoch about to execute.
    pub epoch: u64,
    /// Duration of the upcoming epoch.
    pub dt: Seconds,
    /// The chip-level power budget (TDP cap) currently in force.
    pub budget: Watts,
    /// Per-core sensor data from the last completed epoch.
    pub cores: Vec<CoreObservation>,
    /// Measured total chip power over the last epoch.
    pub total_power: Watts,
}

impl Observation {
    /// Number of cores observed.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Measured chip power as a fraction of the budget (1.0 = exactly at
    /// budget). Returns 0 for a non-positive budget.
    pub fn budget_utilisation(&self) -> f64 {
        if self.budget.value() <= 0.0 {
            0.0
        } else {
            self.total_power / self.budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_epoch(ips: f64, instr: f64, temp: f64) -> CoreEpoch {
        CoreEpoch {
            level: LevelId(3),
            ips,
            instructions: instr,
            power: PowerBreakdown {
                dynamic: Watts::new(1.0),
                leakage: Watts::new(0.5),
            },
            temperature: Celsius::new(temp),
            counters: PhaseParams::new(1.0, 2.0, 0.8).unwrap(),
        }
    }

    #[test]
    fn report_aggregates() {
        let r = EpochReport {
            epoch: 0,
            dt: Seconds::new(1e-3),
            cores: vec![core_epoch(1e9, 1e6, 70.0), core_epoch(2e9, 2e6, 75.0)],
            total_power: Watts::new(3.0),
            measured_power: Watts::new(3.1),
            energy: Joules::new(3e-3),
        };
        assert_eq!(r.total_instructions(), 3e6);
        assert_eq!(r.throughput_ips(), 3e9);
        assert_eq!(r.max_temperature().value(), 75.0);
    }

    #[test]
    fn budget_utilisation() {
        let obs = Observation {
            epoch: 1,
            dt: Seconds::new(1e-3),
            budget: Watts::new(10.0),
            cores: vec![],
            total_power: Watts::new(12.0),
        };
        assert!((obs.budget_utilisation() - 1.2).abs() < 1e-12);
        let zero = Observation {
            budget: Watts::ZERO,
            ..obs
        };
        assert_eq!(zero.budget_utilisation(), 0.0);
    }

    #[test]
    fn core_observation_memory_boundedness_in_range() {
        let c = CoreObservation {
            level: LevelId(0),
            ips: 1e9,
            power: Watts::new(1.0),
            temperature: Celsius::new(60.0),
            counters: PhaseParams::new(1.0, 15.0, 0.6).unwrap(),
        };
        let mb = c.memory_boundedness();
        assert!((0.0..=1.0).contains(&mb));
        assert!(mb > 0.3);
    }
}
