//! System-side tracing: fault edges, VF switches and epoch boundaries.
//!
//! [`SysTracer`] is the simulator's half of the observability layer (the
//! controller records its own decision events — see `odrl-core`). It is
//! constructed only when [`ObsConfig::enabled`] is set, so a disabled run
//! carries a `None` and every recording site reduces to one branch; when
//! enabled, every ring and metric buffer is allocated at construction and
//! steady-state recording never touches the heap.

use odrl_faults::FaultState;
use odrl_obs::{
    CounterId, Event, EventCounts, EventRecord, FaultClass, MetricsRegistry, MetricsSnapshot,
    ObsConfig, TraceRing, CHIP,
};

/// Flight recorder for the simulator's events, plus per-kind counters.
#[derive(Debug, Clone)]
pub struct SysTracer {
    ring: TraceRing,
    /// Last epoch's per-core fault-class bitmask (see
    /// `FaultState::class_mask`); edges against it become
    /// inject/clear events.
    prev_mask: Vec<u8>,
    prev_chip_mask: u8,
    metrics: MetricsRegistry,
    c_class_injected: [CounterId; 6],
    c_injected: CounterId,
    c_cleared: CounterId,
    c_vf: CounterId,
    snapshot: MetricsSnapshot,
}

impl SysTracer {
    /// Preallocates a tracer for `cores` cores under `config`.
    pub fn new(config: &ObsConfig, cores: usize) -> Self {
        let mut metrics = MetricsRegistry::new();
        let c_class_injected = [
            metrics.counter("faults_sensor_injected"),
            metrics.counter("faults_actuator_injected"),
            metrics.counter("faults_budget_injected"),
            metrics.counter("faults_unplug_injected"),
            metrics.counter("faults_throttle_injected"),
            metrics.counter("faults_chip_sensor_injected"),
        ];
        let c_injected = metrics.counter("faults_injected");
        let c_cleared = metrics.counter("faults_cleared");
        let c_vf = metrics.counter("vf_switches");
        let mut snapshot = MetricsSnapshot::new();
        metrics.snapshot_into(0, &mut snapshot);
        Self {
            ring: TraceRing::with_capacity(config.effective_ring_capacity()),
            prev_mask: vec![0; cores],
            prev_chip_mask: 0,
            metrics,
            c_class_injected,
            c_injected,
            c_cleared,
            c_vf,
            snapshot,
        }
    }

    /// Diffs the fault schedule's per-core and chip class masks against
    /// the previous epoch, recording one inject/clear event per edge.
    /// Call right after the fault engine's `begin_epoch`.
    #[inline]
    pub fn record_fault_edges(&mut self, epoch: u64, fs: Option<&FaultState>) {
        let Some(fs) = fs else { return };
        for i in 0..self.prev_mask.len() {
            let mask = fs.class_mask(i);
            let flipped = mask ^ self.prev_mask[i];
            if flipped != 0 {
                self.record_mask_edges(epoch, i as u32, mask, flipped);
                self.prev_mask[i] = mask;
            }
        }
        let chip = fs.chip_class_mask();
        let flipped = chip ^ self.prev_chip_mask;
        if flipped != 0 {
            self.record_mask_edges(epoch, CHIP, chip, flipped);
            self.prev_chip_mask = chip;
        }
    }

    fn record_mask_edges(&mut self, epoch: u64, core: u32, mask: u8, flipped: u8) {
        for (bit, &class) in FaultClass::ALL.iter().enumerate() {
            let b = 1u8 << bit;
            if flipped & b == 0 {
                continue;
            }
            if mask & b != 0 {
                self.ring.record(epoch, core, Event::FaultInjected { class });
                self.metrics.inc(self.c_class_injected[bit]);
                self.metrics.inc(self.c_injected);
            } else {
                self.ring.record(epoch, core, Event::FaultCleared { class });
                self.metrics.inc(self.c_cleared);
            }
        }
    }

    /// Records a VF-level change on one core (call only on change).
    #[inline]
    pub fn record_vf(&mut self, epoch: u64, core: u32, level: u8) {
        self.ring.record(epoch, core, Event::VfAction { level });
        self.metrics.inc(self.c_vf);
    }

    /// Records the end-of-epoch boundary and snapshots the metrics.
    #[inline]
    pub fn record_epoch(&mut self, epoch: u64, power_w: f64) {
        self.ring.record(epoch, CHIP, Event::Epoch { power_w });
        self.metrics.snapshot_into(epoch, &mut self.snapshot);
    }

    /// Appends the held records (oldest → newest) onto `out`.
    pub fn extend_into(&self, out: &mut Vec<EventRecord>) {
        self.ring.extend_into(out);
    }

    /// The tracer's ring (len/capacity/dropped introspection).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The tracer's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics snapshot taken at the last epoch boundary.
    pub fn last_snapshot(&self) -> &MetricsSnapshot {
        &self.snapshot
    }

    /// Per-kind event totals recorded so far (the system-side half of a
    /// run's [`EventCounts`]).
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            faults_injected: self.metrics.counter_value(self.c_injected),
            faults_cleared: self.metrics.counter_value(self.c_cleared),
            ..EventCounts::default()
        }
    }
}
