//! Manufacturing process variation: core-to-core power heterogeneity.
//!
//! Identically designed cores do not come out of the fab identical:
//! within-die variation gives each core its own effective capacitance
//! (dynamic power) and, much more strongly, its own leakage current —
//! leakage spreads of 2–3× across a die are routinely reported. Controllers
//! that assume nominal per-core models systematically misallocate power on
//! real silicon; per-core *learned* models adapt to each core's actual
//! behaviour (the variation-aware DVFS argument of Herbert & Marculescu,
//! HPCA 2009, from the same research group as this paper).
//!
//! [`VariationModel`] draws one log-normal multiplier per core for dynamic
//! power and one for leakage, deterministically from a seed. The simulator
//! applies them to the true physics; the [`crate::SystemSpec`] keeps the
//! *nominal* models, so predictive baselines mis-estimate exactly the way
//! they would in production.

use crate::error::SystemError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Log-normal core-to-core variation of dynamic and leakage power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Sigma of `ln(dynamic multiplier)` (0 disables; typical ≤ 0.05).
    pub sigma_dynamic: f64,
    /// Sigma of `ln(leakage multiplier)` (0 disables; typical 0.2–0.4).
    pub sigma_leakage: f64,
}

impl VariationModel {
    /// No variation: every core is nominal.
    pub fn none() -> Self {
        Self {
            sigma_dynamic: 0.0,
            sigma_leakage: 0.0,
        }
    }

    /// A typical 22 nm within-die corner: 3 % dynamic spread, 30 % leakage
    /// spread (log-sigma).
    pub fn typical() -> Self {
        Self {
            sigma_dynamic: 0.03,
            sigma_leakage: 0.30,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] for non-finite or negative
    /// sigmas, or sigmas above 1 (beyond physical plausibility).
    pub fn validate(&self) -> Result<(), SystemError> {
        for (name, v) in [
            ("sigma_dynamic", self.sigma_dynamic),
            ("sigma_leakage", self.sigma_leakage),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(SystemError::InvalidConfig {
                    field: "variation",
                    reason: format!("{name} must be in [0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Draws `(dynamic multiplier, leakage multiplier)` for `cores` cores,
    /// deterministically from `seed`. Multipliers are log-normal with
    /// median 1.
    pub fn sample(&self, cores: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_11C0_0EAD);
        (0..cores)
            .map(|_| {
                let g1 = gaussian(&mut rng);
                let g2 = gaussian(&mut rng);
                (
                    (self.sigma_dynamic * g1).exp(),
                    (self.sigma_leakage * g2).exp(),
                )
            })
            .collect()
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::none()
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_all_ones() {
        let m = VariationModel::none();
        for (d, l) in m.sample(16, 42) {
            assert_eq!(d, 1.0);
            assert_eq!(l, 1.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = VariationModel::typical();
        assert_eq!(m.sample(32, 7), m.sample(32, 7));
        assert_ne!(m.sample(32, 7), m.sample(32, 8));
    }

    #[test]
    fn leakage_spread_exceeds_dynamic_spread() {
        let m = VariationModel::typical();
        let samples = m.sample(500, 3);
        let spread = |f: fn(&(f64, f64)) -> f64| {
            let max = samples.iter().map(f).fold(0.0, f64::max);
            let min = samples.iter().map(f).fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(|s| s.1) > 2.0, "leakage spread should be >2x");
        assert!(spread(|s| s.0) < spread(|s| s.1));
    }

    #[test]
    fn multipliers_have_median_near_one() {
        let m = VariationModel::typical();
        let mut leak: Vec<f64> = m.sample(1001, 9).iter().map(|s| s.1).collect();
        leak.sort_by(f64::total_cmp);
        let median = leak[500];
        assert!((0.9..1.1).contains(&median), "median {median}");
    }

    #[test]
    fn validation() {
        assert!(VariationModel::none().validate().is_ok());
        assert!(VariationModel::typical().validate().is_ok());
        assert!(VariationModel {
            sigma_dynamic: -0.1,
            sigma_leakage: 0.0
        }
        .validate()
        .is_err());
        assert!(VariationModel {
            sigma_dynamic: 0.0,
            sigma_leakage: 1.5
        }
        .validate()
        .is_err());
    }
}
