//! Deterministic sharded execution over per-core state.
//!
//! The simulator's per-core work (performance model, power, sensors) is
//! embarrassingly parallel *within* an epoch; the couplings between cores
//! (barrier gating, the thermal grid, NoC congestion) are applied as serial
//! fixed-order reductions between the parallel passes. Combined with
//! per-core RNG streams — every random draw belongs to exactly one core and
//! its stream is derived from the master seed and the core index, never from
//! execution order — the output is **bit-identical** for any shard count,
//! including [`Parallelism::Serial`].
//!
//! Shards are contiguous core ranges and results are concatenated in shard
//! order. Execution uses a small persistent worker pool built on
//! `std::thread` + `Mutex`/`Condvar` only (no external dependencies): an
//! epoch's work (tens of microseconds) is far cheaper than spawning even one
//! OS thread, so per-call `thread::scope` spawning would make every sharded
//! run slower than serial. The pool parks its workers between epochs and
//! hands each job over with a single lock/notify round trip instead. On a
//! machine with no spare hardware threads the pool degenerates to the
//! calling thread running every shard back to back — same chunk boundaries,
//! same results, no handoff cost.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::thread;

/// How the per-core work inside an epoch is executed.
///
/// The default is [`Parallelism::Serial`], which runs everything on the
/// calling thread exactly as the simulator always has. Because random draws
/// use per-core streams, every variant produces bit-identical results; the
/// knob only trades wall-clock time for threads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Everything on the calling thread (the default).
    #[default]
    Serial,
    /// A fixed number of worker shards (clamped to at least 1).
    Threads(usize),
    /// One shard per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Resolves the shard count for `n` work items: at least 1, at most `n`.
    pub fn shards(self, n: usize) -> usize {
        let want = match self {
            Self::Serial => 1,
            Self::Threads(k) => k.max(1),
            Self::Auto => thread::available_parallelism().map_or(1, usize::from),
        };
        want.min(n.max(1))
    }

    /// Whether this setting ever spawns worker threads.
    pub fn is_parallel(self) -> bool {
        !matches!(self, Self::Serial)
    }
}

/// Derives the seed for one core's private RNG stream from a base seed.
///
/// SplitMix64 finalizer over `base + index`: adjacent cores get
/// well-decorrelated streams, and the mapping depends only on the master
/// seed and the core index — never on shard layout or execution order.
#[must_use]
pub fn stream_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `0..n`, sharded across pool workers, collecting results
/// in index order. `f(i)` must not depend on any other index's evaluation.
pub fn map_sharded<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let shards = par.shards(n);
    if shards <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(shards);
    let slots: Vec<Mutex<Vec<R>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    pool::global().run_shards(shards, &|k| {
        let lo = k * chunk;
        let hi = (lo + chunk).min(n);
        *slots[k].lock().expect("result slot poisoned") = (lo..hi).map(&f).collect();
    });
    slots
        .into_iter()
        .flat_map(|m| m.into_inner().expect("result slot poisoned"))
        .collect()
}

/// Maps `f` over two zipped mutable slices, sharded across pool workers,
/// collecting results in index order. Each index's items are visited by
/// exactly one thread; `f(i, a, b)` must not depend on evaluation order.
pub fn zip_map_sharded<A, B, R, F>(par: Parallelism, a: &mut [A], b: &mut [B], f: F) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut A, &mut B) -> R + Sync,
{
    let n = a.len();
    assert_eq!(n, b.len(), "zipped slices must have equal length");
    let shards = par.shards(n);
    if shards <= 1 {
        return a
            .iter_mut()
            .zip(b.iter_mut())
            .enumerate()
            .map(|(i, (x, y))| f(i, x, y))
            .collect();
    }
    let chunk = n.div_ceil(shards);
    let work: Vec<Mutex<(&mut [A], &mut [B])>> = a
        .chunks_mut(chunk)
        .zip(b.chunks_mut(chunk))
        .map(|(ca, cb)| Mutex::new((ca, cb)))
        .collect();
    let slots: Vec<Mutex<Vec<R>>> = (0..work.len()).map(|_| Mutex::new(Vec::new())).collect();
    pool::global().run_shards(work.len(), &|k| {
        let mut w = work[k].lock().expect("work slot poisoned");
        let (ca, cb) = &mut *w;
        let base = k * chunk;
        *slots[k].lock().expect("result slot poisoned") = ca
            .iter_mut()
            .zip(cb.iter_mut())
            .enumerate()
            .map(|(j, (x, y))| f(base + j, x, y))
            .collect();
    });
    slots
        .into_iter()
        .flat_map(|m| m.into_inner().expect("result slot poisoned"))
        .collect()
}

/// Per-core state that can be split into contiguous shard chunks for
/// in-place sharded mutation (see [`shard_chunks`]).
///
/// Implemented for `&mut [T]` and for tuples of up to nine `ShardSplit`
/// values of equal length, so a pass over several parallel arrays (the
/// struct-of-arrays layout in [`crate::soa::CoreArrays`]) can be sharded
/// without collecting results into a fresh `Vec`.
pub trait ShardSplit: Sized {
    /// Number of per-core items in this state.
    fn shard_len(&self) -> usize;
    /// Splits into the leading `mid` items and the rest.
    fn split_at_mut(self, mid: usize) -> (Self, Self);
}

impl<T> ShardSplit for &mut [T] {
    fn shard_len(&self) -> usize {
        self.len()
    }
    fn split_at_mut(self, mid: usize) -> (Self, Self) {
        <[T]>::split_at_mut(self, mid)
    }
}

macro_rules! impl_shard_split_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ShardSplit),+> ShardSplit for ($($name,)+) {
            fn shard_len(&self) -> usize {
                let len = self.0.shard_len();
                $(debug_assert_eq!(self.$idx.shard_len(), len,
                    "sharded tuple slices must have equal length");)+
                len
            }
            #[allow(non_snake_case)]
            fn split_at_mut(self, mid: usize) -> (Self, Self) {
                $(let $name = self.$idx.split_at_mut(mid);)+
                (($($name.0,)+), ($($name.1,)+))
            }
        }
    };
}

impl_shard_split_tuple!(A: 0);
impl_shard_split_tuple!(A: 0, B: 1);
impl_shard_split_tuple!(A: 0, B: 1, C: 2);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_shard_split_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);

/// Runs `f(base_index, chunk)` over contiguous chunks of `state`, sharded
/// across pool workers.
///
/// This is the zero-collection counterpart of [`zip_map_sharded`]: the
/// caller's closure writes its results directly into the mutable chunk it
/// receives, so the serial path ([`Parallelism::Serial`] or a single shard)
/// performs **no heap allocation at all** — it is exactly `f(0, state)`.
/// Chunk boundaries match the other sharded helpers (`ceil(n / shards)`
/// items per chunk), and per-item work must not depend on any other item's
/// evaluation, so results are bit-identical for every shard count.
pub fn shard_chunks<S, F>(par: Parallelism, state: S, f: F)
where
    S: ShardSplit + Send,
    F: Fn(usize, S) + Sync,
{
    let n = state.shard_len();
    let shards = par.shards(n);
    if shards <= 1 {
        f(0, state);
        return;
    }
    let chunk = n.div_ceil(shards);
    let mut work: Vec<Mutex<Option<(usize, S)>>> = Vec::with_capacity(shards);
    let mut base = 0usize;
    let mut rest = Some(state);
    while let Some(s) = rest.take() {
        if s.shard_len() > chunk {
            let (head, tail) = s.split_at_mut(chunk);
            work.push(Mutex::new(Some((base, head))));
            base += chunk;
            rest = Some(tail);
        } else {
            work.push(Mutex::new(Some((base, s))));
        }
    }
    pool::global().run_shards(work.len(), &|k| {
        let (b, chunk_state) = work[k]
            .lock()
            .expect("work slot poisoned")
            .take()
            .expect("each chunk is taken exactly once");
        f(b, chunk_state);
    });
}

/// Maps `f` over three zipped mutable slices, sharded across pool workers,
/// collecting results in index order. Same contract as
/// [`zip_map_sharded`].
pub fn zip3_map_sharded<A, B, C, R, F>(
    par: Parallelism,
    a: &mut [A],
    b: &mut [B],
    c: &mut [C],
    f: F,
) -> Vec<R>
where
    A: Send,
    B: Send,
    C: Send,
    R: Send,
    F: Fn(usize, &mut A, &mut B, &mut C) -> R + Sync,
{
    let n = a.len();
    assert!(
        n == b.len() && n == c.len(),
        "zipped slices must have equal length"
    );
    let shards = par.shards(n);
    if shards <= 1 {
        return a
            .iter_mut()
            .zip(b.iter_mut())
            .zip(c.iter_mut())
            .enumerate()
            .map(|(i, ((x, y), z))| f(i, x, y, z))
            .collect();
    }
    let chunk = n.div_ceil(shards);
    #[allow(clippy::type_complexity)]
    let work: Vec<Mutex<(&mut [A], &mut [B], &mut [C])>> = a
        .chunks_mut(chunk)
        .zip(b.chunks_mut(chunk))
        .zip(c.chunks_mut(chunk))
        .map(|((ca, cb), cc)| Mutex::new((ca, cb, cc)))
        .collect();
    let slots: Vec<Mutex<Vec<R>>> = (0..work.len()).map(|_| Mutex::new(Vec::new())).collect();
    pool::global().run_shards(work.len(), &|k| {
        let mut w = work[k].lock().expect("work slot poisoned");
        let (ca, cb, cc) = &mut *w;
        let base = k * chunk;
        *slots[k].lock().expect("result slot poisoned") = ca
            .iter_mut()
            .zip(cb.iter_mut())
            .zip(cc.iter_mut())
            .enumerate()
            .map(|(j, ((x, y), z))| f(base + j, x, y, z))
            .collect();
    });
    slots
        .into_iter()
        .flat_map(|m| m.into_inner().expect("result slot poisoned"))
        .collect()
}

mod pool {
    //! A persistent shard-execution pool.
    //!
    //! Epoch updates are microsecond-scale, so the pool must hand work to
    //! already-running threads: workers are spawned once (lazily, capped at
    //! the machine's hardware threads), park on a condvar between jobs, and
    //! each job is one borrowed `Fn(shard_index)` executed for every shard.
    //! The caller always runs shard 0 itself (plus any shards beyond the
    //! worker count), so a machine with no spare hardware threads executes
    //! all shards on the calling thread with zero handoff cost.
    //!
    //! The only unsafe code is the lifetime erasure of the borrowed job
    //! closure; `run_shards` never returns before every worker that picked
    //! the job up has finished it, so the borrow strictly outlives all uses.

    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, OnceLock};
    use std::thread;

    /// Type-erased pointer to the caller's borrowed shard closure.
    #[derive(Clone, Copy)]
    struct JobPtr(*const (dyn Fn(usize) + Sync));

    // SAFETY: the pointee is `Sync` (shared access from any thread is fine)
    // and `run_shards` keeps the referent alive until the job completes.
    unsafe impl Send for JobPtr {}

    struct State {
        job: Option<JobPtr>,
        /// Total shards of the current job (workers run `1..=participants`).
        shards: usize,
        /// Bumped once per published job so parked workers can detect it.
        epoch: u64,
        /// Worker shards not yet finished; the caller waits for zero.
        remaining: usize,
        panicked: bool,
    }

    pub(super) struct ShardPool {
        state: Mutex<State>,
        work: Condvar,
        done: Condvar,
        /// Serializes concurrent `run_shards` callers (one job at a time).
        submit: Mutex<()>,
        /// Workers spawned so far; grown on demand up to `max_workers`.
        spawned: Mutex<usize>,
        max_workers: usize,
    }

    /// The process-wide pool, created on first parallel use. It keeps at
    /// most `available_parallelism - 1` workers, so a machine with a single
    /// hardware thread gets none: every shard then runs on the calling
    /// thread, and sharded execution costs the same as serial.
    pub(super) fn global() -> &'static ShardPool {
        static POOL: OnceLock<&'static ShardPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let spare = thread::available_parallelism().map_or(1, usize::from) - 1;
            Box::leak(Box::new(ShardPool::new(spare)))
        })
    }

    impl ShardPool {
        pub(super) fn new(max_workers: usize) -> Self {
            ShardPool {
                state: Mutex::new(State {
                    job: None,
                    shards: 0,
                    epoch: 0,
                    remaining: 0,
                    panicked: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                submit: Mutex::new(()),
                spawned: Mutex::new(0),
                max_workers,
            }
        }
        /// Runs `f(k)` for every shard `k` in `0..shards`, returning once
        /// all shards have finished. Shards run concurrently when workers
        /// are available; excess shards run on the calling thread. Panics
        /// (rethrown here) leave the pool reusable.
        ///
        /// `f` must not itself call `run_shards` (the pool runs one job at
        /// a time and the nested submission would deadlock).
        pub(super) fn run_shards(&'static self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
            if shards <= 1 {
                f(0);
                return;
            }
            let participants = shards.saturating_sub(1).min(self.max_workers);
            if participants == 0 {
                for k in 0..shards {
                    f(k);
                }
                return;
            }
            self.ensure_workers(participants);
            let _submit = self.submit.lock().expect("pool submit lock poisoned");
            {
                let mut st = self.state.lock().expect("pool state poisoned");
                // SAFETY: erasing the closure's lifetime is sound because
                // this function blocks on `remaining == 0` below before
                // returning (even on panic), so no worker can touch the
                // pointer after the borrow ends.
                st.job = Some(JobPtr(unsafe {
                    std::mem::transmute::<
                        *const (dyn Fn(usize) + Sync),
                        *const (dyn Fn(usize) + Sync),
                    >(f as *const _)
                }));
                st.shards = participants + 1;
                st.epoch += 1;
                st.remaining = participants;
                st.panicked = false;
                self.work.notify_all();
            }
            // The caller's own share: shard 0 plus anything beyond the
            // worker count. A panic is deferred until the workers are done
            // so the borrowed closure stays valid for them.
            let mine = catch_unwind(AssertUnwindSafe(|| {
                f(0);
                for k in (participants + 1)..shards {
                    f(k);
                }
            }));
            let worker_panicked = {
                let mut st = self.state.lock().expect("pool state poisoned");
                while st.remaining > 0 {
                    st = self.done.wait(st).expect("pool state poisoned");
                }
                st.job = None;
                st.panicked
            };
            drop(_submit);
            match mine {
                Err(cause) => resume_unwind(cause),
                Ok(()) if worker_panicked => panic!("shard worker panicked"),
                Ok(()) => {}
            }
        }

        fn ensure_workers(&'static self, need: usize) {
            let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
            while *spawned < need.min(self.max_workers) {
                let index = *spawned;
                thread::Builder::new()
                    .name(format!("odrl-shard-{index}"))
                    .spawn(move || self.worker_loop(index))
                    .expect("failed to spawn shard worker");
                *spawned += 1;
            }
        }

        fn worker_loop(&'static self, index: usize) {
            let mut seen = 0u64;
            loop {
                let (job, shards) = {
                    let mut st = self.state.lock().expect("pool state poisoned");
                    while st.epoch == seen {
                        st = self.work.wait(st).expect("pool state poisoned");
                    }
                    seen = st.epoch;
                    (st.job, st.shards)
                };
                let my_shard = index + 1;
                let Some(job) = job else { continue };
                if my_shard >= shards {
                    continue;
                }
                // SAFETY: the publishing `run_shards` call is still blocked
                // waiting for `remaining` to reach zero, which includes this
                // worker's decrement below, so the closure is alive.
                let f = unsafe { &*job.0 };
                let ok = catch_unwind(AssertUnwindSafe(|| f(my_shard))).is_ok();
                let mut st = self.state.lock().expect("pool state poisoned");
                if !ok {
                    st.panicked = true;
                }
                st.remaining -= 1;
                if st.remaining == 0 {
                    self.done.notify_all();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_clamp() {
        assert_eq!(Parallelism::Serial.shards(100), 1);
        assert_eq!(Parallelism::Threads(4).shards(100), 4);
        assert_eq!(Parallelism::Threads(0).shards(100), 1);
        assert_eq!(Parallelism::Threads(16).shards(3), 3);
        assert!(Parallelism::Auto.shards(1000) >= 1);
    }

    #[test]
    fn map_sharded_matches_serial() {
        let serial = map_sharded(Parallelism::Serial, 37, |i| i * i);
        for threads in [2, 4, 8] {
            let par = map_sharded(Parallelism::Threads(threads), 37, |i| i * i);
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn zip_map_sharded_mutates_every_item_once() {
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let mut a = vec![0u64; 25];
            let mut b = vec![0u64; 25];
            let r = zip_map_sharded(par, &mut a, &mut b, |i, x, y| {
                *x += 1;
                *y += i as u64;
                i
            });
            assert_eq!(r, (0..25).collect::<Vec<_>>());
            assert!(a.iter().all(|&v| v == 1));
            assert_eq!(b, (0..25).map(|i| i as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_chunks_covers_every_index_once() {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(3),
            Parallelism::Threads(8),
        ] {
            let mut a = vec![0u64; 37];
            let mut b = vec![0u64; 37];
            shard_chunks(par, (&mut a[..], &mut b[..]), |base, (ca, cb)| {
                for j in 0..ca.len() {
                    ca[j] += 1;
                    cb[j] = (base + j) as u64;
                }
            });
            assert!(a.iter().all(|&v| v == 1), "every item visited once");
            assert_eq!(b, (0..37).map(|i| i as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_split_tuple_boundaries_match() {
        let mut a = [0u32; 10];
        let mut b = [0u32; 10];
        let state = (&mut a[..], &mut b[..]);
        assert_eq!(state.shard_len(), 10);
        let (head, tail) = state.split_at_mut(4);
        assert_eq!(head.0.len(), 4);
        assert_eq!(head.1.len(), 4);
        assert_eq!(tail.0.len(), 6);
        assert_eq!(tail.1.len(), 6);
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..1024).map(|i| stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    /// A private pool with real workers, so the cross-thread handoff
    /// protocol is exercised even when the test host has a single hardware
    /// thread (where the global pool keeps zero workers).
    fn test_pool(workers: usize) -> &'static pool::ShardPool {
        Box::leak(Box::new(pool::ShardPool::new(workers)))
    }

    #[test]
    fn pool_runs_every_shard_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = test_pool(2);
        for shards in [1usize, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.run_shards(shards, &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "every shard of {shards} must run exactly once"
            );
        }
    }

    #[test]
    fn pool_survives_worker_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = test_pool(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_shards(3, &|k| {
                if k > 0 {
                    panic!("shard {k} fails");
                }
            });
        }));
        assert!(caught.is_err(), "worker panics must propagate to the caller");
        // The pool stays usable after a panicking job.
        let done = AtomicUsize::new(0);
        pool.run_shards(3, &|_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn serde_round_trip_and_default() {
        let p = Parallelism::Threads(8);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Parallelism>(&json).unwrap(), p);
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }
}
