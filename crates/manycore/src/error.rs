//! Error types for the many-core simulator.

use odrl_power::PowerModelError;
use odrl_thermal::ThermalError;
use odrl_workload::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors produced when building or stepping a [`crate::System`].
#[derive(Debug)]
#[non_exhaustive]
pub enum SystemError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The action vector length does not match the number of cores.
    ActionLengthMismatch {
        /// Number of actions supplied.
        supplied: usize,
        /// Number of cores in the system.
        expected: usize,
    },
    /// An error from the power-model substrate.
    Power(PowerModelError),
    /// An error from the thermal substrate.
    Thermal(ThermalError),
    /// An error from the workload substrate.
    Workload(WorkloadError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            Self::ActionLengthMismatch { supplied, expected } => write!(
                f,
                "action vector has {supplied} entries but the system has {expected} cores"
            ),
            Self::Power(e) => write!(f, "power model: {e}"),
            Self::Thermal(e) => write!(f, "thermal model: {e}"),
            Self::Workload(e) => write!(f, "workload: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Power(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PowerModelError> for SystemError {
    fn from(e: PowerModelError) -> Self {
        Self::Power(e)
    }
}

impl From<ThermalError> for SystemError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<WorkloadError> for SystemError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors_with_source() {
        let e = SystemError::from(PowerModelError::EmptyVfTable);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("power model"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SystemError>();
    }
}
