//! Run telemetry: aggregate counters and optional per-epoch series.

use crate::report::EpochReport;
use odrl_power::{Celsius, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One row of the recorded per-epoch series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySample {
    /// Epoch index.
    pub epoch: u64,
    /// Simulated time at the end of the epoch.
    pub time: Seconds,
    /// True total chip power.
    pub power: Watts,
    /// Aggregate throughput (instructions per second).
    pub throughput_ips: f64,
    /// Hottest core temperature.
    pub max_temperature: Celsius,
}

/// Aggregated statistics of a run, optionally with the full per-epoch
/// series for plotting.
///
/// Budget-aware metrics (overshoot, throughput per over-budget energy) live
/// in `odrl-metrics`; telemetry only tracks budget-independent ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    total_instructions: f64,
    total_energy: Joules,
    elapsed: Seconds,
    epochs: u64,
    peak_power: Watts,
    peak_temperature: Celsius,
    record_series: bool,
    /// Record every Nth epoch into the series (0 and 1 both mean every
    /// epoch). Aggregates are never decimated — only the plotting series.
    #[serde(default)]
    decimate: u64,
    series: Vec<TelemetrySample>,
}

impl Telemetry {
    /// Creates telemetry that keeps aggregates only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates telemetry that additionally records the full per-epoch
    /// series (costs memory proportional to epochs).
    pub fn with_series() -> Self {
        Self {
            record_series: true,
            ..Self::default()
        }
    }

    /// Creates telemetry that records every `every_n`-th epoch into the
    /// series (`0` and `1` both mean every epoch), bounding series memory
    /// for long-horizon runs to `epochs / every_n` samples. Aggregates
    /// (instructions, energy, peaks, rates) are computed from every epoch
    /// regardless of decimation.
    pub fn with_series_decimated(every_n: u64) -> Self {
        Self {
            record_series: true,
            decimate: every_n,
            ..Self::default()
        }
    }

    /// Folds one epoch report into the aggregates.
    pub fn record(&mut self, report: &EpochReport) {
        self.total_instructions += report.total_instructions();
        self.total_energy += report.energy;
        self.elapsed += report.dt;
        self.epochs += 1;
        self.peak_power = self.peak_power.max(report.total_power);
        self.peak_temperature = self.peak_temperature.max(report.max_temperature());
        if self.record_series && report.epoch.is_multiple_of(self.decimate.max(1)) {
            self.series.push(TelemetrySample {
                epoch: report.epoch,
                time: self.elapsed,
                power: report.total_power,
                throughput_ips: report.throughput_ips(),
                max_temperature: report.max_temperature(),
            });
        }
    }

    /// Total instructions retired across all cores and epochs.
    pub fn total_instructions(&self) -> f64 {
        self.total_instructions
    }

    /// Total energy consumed.
    pub fn total_energy(&self) -> Joules {
        self.total_energy
    }

    /// Simulated wall-clock time covered.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Number of epochs recorded.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Highest total chip power seen.
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// Highest core temperature seen.
    pub fn peak_temperature(&self) -> Celsius {
        self.peak_temperature
    }

    /// Mean throughput in instructions per second over the whole run.
    pub fn average_throughput_ips(&self) -> f64 {
        if self.elapsed.value() <= 0.0 {
            0.0
        } else {
            self.total_instructions / self.elapsed.value()
        }
    }

    /// Overall energy efficiency in instructions per joule.
    pub fn instructions_per_joule(&self) -> f64 {
        if self.total_energy.value() <= 0.0 {
            0.0
        } else {
            self.total_instructions / self.total_energy.value()
        }
    }

    /// The recorded per-epoch series (empty unless built
    /// [`Telemetry::with_series`]).
    pub fn series(&self) -> &[TelemetrySample] {
        &self.series
    }

    /// Renders the series as CSV (`epoch,time_s,power_w,throughput_ips,max_temp_c`).
    pub fn series_csv(&self) -> String {
        let mut out = String::from("epoch,time_s,power_w,throughput_ips,max_temp_c\n");
        for s in &self.series {
            out.push_str(&format!(
                "{},{:.6},{:.3},{:.3e},{:.2}\n",
                s.epoch,
                s.time.value(),
                s.power.value(),
                s.throughput_ips,
                s.max_temperature.value()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CoreEpoch;
    use odrl_power::{LevelId, PowerBreakdown};
    use odrl_workload::PhaseParams;

    fn report(epoch: u64, power: f64, instr: f64) -> EpochReport {
        EpochReport {
            epoch,
            dt: Seconds::new(1e-3),
            cores: vec![CoreEpoch {
                level: LevelId(0),
                ips: instr / 1e-3,
                instructions: instr,
                power: PowerBreakdown {
                    dynamic: Watts::new(power),
                    leakage: Watts::ZERO,
                },
                temperature: Celsius::new(60.0 + epoch as f64),
                counters: PhaseParams::new(1.0, 1.0, 1.0).unwrap(),
            }],
            total_power: Watts::new(power),
            measured_power: Watts::new(power),
            energy: Joules::new(power * 1e-3),
        }
    }

    #[test]
    fn aggregates_accumulate() {
        let mut t = Telemetry::new();
        t.record(&report(0, 10.0, 1e6));
        t.record(&report(1, 20.0, 2e6));
        assert_eq!(t.total_instructions(), 3e6);
        assert!((t.total_energy().value() - 0.03).abs() < 1e-12);
        assert_eq!(t.epochs(), 2);
        assert_eq!(t.peak_power().value(), 20.0);
        assert_eq!(t.peak_temperature().value(), 61.0);
        assert!((t.elapsed().value() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn derived_rates() {
        let mut t = Telemetry::new();
        t.record(&report(0, 10.0, 1e6));
        assert!((t.average_throughput_ips() - 1e9).abs() < 1.0);
        assert!((t.instructions_per_joule() - 1e8).abs() < 1.0);
    }

    #[test]
    fn empty_telemetry_rates_are_zero() {
        let t = Telemetry::new();
        assert_eq!(t.average_throughput_ips(), 0.0);
        assert_eq!(t.instructions_per_joule(), 0.0);
    }

    #[test]
    fn decimation_thins_series_but_not_aggregates() {
        let mut full = Telemetry::with_series();
        let mut thin = Telemetry::with_series_decimated(4);
        for epoch in 0..10 {
            let r = report(epoch, 10.0 + epoch as f64, 1e6);
            full.record(&r);
            thin.record(&r);
        }
        // Epochs 0, 4, 8 survive decimation.
        assert_eq!(full.series().len(), 10);
        assert_eq!(thin.series().len(), 3);
        assert_eq!(
            thin.series().iter().map(|s| s.epoch).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
        // Every aggregate is identical to the undecimated run.
        assert_eq!(thin.total_instructions(), full.total_instructions());
        assert_eq!(thin.total_energy(), full.total_energy());
        assert_eq!(thin.elapsed(), full.elapsed());
        assert_eq!(thin.epochs(), full.epochs());
        assert_eq!(thin.peak_power(), full.peak_power());
        assert_eq!(thin.peak_temperature(), full.peak_temperature());
        assert_eq!(thin.average_throughput_ips(), full.average_throughput_ips());
        assert_eq!(thin.instructions_per_joule(), full.instructions_per_joule());
        // 0 and 1 both mean "every epoch".
        let mut zero = Telemetry::with_series_decimated(0);
        zero.record(&report(0, 1.0, 1e6));
        zero.record(&report(1, 1.0, 1e6));
        assert_eq!(zero.series().len(), 2);
    }

    #[test]
    fn series_only_when_enabled() {
        let mut plain = Telemetry::new();
        plain.record(&report(0, 1.0, 1e6));
        assert!(plain.series().is_empty());

        let mut rich = Telemetry::with_series();
        rich.record(&report(0, 1.0, 1e6));
        rich.record(&report(1, 2.0, 1e6));
        assert_eq!(rich.series().len(), 2);
        let csv = rich.series_csv();
        assert!(csv.starts_with("epoch,"));
        assert_eq!(csv.lines().count(), 3);
    }
}
