//! Struct-of-arrays core state and the reusable epoch scratch.
//!
//! The simulator's per-core state lives in [`CoreArrays`]: parallel flat
//! slices indexed by core, one per quantity (VF level, retired
//! instructions, dynamic/leakage power, temperature, sensor-noise streams,
//! process-variation factors, memory latency). The epoch kernel iterates
//! these slices in fixed passes instead of constructing per-core structs,
//! which keeps the hot loop allocation-free and lets sharded passes split
//! the arrays into contiguous chunks (see
//! [`crate::parallel::shard_chunks`]).
//!
//! `EpochScratch` (crate-private) holds every intermediate buffer one
//! epoch needs —
//! standalone/gated progress, captured counters, activity factors, power
//! totals, NoC miss rates, the thermal integration buffer and the NoC flow
//! buffers. It is created once per run (by [`crate::System::new`]) and
//! reused verbatim every epoch, so a steady-state epoch performs **zero**
//! heap allocations.

use crate::config::SystemConfig;
use crate::profile::StageTimers;
use odrl_faults::FaultState;
use odrl_noc::NocScratch;
use odrl_power::{Celsius, LevelId, VfLevel, Watts};
use odrl_workload::{PhaseParams, WorkloadStream};
use rand::rngs::StdRng;

/// Per-core simulator state in struct-of-arrays layout: field `f` of core
/// `i` is `f[i]`, and every vector has exactly one entry per core.
#[derive(Debug, Clone)]
pub struct CoreArrays {
    /// The VF level currently applied to each core.
    pub levels: Vec<LevelId>,
    /// Instructions each core retired in the last executed epoch.
    pub instructions: Vec<f64>,
    /// True dynamic power of each core over the last epoch (post-variation).
    pub dynamic: Vec<Watts>,
    /// True leakage power of each core over the last epoch (post-variation).
    pub leakage: Vec<Watts>,
    /// Die temperature of each core (end of the last epoch).
    pub temperature: Vec<Celsius>,
    /// One private sensor-noise stream per core, derived from the master
    /// seed and the core index, so draws never depend on execution order.
    pub sensor_rngs: Vec<StdRng>,
    /// The banked second Gaussian of each core's Box–Muller pair (`NaN` =
    /// empty slot); per-core state so sharded runs stay order-independent.
    pub gauss_spare: Vec<f64>,
    /// Each core's power as read through its sensor over the last epoch.
    pub measured: Vec<Watts>,
    /// Per-core (dynamic, leakage) process-variation multipliers.
    pub variation: Vec<(f64, f64)>,
    /// Per-core round-trip memory latency in nanoseconds (NoC-derived when
    /// a NoC model is configured, flat otherwise).
    pub mem_latency: Vec<f64>,
}

impl CoreArrays {
    /// Number of cores.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the system has no cores (never true for a valid config).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// Reusable per-epoch intermediates, created once per run and threaded
/// through the epoch pipeline so the steady-state kernel never allocates.
///
/// All buffers are pre-sized to the core count except the thermal and NoC
/// buffers, which size themselves on first use and are reused afterwards.
#[derive(Debug, Clone)]
pub(crate) struct EpochScratch {
    /// Whether each core's level changed this epoch (transition penalty).
    pub switched: Vec<bool>,
    /// The resolved VF operating point each core runs at this epoch.
    pub vf: Vec<VfLevel>,
    /// Standalone (ungated) instruction progress per core.
    pub standalone: Vec<f64>,
    /// Barrier-gated `(instructions, idle_fraction)` per core.
    pub gated: Vec<(f64, f64)>,
    /// The workload signature each core executes this epoch (captured
    /// before the stream advances).
    pub params: Vec<PhaseParams>,
    /// Effective cycles-per-instruction of each core this epoch (computed
    /// once in the VF/progress pass, reused by the activity pass).
    pub cpi: Vec<f64>,
    /// Effective switching-activity factor per core.
    pub activity: Vec<f64>,
    /// True total power per core (dynamic + leakage, post-variation).
    pub powers: Vec<Watts>,
    /// LLC misses per second per core, feeding the NoC congestion model.
    pub miss_rates: Vec<f64>,
    /// Forward-Euler integration buffer for the thermal grid.
    pub thermal: Vec<f64>,
    /// Per-link flow/wait buffers for the NoC latency model.
    pub noc: NocScratch,
    /// Per-epoch fault flags and actuator history, present only while a
    /// fault plan is attached (see [`crate::System::attach_faults`]).
    /// Refreshed in place every epoch, so fault-enabled steady-state
    /// epochs stay allocation-free.
    pub faults: Option<FaultState>,
    /// Uniform-draw scratch for the block-filled sensor noise pass.
    pub noise_u1: Vec<f64>,
    /// Second uniform per core (Box–Muller needs two).
    pub noise_u2: Vec<f64>,
    /// Per-stage time spent in the system side of the epoch pipeline.
    pub timers: StageTimers,
}

impl EpochScratch {
    /// Pre-sizes every per-core buffer for the given run.
    pub fn new(config: &SystemConfig, streams: &[WorkloadStream]) -> Self {
        let n = config.cores;
        let level0 = config.vf_table.level(LevelId(0));
        Self {
            switched: vec![false; n],
            vf: vec![level0; n],
            standalone: vec![0.0; n],
            gated: vec![(0.0, 0.0); n],
            params: streams.iter().map(|s| s.params()).collect(),
            cpi: vec![0.0; n],
            activity: vec![0.0; n],
            powers: vec![Watts::ZERO; n],
            miss_rates: vec![0.0; n],
            thermal: Vec::new(),
            noc: NocScratch::default(),
            faults: None,
            noise_u1: vec![0.0; n],
            noise_u2: vec![0.0; n],
            timers: StageTimers::new(),
        }
    }
}
