//! Epoch-based analytical many-core simulator with per-core DVFS domains.
//!
//! This crate is the substrate the paper's evaluation runs on (substituting
//! for a Sniper/McPAT-class simulator — see DESIGN.md). It ties together the
//! power, thermal and workload crates into a closed control loop:
//!
//! 1. a controller reads an [`Observation`] (per-core counters, powers,
//!    temperatures, chip power — exactly what real sensors expose),
//! 2. it picks one [`odrl_power::LevelId`] per core,
//! 3. [`System::step`] executes a control epoch: the [`PerfModel`] converts
//!    each core's current workload phase and frequency into retired
//!    instructions (memory-bound phases saturate), the power model converts
//!    the V/f point, activity and temperature into watts, and the RC
//!    thermal grid integrates the power map,
//! 4. telemetry and the [`EpochReport`] feed metrics and the next decision.
//!
//! # Example
//!
//! ```
//! use odrl_manycore::{System, SystemConfig};
//! use odrl_power::LevelId;
//!
//! let config = SystemConfig::builder().cores(16).seed(42).build()?;
//! let mut system = System::new(config)?;
//! // Run 10 epochs at a mid VF level.
//! for _ in 0..10 {
//!     system.step(&vec![LevelId(4); 16])?;
//! }
//! assert_eq!(system.telemetry().epochs(), 10);
//! # Ok::<(), odrl_manycore::SystemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod obs;
pub mod parallel;
pub mod perf;
pub mod profile;
pub mod report;
pub mod sensors;
pub mod soa;
pub mod sync;
pub mod system;
pub mod telemetry;
pub mod variation;

pub use config::{SystemConfig, SystemConfigBuilder, SystemSpec};
pub use error::SystemError;
pub use obs::SysTracer;
pub use parallel::Parallelism;
pub use perf::PerfModel;
pub use profile::{Stage, StageTimers};
pub use report::{CoreEpoch, CoreObservation, EpochReport, Observation};
pub use sensors::SensorModel;
pub use soa::CoreArrays;
pub use sync::SyncModel;
pub use system::System;
pub use telemetry::{Telemetry, TelemetrySample};
pub use variation::VariationModel;
