//! Power-sensor models: noise and quantisation on measured power.

use crate::error::SystemError;
use odrl_power::Watts;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A model of the on-die power sensors controllers read.
///
/// Real power telemetry is noisy and quantised; a robust controller must
/// tolerate both. `noise_rel` is the relative standard deviation of
/// multiplicative Gaussian noise (0 = ideal sensor), and `quantum` is the
/// reporting granularity in watts (0 = continuous).
///
/// ```
/// use odrl_manycore::SensorModel;
/// let ideal = SensorModel::ideal();
/// assert_eq!(ideal.noise_rel, 0.0);
/// let real = SensorModel::new(0.02, 0.125)?;
/// assert!(real.quantum > 0.0);
/// # Ok::<(), odrl_manycore::SystemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorModel {
    /// Relative standard deviation of multiplicative Gaussian noise.
    pub noise_rel: f64,
    /// Reporting quantum in watts (0 disables quantisation).
    pub quantum: f64,
    /// Probability that a read fails outright and holds the last reading
    /// (fault injection for controller-robustness testing; 0 disables).
    /// For a persistently dead sensor rail that reads zero, use
    /// `SensorFault::StuckZero` from `odrl-faults` instead.
    #[serde(default)]
    pub dropout: f64,
}

impl SensorModel {
    /// Creates a sensor model.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if `noise_rel` is not in
    /// `[0, 0.5]` or `quantum` is negative/non-finite.
    pub fn new(noise_rel: f64, quantum: f64) -> Result<Self, SystemError> {
        Self::with_dropout(noise_rel, quantum, 0.0)
    }

    /// Creates a sensor model with a read-failure (dropout) probability: a
    /// dropped read holds the previous reading, as a hung power-telemetry
    /// agent does in practice — the stale register value is what the
    /// controller sees. (An earlier revision returned zero watts, which
    /// controllers interpreted as free headroom and ramped up; that mode
    /// is now the explicit `SensorFault::StuckZero` in `odrl-faults`.)
    ///
    /// # Errors
    ///
    /// As [`SensorModel::new`]; additionally if `dropout` is outside
    /// `[0, 0.5]`.
    pub fn with_dropout(noise_rel: f64, quantum: f64, dropout: f64) -> Result<Self, SystemError> {
        if !(noise_rel.is_finite() && (0.0..=0.5).contains(&noise_rel)) {
            return Err(SystemError::InvalidConfig {
                field: "noise_rel",
                reason: format!("must be in [0, 0.5], got {noise_rel}"),
            });
        }
        if !(quantum.is_finite() && quantum >= 0.0) {
            return Err(SystemError::InvalidConfig {
                field: "quantum",
                reason: format!("must be finite and non-negative, got {quantum}"),
            });
        }
        if !(dropout.is_finite() && (0.0..=0.5).contains(&dropout)) {
            return Err(SystemError::InvalidConfig {
                field: "dropout",
                reason: format!("must be in [0, 0.5], got {dropout}"),
            });
        }
        Ok(Self {
            noise_rel,
            quantum,
            dropout,
        })
    }

    /// A perfect sensor: no noise, no quantisation.
    pub fn ideal() -> Self {
        Self {
            noise_rel: 0.0,
            quantum: 0.0,
            dropout: 0.0,
        }
    }

    /// Applies the sensor model to a true power value, with no reading
    /// history: a dropped read returns zero watts. Prefer
    /// [`SensorModel::measure_with_last`] wherever the previous reading is
    /// available (the simulator's epoch loop always has it).
    pub fn measure<R: Rng + ?Sized>(&self, truth: Watts, rng: &mut R) -> Watts {
        self.measure_with_last(truth, Watts::ZERO, rng)
    }

    /// Applies the sensor model to a true power value. `last` is the
    /// previous epoch's reading on the same sensor; a dropped read holds
    /// it (stuck-at-last-value — the register simply is not updated).
    ///
    /// Uses Box–Muller on two uniform draws so only `rand::Rng` is needed.
    /// With `dropout == 0` the history argument is never read, so
    /// fault-free runs are byte-for-byte unaffected by it. Measurements
    /// are clamped at zero (a power sensor never reads negative).
    ///
    /// This one-shot form discards the second Gaussian of the Box–Muller
    /// pair. Streams that read the same sensor every epoch should carry a
    /// spare slot and call [`SensorModel::measure_with_spare`], which
    /// consumes the pair across two reads — half the uniform draws and
    /// half the `ln`/`sqrt`/trig work.
    pub fn measure_with_last<R: Rng + ?Sized>(
        &self,
        truth: Watts,
        last: Watts,
        rng: &mut R,
    ) -> Watts {
        let mut spare = f64::NAN;
        self.measure_with_spare(truth, last, rng, &mut spare)
    }

    /// [`SensorModel::measure_with_last`] with a caller-owned spare slot:
    /// Box–Muller yields two independent Gaussians per `(ln, sqrt,
    /// sin_cos)` evaluation, so reads alternate between generating a fresh
    /// pair (storing the second half in `*spare`) and consuming the stored
    /// half with no draws at all. `NaN` marks an empty slot; initialise
    /// with `f64::NAN` and keep the slot private to one sensor stream —
    /// per-core slots keep sharded runs order-independent.
    ///
    /// A dropped read holds `last` and leaves both the RNG's noise draws
    /// and the spare slot untouched, exactly as the one-shot form does.
    pub fn measure_with_spare<R: Rng + ?Sized>(
        &self,
        truth: Watts,
        last: Watts,
        rng: &mut R,
        spare: &mut f64,
    ) -> Watts {
        if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
            return last;
        }
        let mut value = truth.value();
        if self.noise_rel > 0.0 {
            value *= 1.0 + self.noise_rel * next_gauss(rng, spare);
        }
        if self.quantum > 0.0 {
            value = (value / self.quantum).round() * self.quantum;
        }
        Watts::new(value.max(0.0))
    }

    /// Batch [`SensorModel::measure_with_spare`] over per-core slices —
    /// the fault-free fast path of the epoch kernel. On a pair-generating
    /// epoch (every spare slot empty) the uniform draws for all cores are
    /// block-filled into the caller's `u1`/`u2` scratch first (same two
    /// draws per core, in core order), then the Box–Muller / scale /
    /// quantise / clamp arithmetic runs as tight slice passes, banking the
    /// second Gaussian of each pair in `spares`. On a pair-consuming epoch
    /// (every slot full) the pass is pure slice arithmetic: no draws, no
    /// transcendentals. The slots stay in lockstep in steady state, so
    /// epochs strictly alternate between the two. Each core's operation
    /// chain is exactly the scalar one, so results are bit-identical to
    /// per-core `measure_with_spare` calls with the same per-core RNGs
    /// and slots — mixed slot states fall back to that scalar chain.
    ///
    /// # Panics
    ///
    /// Panics if `dropout != 0` (dropout consumes an extra draw per core
    /// and needs reading history — callers must use the scalar path), or if
    /// the slices do not all have the same length.
    pub fn measure_block<R: Rng>(
        &self,
        truth: &[Watts],
        rngs: &mut [R],
        out: &mut [Watts],
        u1: &mut [f64],
        u2: &mut [f64],
        spares: &mut [f64],
    ) {
        assert!(
            self.dropout == 0.0,
            "measure_block requires dropout == 0 (use measure_with_spare)"
        );
        let n = truth.len();
        assert!(
            rngs.len() == n
                && out.len() == n
                && u1.len() == n
                && u2.len() == n
                && spares.len() == n,
            "measure_block slices must have equal length"
        );
        // Quantise and clamp fused into each branch's single pass: the
        // per-element op order (noise → round-to-grid → clamp) is exactly
        // what the separate trailing passes applied, so readings stay
        // bit-identical — but each core's reading is now written once
        // instead of read-modify-written by two extra sweeps.
        let q = self.quantum;
        let finish = |value: f64| -> Watts {
            let v = if q > 0.0 {
                (value / q).round() * q
            } else {
                value
            };
            Watts::new(v.max(0.0))
        };
        if self.noise_rel > 0.0 {
            let noise_rel = self.noise_rel;
            if spares.iter().all(|s| s.is_nan()) {
                for i in 0..n {
                    u1[i] = rngs[i].gen::<f64>().max(1e-12);
                    u2[i] = rngs[i].gen();
                }
                for i in 0..n {
                    let r = (-2.0 * u1[i].ln()).sqrt();
                    let (sin, cos) = (2.0 * std::f64::consts::PI * u2[i]).sin_cos();
                    spares[i] = r * sin;
                    out[i] = finish(truth[i].value() * (1.0 + noise_rel * (r * cos)));
                }
            } else if spares.iter().all(|s| !s.is_nan()) {
                for i in 0..n {
                    out[i] = finish(truth[i].value() * (1.0 + noise_rel * spares[i]));
                    spares[i] = f64::NAN;
                }
            } else {
                // Mixed slot states (e.g. the first fault-free epoch after
                // a faulted stretch left some cores mid-pair).
                for i in 0..n {
                    let g = next_gauss(&mut rngs[i], &mut spares[i]);
                    out[i] = finish(truth[i].value() * (1.0 + noise_rel * g));
                }
            }
        } else {
            for (o, t) in out.iter_mut().zip(truth) {
                *o = finish(t.value());
            }
        }
    }
}

/// One standard Gaussian from a Box–Muller pair: an empty (`NaN`) spare
/// slot triggers a fresh pair — two uniform draws, one `ln`/`sqrt`/
/// `sin_cos` — whose second half is banked in the slot; a full slot is
/// consumed with no draws at all.
#[inline]
fn next_gauss<R: Rng + ?Sized>(rng: &mut R, spare: &mut f64) -> f64 {
    if spare.is_nan() {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        *spare = r * sin;
        r * cos
    } else {
        let g = *spare;
        *spare = f64::NAN;
        g
    }
}

impl Default for SensorModel {
    /// A realistic default: 1 % relative noise, 1/16 W quantum — RAPL-like.
    fn default() -> Self {
        Self {
            noise_rel: 0.01,
            quantum: 0.0625,
            dropout: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_sensor_is_exact() {
        let s = SensorModel::ideal();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.measure(Watts::new(3.7), &mut rng).value(), 3.7);
    }

    #[test]
    fn quantisation_rounds_to_grid() {
        let s = SensorModel::new(0.0, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.measure(Watts::new(3.13), &mut rng).value(), 3.25);
        assert_eq!(s.measure(Watts::new(3.12), &mut rng).value(), 3.0);
    }

    #[test]
    fn noise_is_unbiased_and_bounded() {
        let s = SensorModel::new(0.05, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let truth = Watts::new(10.0);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| s.measure(truth, &mut rng).value())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn never_reads_negative() {
        let s = SensorModel::new(0.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert!(s.measure(Watts::new(0.01), &mut rng).value() >= 0.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SensorModel::new(-0.1, 0.0).is_err());
        assert!(SensorModel::new(0.6, 0.0).is_err());
        assert!(SensorModel::new(0.0, -1.0).is_err());
        assert!(SensorModel::new(f64::NAN, 0.0).is_err());
        assert!(SensorModel::with_dropout(0.0, 0.0, -0.1).is_err());
        assert!(SensorModel::with_dropout(0.0, 0.0, 0.9).is_err());
    }

    #[test]
    fn dropout_holds_the_last_reading_at_the_configured_rate() {
        let s = SensorModel::with_dropout(0.0, 0.0, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 10_000;
        let last = Watts::new(2.75);
        let held = (0..n)
            .filter(|_| s.measure_with_last(Watts::new(5.0), last, &mut rng) == last)
            .count();
        let rate = held as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "dropout rate {rate}");
        // Non-dropped reads are exact with zero noise.
        let mut rng = StdRng::seed_from_u64(18);
        let any_exact = (0..50)
            .any(|_| s.measure_with_last(Watts::new(5.0), last, &mut rng).value() == 5.0);
        assert!(any_exact);
    }

    #[test]
    fn historyless_measure_drops_to_zero() {
        // Without a previous reading there is nothing to hold: `measure`
        // keeps the legacy zero-on-dropout behaviour.
        let s = SensorModel::with_dropout(0.0, 0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let any_zero = (0..50).any(|_| s.measure(Watts::new(5.0), &mut rng) == Watts::ZERO);
        assert!(any_zero);
    }

    #[test]
    fn measure_block_is_bit_identical_to_scalar_path() {
        // Every (noise, quantum) corner, including tiny truths the clamp
        // touches, over several epochs so both the pair-generating and the
        // pair-consuming passes are exercised: the block path must
        // reproduce per-core scalar calls exactly, draw for draw.
        for (noise_rel, quantum) in [(0.0, 0.0), (0.0, 0.25), (0.01, 0.0625), (0.5, 0.125)] {
            let s = SensorModel::new(noise_rel, quantum).unwrap();
            let n = 131;
            let mut rngs_block: Vec<StdRng> =
                (0..n).map(|i| StdRng::seed_from_u64(i as u64)).collect();
            let mut rngs_scalar: Vec<StdRng> =
                (0..n).map(|i| StdRng::seed_from_u64(i as u64)).collect();
            let mut spares_block = vec![f64::NAN; n];
            let mut spares_scalar = vec![f64::NAN; n];
            let mut out = vec![Watts::ZERO; n];
            let mut u1 = vec![0.0; n];
            let mut u2 = vec![0.0; n];
            for epoch in 0..4 {
                let truth: Vec<Watts> = (0..n)
                    .map(|i| Watts::new(((i + epoch) as f64 * 0.37).sin().abs() * 4.0 - 0.01))
                    .collect();
                s.measure_block(
                    &truth,
                    &mut rngs_block,
                    &mut out,
                    &mut u1,
                    &mut u2,
                    &mut spares_block,
                );
                for i in 0..n {
                    let scalar = s.measure_with_spare(
                        truth[i],
                        Watts::new(99.0),
                        &mut rngs_scalar[i],
                        &mut spares_scalar[i],
                    );
                    assert_eq!(
                        out[i].value().to_bits(),
                        scalar.value().to_bits(),
                        "core {i} diverged at epoch {epoch} noise={noise_rel} quantum={quantum}"
                    );
                    assert_eq!(spares_block[i].to_bits(), spares_scalar[i].to_bits());
                }
            }
            // RNG consumption matches too.
            for i in 0..n {
                assert_eq!(rngs_block[i].gen::<u64>(), rngs_scalar[i].gen::<u64>());
            }
        }
    }

    #[test]
    fn measure_block_handles_mixed_spare_states() {
        // A mid-pair mixture (some slots banked, some empty) must still
        // match the scalar chain — this is the state a faulted stretch can
        // leave behind.
        let s = SensorModel::new(0.3, 0.125).unwrap();
        let n = 64;
        let truth: Vec<Watts> = (0..n).map(|i| Watts::new(1.0 + i as f64 * 0.05)).collect();
        let mut rngs_block: Vec<StdRng> =
            (0..n).map(|i| StdRng::seed_from_u64(i as u64)).collect();
        let mut rngs_scalar: Vec<StdRng> =
            (0..n).map(|i| StdRng::seed_from_u64(i as u64)).collect();
        // Odd cores are mid-pair, even cores are empty.
        let seed_spare = |i: usize| if i % 2 == 1 { 0.25 * i as f64 } else { f64::NAN };
        let mut spares_block: Vec<f64> = (0..n).map(seed_spare).collect();
        let mut spares_scalar: Vec<f64> = (0..n).map(seed_spare).collect();
        let mut out = vec![Watts::ZERO; n];
        let (mut u1, mut u2) = (vec![0.0; n], vec![0.0; n]);
        s.measure_block(
            &truth,
            &mut rngs_block,
            &mut out,
            &mut u1,
            &mut u2,
            &mut spares_block,
        );
        for i in 0..n {
            let scalar = s.measure_with_spare(
                truth[i],
                Watts::new(99.0),
                &mut rngs_scalar[i],
                &mut spares_scalar[i],
            );
            assert_eq!(out[i].value().to_bits(), scalar.value().to_bits());
            assert_eq!(spares_block[i].to_bits(), spares_scalar[i].to_bits());
            assert_eq!(rngs_block[i].gen::<u64>(), rngs_scalar[i].gen::<u64>());
        }
    }

    #[test]
    fn spare_slot_halves_draw_consumption() {
        // Two spare-threaded reads consume one Box–Muller pair: two
        // uniform draws total, versus four for two one-shot reads.
        let s = SensorModel::new(0.02, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut witness = StdRng::seed_from_u64(77);
        let mut spare = f64::NAN;
        s.measure_with_spare(Watts::new(5.0), Watts::ZERO, &mut rng, &mut spare);
        assert!(!spare.is_nan(), "first read banks the second Gaussian");
        s.measure_with_spare(Watts::new(5.0), Watts::ZERO, &mut rng, &mut spare);
        assert!(spare.is_nan(), "second read consumes the bank");
        let _: (f64, f64) = (witness.gen(), witness.gen());
        assert_eq!(rng.gen::<u64>(), witness.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn measure_block_rejects_dropout() {
        let s = SensorModel::with_dropout(0.0, 0.0, 0.1).unwrap();
        let mut rngs = vec![StdRng::seed_from_u64(0)];
        let mut out = [Watts::ZERO];
        let (mut u1, mut u2) = ([0.0], [0.0]);
        let mut spares = [f64::NAN];
        s.measure_block(
            &[Watts::ZERO],
            &mut rngs,
            &mut out,
            &mut u1,
            &mut u2,
            &mut spares,
        );
    }

    #[test]
    fn measure_matches_measure_with_last_when_dropout_is_off() {
        // With no dropout the history argument must be dead: the two entry
        // points draw and return identically.
        let s = SensorModel::default();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for i in 0..200 {
            let truth = Watts::new(0.5 + i as f64 * 0.01);
            let a = s.measure(truth, &mut rng_a);
            let b = s.measure_with_last(truth, Watts::new(123.0), &mut rng_b);
            assert_eq!(a, b);
        }
    }
}
