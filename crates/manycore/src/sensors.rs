//! Power-sensor models: noise and quantisation on measured power.

use crate::error::SystemError;
use odrl_power::Watts;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A model of the on-die power sensors controllers read.
///
/// Real power telemetry is noisy and quantised; a robust controller must
/// tolerate both. `noise_rel` is the relative standard deviation of
/// multiplicative Gaussian noise (0 = ideal sensor), and `quantum` is the
/// reporting granularity in watts (0 = continuous).
///
/// ```
/// use odrl_manycore::SensorModel;
/// let ideal = SensorModel::ideal();
/// assert_eq!(ideal.noise_rel, 0.0);
/// let real = SensorModel::new(0.02, 0.125)?;
/// assert!(real.quantum > 0.0);
/// # Ok::<(), odrl_manycore::SystemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorModel {
    /// Relative standard deviation of multiplicative Gaussian noise.
    pub noise_rel: f64,
    /// Reporting quantum in watts (0 disables quantisation).
    pub quantum: f64,
    /// Probability that a read fails outright and holds the last reading
    /// (fault injection for controller-robustness testing; 0 disables).
    /// For a persistently dead sensor rail that reads zero, use
    /// `SensorFault::StuckZero` from `odrl-faults` instead.
    #[serde(default)]
    pub dropout: f64,
}

impl SensorModel {
    /// Creates a sensor model.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if `noise_rel` is not in
    /// `[0, 0.5]` or `quantum` is negative/non-finite.
    pub fn new(noise_rel: f64, quantum: f64) -> Result<Self, SystemError> {
        Self::with_dropout(noise_rel, quantum, 0.0)
    }

    /// Creates a sensor model with a read-failure (dropout) probability: a
    /// dropped read holds the previous reading, as a hung power-telemetry
    /// agent does in practice — the stale register value is what the
    /// controller sees. (An earlier revision returned zero watts, which
    /// controllers interpreted as free headroom and ramped up; that mode
    /// is now the explicit `SensorFault::StuckZero` in `odrl-faults`.)
    ///
    /// # Errors
    ///
    /// As [`SensorModel::new`]; additionally if `dropout` is outside
    /// `[0, 0.5]`.
    pub fn with_dropout(noise_rel: f64, quantum: f64, dropout: f64) -> Result<Self, SystemError> {
        if !(noise_rel.is_finite() && (0.0..=0.5).contains(&noise_rel)) {
            return Err(SystemError::InvalidConfig {
                field: "noise_rel",
                reason: format!("must be in [0, 0.5], got {noise_rel}"),
            });
        }
        if !(quantum.is_finite() && quantum >= 0.0) {
            return Err(SystemError::InvalidConfig {
                field: "quantum",
                reason: format!("must be finite and non-negative, got {quantum}"),
            });
        }
        if !(dropout.is_finite() && (0.0..=0.5).contains(&dropout)) {
            return Err(SystemError::InvalidConfig {
                field: "dropout",
                reason: format!("must be in [0, 0.5], got {dropout}"),
            });
        }
        Ok(Self {
            noise_rel,
            quantum,
            dropout,
        })
    }

    /// A perfect sensor: no noise, no quantisation.
    pub fn ideal() -> Self {
        Self {
            noise_rel: 0.0,
            quantum: 0.0,
            dropout: 0.0,
        }
    }

    /// Applies the sensor model to a true power value, with no reading
    /// history: a dropped read returns zero watts. Prefer
    /// [`SensorModel::measure_with_last`] wherever the previous reading is
    /// available (the simulator's epoch loop always has it).
    pub fn measure<R: Rng + ?Sized>(&self, truth: Watts, rng: &mut R) -> Watts {
        self.measure_with_last(truth, Watts::ZERO, rng)
    }

    /// Applies the sensor model to a true power value. `last` is the
    /// previous epoch's reading on the same sensor; a dropped read holds
    /// it (stuck-at-last-value — the register simply is not updated).
    ///
    /// Uses Box–Muller on two uniform draws so only `rand::Rng` is needed.
    /// With `dropout == 0` the history argument is never read, so
    /// fault-free runs are byte-for-byte unaffected by it. Measurements
    /// are clamped at zero (a power sensor never reads negative).
    pub fn measure_with_last<R: Rng + ?Sized>(
        &self,
        truth: Watts,
        last: Watts,
        rng: &mut R,
    ) -> Watts {
        if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
            return last;
        }
        let mut value = truth.value();
        if self.noise_rel > 0.0 {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            value *= 1.0 + self.noise_rel * gauss;
        }
        if self.quantum > 0.0 {
            value = (value / self.quantum).round() * self.quantum;
        }
        Watts::new(value.max(0.0))
    }
}

impl Default for SensorModel {
    /// A realistic default: 1 % relative noise, 1/16 W quantum — RAPL-like.
    fn default() -> Self {
        Self {
            noise_rel: 0.01,
            quantum: 0.0625,
            dropout: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_sensor_is_exact() {
        let s = SensorModel::ideal();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.measure(Watts::new(3.7), &mut rng).value(), 3.7);
    }

    #[test]
    fn quantisation_rounds_to_grid() {
        let s = SensorModel::new(0.0, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.measure(Watts::new(3.13), &mut rng).value(), 3.25);
        assert_eq!(s.measure(Watts::new(3.12), &mut rng).value(), 3.0);
    }

    #[test]
    fn noise_is_unbiased_and_bounded() {
        let s = SensorModel::new(0.05, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let truth = Watts::new(10.0);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| s.measure(truth, &mut rng).value())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn never_reads_negative() {
        let s = SensorModel::new(0.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert!(s.measure(Watts::new(0.01), &mut rng).value() >= 0.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SensorModel::new(-0.1, 0.0).is_err());
        assert!(SensorModel::new(0.6, 0.0).is_err());
        assert!(SensorModel::new(0.0, -1.0).is_err());
        assert!(SensorModel::new(f64::NAN, 0.0).is_err());
        assert!(SensorModel::with_dropout(0.0, 0.0, -0.1).is_err());
        assert!(SensorModel::with_dropout(0.0, 0.0, 0.9).is_err());
    }

    #[test]
    fn dropout_holds_the_last_reading_at_the_configured_rate() {
        let s = SensorModel::with_dropout(0.0, 0.0, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 10_000;
        let last = Watts::new(2.75);
        let held = (0..n)
            .filter(|_| s.measure_with_last(Watts::new(5.0), last, &mut rng) == last)
            .count();
        let rate = held as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "dropout rate {rate}");
        // Non-dropped reads are exact with zero noise.
        let mut rng = StdRng::seed_from_u64(18);
        let any_exact = (0..50)
            .any(|_| s.measure_with_last(Watts::new(5.0), last, &mut rng).value() == 5.0);
        assert!(any_exact);
    }

    #[test]
    fn historyless_measure_drops_to_zero() {
        // Without a previous reading there is nothing to hold: `measure`
        // keeps the legacy zero-on-dropout behaviour.
        let s = SensorModel::with_dropout(0.0, 0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let any_zero = (0..50).any(|_| s.measure(Watts::new(5.0), &mut rng) == Watts::ZERO);
        assert!(any_zero);
    }

    #[test]
    fn measure_matches_measure_with_last_when_dropout_is_off() {
        // With no dropout the history argument must be dead: the two entry
        // points draw and return identically.
        let s = SensorModel::default();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for i in 0..200 {
            let truth = Watts::new(0.5 + i as f64 * 0.01);
            let a = s.measure(truth, &mut rng_a);
            let b = s.measure_with_last(truth, Watts::new(123.0), &mut rng_b);
            assert_eq!(a, b);
        }
    }
}
