//! Property-based tests for the many-core simulator invariants.

use odrl_manycore::{PerfModel, System, SystemConfig};
use odrl_power::{GigaHertz, LevelId, Seconds, Watts};
use odrl_workload::{MixPolicy, PhaseParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Energy bookkeeping: report energy equals total power times dt, and
    /// total power equals the sum of per-core powers, for any level vector.
    #[test]
    fn energy_accounting_is_exact(
        cores in 1usize..12,
        seed in 0u64..50,
        levels in prop::collection::vec(0usize..8, 12),
    ) {
        let config = SystemConfig::builder().cores(cores).seed(seed).build().unwrap();
        let mut sys = System::new(config).unwrap();
        let actions: Vec<LevelId> = levels[..cores].iter().map(|&l| LevelId(l)).collect();
        for _ in 0..5 {
            let r = sys.step(&actions).unwrap();
            let per_core: f64 = r.cores.iter().map(|c| c.power.total().value()).sum();
            prop_assert!((per_core - r.total_power.value()).abs() < 1e-9);
            let e = r.total_power.energy_over(r.dt);
            prop_assert!((e.value() - r.energy.value()).abs() < 1e-12);
        }
    }

    /// IPS and instruction counts are consistent: instructions = ips * dt,
    /// always positive at positive frequency.
    #[test]
    fn throughput_consistency(
        cores in 1usize..8,
        seed in 0u64..50,
        level in 0usize..8,
    ) {
        let config = SystemConfig::builder().cores(cores).seed(seed).build().unwrap();
        let dt = config.epoch;
        let mut sys = System::new(config).unwrap();
        let r = sys.step(&vec![LevelId(level); cores]).unwrap();
        for c in &r.cores {
            prop_assert!(c.ips > 0.0);
            prop_assert!((c.instructions - c.ips * dt.value()).abs() < 1e-3);
        }
    }

    /// Temperatures stay physical: between ambient and 150 degC for any
    /// sustained level choice (no runaway, no sub-ambient).
    #[test]
    fn temperatures_stay_physical(
        cores in 1usize..16,
        seed in 0u64..50,
        level in 0usize..8,
        epochs in 1u64..100,
    ) {
        let config = SystemConfig::builder().cores(cores).seed(seed).build().unwrap();
        let mut sys = System::new(config).unwrap();
        sys.run_fixed(&vec![LevelId(level); cores], epochs).unwrap();
        for c in &sys.last_report().unwrap().cores {
            let t = c.temperature.value();
            prop_assert!((44.9..150.0).contains(&t), "temperature {t}");
        }
    }

    /// The perf model's IPS is monotone in frequency and bounded by the
    /// memory-bandwidth ceiling for every phase signature.
    #[test]
    fn perf_model_monotone_and_bounded(
        cpi in 0.3f64..3.0,
        mpki in 0.0f64..40.0,
        f1 in 0.5f64..4.0,
        f2 in 0.5f64..4.0,
    ) {
        let m = PerfModel::default();
        let p = PhaseParams::new(cpi, mpki, 0.8).unwrap();
        let ips1 = m.ips(&p, GigaHertz::new(f1));
        let ips2 = m.ips(&p, GigaHertz::new(f2));
        if f1 <= f2 {
            prop_assert!(ips1 <= ips2 + 1e-6);
        }
        prop_assert!(ips1 < m.saturation_ips(&p));
        prop_assert!(ips1 > 0.0);
    }

    /// Observation totals equal the last report's measured values, and the
    /// observation is stable (repeated calls agree).
    #[test]
    fn observation_matches_last_report(
        cores in 1usize..8,
        seed in 0u64..50,
    ) {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(seed)
            .mix(MixPolicy::RoundRobin)
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.step(&vec![LevelId(4); cores]).unwrap();
        let budget = Watts::new(10.0);
        let a = sys.observation(budget);
        let b = sys.observation(budget);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.total_power, sys.last_report().unwrap().measured_power);
        prop_assert_eq!(a.num_cores(), cores);
    }

    /// Simulated time advances by exactly dt per epoch.
    #[test]
    fn time_advances_linearly(
        cores in 1usize..6,
        epochs in 1u64..50,
        epoch_ms in 0.1f64..5.0,
    ) {
        let config = SystemConfig::builder()
            .cores(cores)
            .epoch(Seconds::new(epoch_ms * 1e-3))
            .build()
            .unwrap();
        let mut sys = System::new(config).unwrap();
        sys.run_fixed(&vec![LevelId(0); cores], epochs).unwrap();
        let expect = epochs as f64 * epoch_ms * 1e-3;
        prop_assert!((sys.elapsed().value() - expect).abs() < 1e-12 * epochs as f64 + 1e-15);
    }
}
