//! Golden determinism for fleet runs.
//!
//! The fleet epoch pipeline shards only the embarrassingly-parallel chip
//! step; every cross-chip read or write (arbitration, link delivery, the
//! demand reduction) happens serially in fleet-index order, and the merged
//! trace is keyed by `(epoch, chip, rank, core)`. So a fleet run must be
//! bit-identical at every cross-chip shard count, with or without an
//! active fault plan — including one with chip-scoped entries. These
//! tests pin that with FNV hashes over the canonical JSON of the summary
//! and the merged trace, the same way `trace_determinism.rs` pins the
//! single-chip stream.

use odrl_controllers::PowerController;
use odrl_core::{MarketConfig, OdRlConfig, OdRlController};
use odrl_faults::{BudgetFault, CoreFault, FaultKind, FaultPlan, SensorFault, Target};
use odrl_fleet::{Fleet, RunBuilder, Scenario};
use odrl_manycore::{Parallelism, System};
use odrl_obs::FleetEventRecord;
use odrl_power::{LevelId, Watts};
use odrl_workload::MixPolicy;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario() -> Scenario {
    Scenario {
        cores: 32,
        budget_frac: 0.6,
        epochs: 60,
        mix: MixPolicy::RoundRobin,
        seed: 9,
        parallelism: Parallelism::Serial,
    }
}

/// Chip-scoped sensor and core faults plus a fleet-wide budget fault, so
/// the run exercises per-chip scoping *and* the arbiter → chip links.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .with_chip_event(
            1,
            FaultKind::Sensor(SensorFault::StuckLast),
            Target::Range { lo: 0, hi: 8 },
            10,
            30,
        )
        .with_chip_event(
            2,
            FaultKind::Core(CoreFault::Unplug),
            Target::Range { lo: 28, hi: 30 },
            20,
            25,
        )
        .with_event(
            FaultKind::Budget(BudgetFault::Lost),
            Target::All,
            15,
            10,
        )
}

fn run_fleet(par: Parallelism, plan: Option<&FaultPlan>) -> Fleet {
    let mut builder = RunBuilder::new(scenario())
        .watchdog(true)
        .obs(true)
        .arbiter_period(10)
        .fleet_parallelism(par);
    if let Some(p) = plan {
        builder = builder.faults(p.clone());
    }
    let mut fleet = builder.build_fleet(4).expect("valid fleet configuration");
    fleet.run(60).expect("fleet run completes");
    fleet
}

fn summary_hash(fleet: &Fleet) -> u64 {
    fnv1a(&serde_json::to_string(&fleet.summary()).expect("serializable summary"))
}

fn trace_hash(records: &[FleetEventRecord]) -> u64 {
    let jsonl: String = records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable record"))
        .collect::<Vec<_>>()
        .join("\n");
    fnv1a(&jsonl)
}

fn check_invariant(plan: Option<&FaultPlan>) {
    let serial = run_fleet(Parallelism::Serial, plan);
    let serial_summary = summary_hash(&serial);
    let serial_trace = serial.merged_trace();
    assert!(
        !serial_trace.is_empty(),
        "an observed fleet run must record events"
    );
    assert!(
        (0..4).all(|k| serial_trace.iter().any(|r| r.chip == k)),
        "every chip must contribute trace records"
    );
    let serial_trace_hash = trace_hash(&serial_trace);
    for shards in [2, 4, 8] {
        let sharded = run_fleet(Parallelism::Threads(shards), plan);
        assert_eq!(
            serial_summary,
            summary_hash(&sharded),
            "{shards}-shard fleet summary drifted"
        );
        let sharded_trace = sharded.merged_trace();
        assert_eq!(
            serial_trace, sharded_trace,
            "{shards}-shard merged fleet records drifted"
        );
        assert_eq!(
            serial_trace_hash,
            trace_hash(&sharded_trace),
            "{shards}-shard fleet trace hash drifted"
        );
    }
}

#[test]
fn fault_free_fleet_is_shard_count_invariant() {
    check_invariant(None);
}

#[test]
fn faulted_fleet_is_shard_count_invariant() {
    check_invariant(Some(&plan()));
}

/// A 4-chip fleet booted from a Q-table snapshot on disk must be
/// bit-identical across 1/2/4 cross-chip shards, and the warm start must
/// actually change the run relative to a cold boot (the import is not a
/// no-op).
#[test]
fn warm_started_fleet_is_shard_count_invariant() {
    // Train a donor chip on the same scenario geometry and save its policy.
    let s = scenario();
    let config = s.try_system_config().expect("valid scenario");
    let budget = Watts::new(s.budget_frac * config.max_power().value());
    let mut donor_system = System::new(config).expect("valid scenario config");
    let mut donor = OdRlController::new(OdRlConfig::default(), &donor_system.spec(), budget)
        .expect("valid OD-RL config");
    let mut actions = vec![LevelId(0); s.cores];
    let mut obs = donor_system.observation(budget);
    for _ in 0..80 {
        donor.decide_into(&obs, &mut actions);
        donor_system.step_in_place(&actions).expect("valid actions");
        donor_system.observation_into(budget, &mut obs);
    }
    let path = std::env::temp_dir().join("odrl_fleet_warm_start.qsnap");
    donor.export_policy().save(&path).expect("snapshot saves");

    let run = |par: Parallelism, warm: bool| {
        let mut builder = RunBuilder::new(scenario())
            .arbiter_period(10)
            .fleet_parallelism(par);
        if warm {
            builder = builder.warm_start(&path);
        }
        let mut fleet = builder.build_fleet(4).expect("valid fleet configuration");
        fleet.run(60).expect("fleet run completes");
        summary_hash(&fleet)
    };

    let serial = run(Parallelism::Serial, true);
    for shards in [2, 4] {
        assert_eq!(
            serial,
            run(Parallelism::Threads(shards), true),
            "{shards}-shard warm-started fleet summary drifted"
        );
    }
    assert_ne!(
        serial,
        run(Parallelism::Serial, false),
        "warm start must change the trajectory relative to a cold boot"
    );
    let _ = std::fs::remove_file(&path);
}

/// A large fleet (16 chips × 64 cores = 1024 fleet cores) keeps the
/// arbitrated shares summing to the fleet budget after every epoch, across
/// frequent reallocation rounds.
#[test]
fn large_fleet_conserves_the_budget_every_epoch() {
    let mut s = scenario();
    s.cores = 64;
    let mut fleet = RunBuilder::new(s)
        .arbiter_period(2)
        .build_fleet(16)
        .expect("valid fleet configuration");
    assert_eq!(fleet.num_cores(), 1024);
    let total = fleet.total_budget().value();
    for _ in 0..6 {
        fleet.step_epoch().expect("fleet epoch completes");
        let sum = fleet.arbitrated_sum();
        assert!(
            (sum - total).abs() <= 1e-9 * total,
            "epoch {}: shares sum to {sum} W, fleet budget is {total} W",
            fleet.epoch()
        );
    }
    assert!(fleet.arbiter().rounds() >= 2);
}

/// The rack-scope slack market trades watts between chips, keeps the
/// per-round ledger conserving bit-exactly, keeps the arbitrated shares
/// summing to the fleet budget, and stays bit-identical across cross-chip
/// shard counts.
#[test]
fn rack_market_trades_conserves_and_is_shard_count_invariant() {
    let run = |par: Parallelism| {
        // A tight budget (20 % of fleet max power) keeps every chip
        // clamped against its share, so decorrelated workload phases
        // produce both donors and applicants; razor-thin margins let the
        // market classify them right at the measured-power boundary.
        let mut s = scenario();
        s.budget_frac = 0.2;
        let market = MarketConfig {
            safety_margin: 0.0,
            min_keep: 0.0,
            min_grant: 0.0,
            headroom: 1.0,
            ..MarketConfig::enabled()
        };
        let mut fleet = RunBuilder::new(s)
            .arbiter_period(20)
            .market(market)
            .fleet_parallelism(par)
            .build_fleet(4)
            .expect("valid fleet configuration");
        let total = fleet.total_budget().value();
        let mut traded = 0u64;
        for _ in 0..60 {
            fleet.step_epoch().expect("fleet epoch completes");
            // The market is gated on epoch > 0, so the very first step
            // has no round yet.
            if let Some(r) = fleet.market_round() {
                assert_eq!(r.conservation_error(), 0.0, "ledger must conserve bit-exactly");
                if r.moved() {
                    traded += 1;
                }
            }
            let sum = fleet.arbitrated_sum();
            assert!(
                (sum - total).abs() <= 1e-9 * total,
                "epoch {}: arbitrated shares sum to {sum} W, fleet budget is {total} W",
                fleet.epoch()
            );
        }
        assert!(traded > 0, "the rack market never traded");
        assert!(fleet.market().unwrap().pool().total_granted() > 0.0);
        summary_hash(&fleet)
    };
    let serial = run(Parallelism::Serial);
    for shards in [2, 4] {
        assert_eq!(
            serial,
            run(Parallelism::Threads(shards)),
            "{shards}-shard rack-market fleet summary drifted"
        );
    }
}
