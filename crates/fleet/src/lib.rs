//! # odrl-fleet — the multi-chip fleet layer
//!
//! The paper's OD-RL controller manages one power-limited chip. This crate
//! lifts the same two-level idea one level up, toward the rack: a
//! [`Fleet`] of N chips — each an ordinary `System` + controller pair —
//! stepped concurrently on the deterministic shard pool, under a
//! [`BudgetArbiter`] that periodically re-divides a total fleet power
//! budget across chips exactly the way the paper's coarse-grain
//! reallocator divides one chip's budget across cores. Budget messages
//! travel through the same lossy `BudgetChannel` the per-core agents use,
//! so fault plans apply at fleet scope, and `ChipScope` pins chip-local
//! core indices to the chip they mean.
//!
//! The crate also owns the redesigned run-construction surface:
//! [`Scenario`] + [`RunBuilder`] compose every closed-loop configuration —
//! faults, watchdog, tracing, parallelism — behind `build_chip()` /
//! `build_fleet(n)`, and every failure mode converges on [`FleetError`]
//! so binaries drive the whole stack with `?`.
//!
//! ```
//! use odrl_fleet::{RunBuilder, Scenario};
//!
//! let mut scenario = Scenario::default_eval();
//! scenario.cores = 16;
//! scenario.epochs = 20;
//! let mut fleet = RunBuilder::new(scenario).arbiter_period(5).build_fleet(4)?;
//! fleet.run(20)?;
//! assert_eq!(fleet.telemetry().epochs(), 20);
//! assert!(fleet.telemetry().total_instructions() > 0.0);
//! # Ok::<(), odrl_fleet::FleetError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod builder;
pub mod config;
pub mod error;
pub mod fleet;
pub mod scenario;

pub use arbiter::BudgetArbiter;
pub use builder::{ChipRun, RunBuilder};
pub use config::FleetConfig;
pub use error::FleetError;
pub use fleet::{ChipSummary, Fleet, FleetSummary, FleetTelemetry};
pub use scenario::{ControllerKind, Scenario, ScenarioError};

// Rack-scope observability types fleet callers configure and consume
// (defined in `odrl-obs`): the recorder config/rules for
// `FleetConfig::recorder` / `RunBuilder::recorder`, and the dump /
// aggregate types `Fleet::anomaly_dumps` / `Fleet::fleet_metrics` return.
pub use odrl_obs::{
    AnomalyDump, AnomalyKind, FleetMetrics, FlightRecorder, RecorderConfig, WatermarkRule,
};
