//! The fleet itself: N chips stepped concurrently under the rack arbiter.
//!
//! One fleet epoch is a fixed pipeline:
//!
//! 1. **Arbitrate** (serial): on reallocation rounds the
//!    [`BudgetArbiter`] re-divides the fleet budget from smoothed per-chip
//!    demand and the fresh shares are *sent* down the per-chip
//!    [`BudgetChannel`] links — which may drop, delay or stale-replay them
//!    (fault plans apply at fleet scope). With the rack-scope slack market
//!    on (see `FleetConfig::market`), a market round then lets chips
//!    donate predicted slack and apply for reclaimed watts between
//!    arbiter rounds, its trades riding the same lossy links.
//! 2. **Deliver** (serial, fixed chip order): each chip polls its link; no
//!    delivery means it keeps its old budget, exactly the lossy-mailbox
//!    semantics the per-core channel has one level down.
//! 3. **Step** (sharded): every chip independently runs one closed-loop
//!    epoch — observe, decide, step — touching only its own state, fanned
//!    across worker shards by `shard_chunks`.
//! 4. **Reduce** (serial, fixed chip order): per-chip scalars fold into
//!    the arbiter's demand EMA and the fleet telemetry.
//!
//! Determinism: the sharded phase is embarrassingly parallel over chips
//! (disjoint `&mut` chunks, no shared accumulator), and every cross-chip
//! read or write happens in the serial phases in fleet-index order, so the
//! shard count changes wall-clock time only — 1/2/4/8-shard runs are
//! bit-identical. Steady-state stepping allocates nothing: observation,
//! action and scalar buffers are built once per chip at construction.

use crate::arbiter::BudgetArbiter;
use crate::config::FleetConfig;
use crate::error::FleetError;
use crate::scenario::build_controller;
use odrl_controllers::PowerController;
use odrl_core::{MarketAllocator, MarketRound, MarketScratch, PolicySnapshot, WatchdogConfig};
use odrl_faults::{BudgetChannel, FaultEngine};
use odrl_manycore::parallel::{shard_chunks, stream_seed};
use odrl_manycore::{Observation, Parallelism, System, SystemError, Telemetry};
use odrl_obs::{
    merge_fleet_records, write_fleet_jsonl, AnomalyDump, AnomalyKind, CounterId, Event,
    EventRecord, FleetEventRecord, FleetMetrics, FlightRecorder, GaugeId, HealthSample,
    MetricsSnapshot, ObsConfig, RecorderConfig, TraceRing, RACK,
};
use odrl_power::{Joules, LevelId, Seconds, Watts};
use serde::Serialize;

/// Salt decorrelating the fleet-level budget channel's fault schedule from
/// the per-chip schedules derived from the same master seed.
const FLEET_CHANNEL_SALT: u64 = 0xF1EE_7000_F1EE_7000;

/// Salt decorrelating per-chip OD-RL exploration streams.
const ODRL_SEED_SALT: u64 = 0x0D81_5EED_0D81_5EED;

/// One chip of the fleet: a `System` + controller pair with its current
/// budget share and the preallocated buffers its epoch step reuses.
struct FleetChip {
    system: System,
    controller: Box<dyn PowerController + Send>,
    /// The chip's current budget share (updated only by link deliveries).
    budget: Watts,
    obs: Observation,
    actions: Vec<LevelId>,
    /// Scalars of the last stepped epoch, read by the serial reduction.
    power: Watts,
    measured: Watts,
    instructions: f64,
    energy: Joules,
    dt: Seconds,
    /// First simulator error, if any (surfaced after the sharded phase).
    failed: Option<SystemError>,
}

impl FleetChip {
    /// One closed-loop epoch on this chip alone. Touches nothing outside
    /// `self`; allocation-free.
    fn step(&mut self) {
        if self.failed.is_some() {
            return;
        }
        self.obs.budget = self.budget;
        self.controller.decide_into(&self.obs, &mut self.actions);
        match self.system.step_in_place(&self.actions) {
            Ok(report) => {
                self.power = report.total_power;
                self.measured = report.measured_power;
                self.instructions = report.total_instructions();
                self.energy = report.energy;
                self.dt = report.dt;
            }
            Err(e) => {
                self.failed = Some(e);
                return;
            }
        }
        self.system.observation_into(self.budget, &mut self.obs);
    }
}

impl std::fmt::Debug for FleetChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetChip")
            .field("controller", &self.controller.name())
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// Scalar fleet-wide telemetry, accumulated epoch by epoch with no
/// per-epoch allocation (per-chip series stay on the chips' own
/// [`Telemetry`]).
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    epochs: u64,
    total_instructions: f64,
    total_energy: f64,
    elapsed: f64,
    peak_power: f64,
    overshoot_epochs: u64,
    overshoot_energy: f64,
}

impl FleetTelemetry {
    fn record(&mut self, fleet_power: Watts, budget: Watts, instructions: f64, energy: Joules, dt: Seconds) {
        self.epochs += 1;
        self.total_instructions += instructions;
        self.total_energy += energy.value();
        self.elapsed += dt.value();
        self.peak_power = self.peak_power.max(fleet_power.value());
        let over = fleet_power.value() - budget.value();
        if over > 0.0 {
            self.overshoot_epochs += 1;
            self.overshoot_energy += over * dt.value();
        }
    }

    /// Fleet epochs stepped.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Instructions retired across all chips.
    pub fn total_instructions(&self) -> f64 {
        self.total_instructions
    }

    /// Energy consumed across all chips.
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.total_energy)
    }

    /// Simulated time elapsed.
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed)
    }

    /// Highest single-epoch fleet power.
    pub fn peak_power(&self) -> Watts {
        Watts::new(self.peak_power)
    }

    /// Epochs in which true fleet power exceeded the fleet budget.
    pub fn overshoot_epochs(&self) -> u64 {
        self.overshoot_epochs
    }

    /// Energy spent above the fleet budget, joules.
    pub fn overshoot_energy(&self) -> Joules {
        Joules::new(self.overshoot_energy)
    }
}

/// One chip's contribution to a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChipSummary {
    /// Fleet index.
    pub chip: u32,
    /// The chip's budget share at the end of the run, watts.
    pub budget_w: f64,
    /// Instructions the chip retired.
    pub instructions: f64,
    /// Energy the chip consumed, joules.
    pub energy_j: f64,
    /// The chip's peak epoch power, watts.
    pub peak_power_w: f64,
}

/// The serializable end-of-run digest of a fleet run — the fleet
/// determinism golden hashes its canonical JSON form.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSummary {
    /// Number of chips.
    pub chips: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
    /// Fleet epochs stepped.
    pub epochs: u64,
    /// Total fleet budget, watts.
    pub fleet_budget_w: f64,
    /// Instructions retired across all chips.
    pub total_instructions: f64,
    /// Energy consumed across all chips, joules.
    pub total_energy_j: f64,
    /// Highest single-epoch fleet power, watts.
    pub peak_power_w: f64,
    /// Epochs with true fleet power above the fleet budget.
    pub overshoot_epochs: u64,
    /// Energy spent above the fleet budget, joules.
    pub overshoot_energy_j: f64,
    /// Arbiter reallocation rounds completed.
    pub arbiter_rounds: u64,
    /// Per-chip digests, in fleet order.
    pub per_chip: Vec<ChipSummary>,
}

/// Cached rack-registry metric handles (registered once at build).
#[derive(Debug, Clone, Copy)]
struct RackIds {
    c_anomalies: CounterId,
    g_share_spread: GaugeId,
    g_loss_rate: GaugeId,
    g_market_donated: GaugeId,
    g_market_granted: GaugeId,
    g_market_residual: GaugeId,
    g_market_conservation: GaugeId,
}

/// Rack-scope observability: hierarchical metric aggregation over the
/// chips' per-epoch snapshots, rack-level gauges, and the optional
/// anomaly-triggered flight recorder. Present only when
/// [`FleetConfig::diag`] is set; everything here reads simulation state
/// and never feeds back into it, so the run is bit-identical with it on
/// or off.
#[derive(Debug)]
struct FleetObs {
    metrics: FleetMetrics,
    recorder: Option<FlightRecorder>,
    /// Rack-scope events (anomaly trips), exported as chip [`RACK`].
    ring: TraceRing,
    /// The combined `fleet_*` + `rack_*` snapshot, refreshed each epoch.
    snapshot: MetricsSnapshot,
    ids: RackIds,
    /// Lifetime fleet-channel counters as of last epoch (loss deltas).
    prev_sent: u64,
    prev_delivered: u64,
    /// Cumulative watchdog flip total as of last epoch.
    prev_flips: u64,
    /// Cumulative max |TD error| as of last epoch (new-high detection).
    prev_td_max: f64,
    /// Scratch for assembling a dump's merged trace window.
    trace_scratch: Vec<FleetEventRecord>,
}

impl FleetObs {
    fn new(recorder: Option<RecorderConfig>) -> Self {
        let mut metrics = FleetMetrics::new();
        let reg = metrics.rack_mut();
        let ids = RackIds {
            c_anomalies: reg.counter("anomalies"),
            g_share_spread: reg.gauge("arbiter_share_spread_w"),
            g_loss_rate: reg.gauge("budget_loss_rate"),
            g_market_donated: reg.gauge("market_donated_w"),
            g_market_granted: reg.gauge("market_granted_w"),
            g_market_residual: reg.gauge("market_residual_w"),
            g_market_conservation: reg.gauge("market_conservation_error_w"),
        };
        Self {
            metrics,
            recorder: recorder.map(FlightRecorder::new),
            ring: TraceRing::with_capacity(256),
            snapshot: MetricsSnapshot::default(),
            ids,
            prev_sent: 0,
            prev_delivered: 0,
            prev_flips: 0,
            prev_td_max: 0.0,
            trace_scratch: Vec::new(),
        }
    }
}

/// N chips stepped concurrently under one rack-level budget arbiter.
///
/// Build with [`FleetConfig`] + [`Fleet::new`], or through
/// [`RunBuilder::build_fleet`](crate::RunBuilder::build_fleet).
#[derive(Debug)]
pub struct Fleet {
    chips: Vec<FleetChip>,
    arbiter: BudgetArbiter,
    /// Arbiter → chip budget links (fault plans apply at fleet scope).
    channel: BudgetChannel,
    /// Rack-scope slack market over the arbitrated shares, present when
    /// [`FleetConfig::market`] is enabled.
    market: Option<MarketAllocator>,
    market_scratch: MarketScratch,
    last_market_round: Option<MarketRound>,
    total_budget: Watts,
    parallelism: Parallelism,
    epoch: u64,
    telemetry: FleetTelemetry,
    /// Rack-scope metric aggregation + flight recorder, when
    /// [`FleetConfig::diag`] is set.
    obs: Option<FleetObs>,
}

impl Fleet {
    /// Builds the fleet: `config.chips` replicas of the scenario with
    /// decorrelated system and exploration seeds, each with the fault plan
    /// attached under its own fleet index, under one arbiter whose budget
    /// messages run through the plan's fleet-scope budget faults.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for invalid fleet parameters, scenarios,
    /// fault plans, or controller configurations.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate()?;
        let n = config.chips;
        // Per-chip system configs first: the fleet budget needs the chips'
        // summed max power before any chip is built.
        let mut sys_configs = Vec::with_capacity(n);
        let mut fleet_max = 0.0;
        for k in 0..n {
            let mut scenario = config.scenario.clone();
            scenario.seed = stream_seed(config.scenario.seed, k as u64);
            let mut sys_config = scenario.try_system_config()?;
            if config.obs {
                sys_config.obs = ObsConfig::enabled();
            }
            fleet_max += sys_config.max_power().value();
            sys_configs.push(sys_config);
        }
        let total_budget = Watts::new(config.scenario.budget_frac * fleet_max);
        let arbiter = BudgetArbiter::new(
            total_budget,
            n,
            config.arbiter_period,
            config.arbiter_gain,
            config.min_share,
            config.demand_smoothing,
        )?;
        // The arbiter → chip links: one "core" per chip, degraded by the
        // plan's budget faults projected to fleet scope.
        let fleet_plan = config
            .plan
            .as_ref()
            .map(|p| p.fleet_budget_plan(n))
            .unwrap_or_default();
        let channel_seed = stream_seed(config.scenario.seed ^ FLEET_CHANNEL_SALT, 0);
        let channel = FaultEngine::compile(&fleet_plan, n, channel_seed)?.budget_channel();
        let market = config
            .market
            .enabled
            .then(|| MarketAllocator::new(n, config.market))
            .transpose()
            .map_err(|e| FleetError::InvalidConfig {
                field: "market",
                reason: e.to_string(),
            })?;
        // Warm start: load the snapshot once; every chip imports a copy of
        // the same learned tables (exploration stays decorrelated by seed).
        let warm = config
            .warm_start
            .as_ref()
            .map(|path| {
                PolicySnapshot::load(path).map_err(|e| FleetError::InvalidConfig {
                    field: "warm_start",
                    reason: format!("cannot load snapshot from {}: {e}", path.display()),
                })
            })
            .transpose()?;
        let mut chips = Vec::with_capacity(n);
        for (k, sys_config) in sys_configs.into_iter().enumerate() {
            let mut system = System::new(sys_config)?;
            if let Some(plan) = &config.plan {
                system.attach_faults_for_chip(plan, k as u32)?;
            }
            let mut odrl = config.odrl.clone();
            odrl.parallelism = config.scenario.parallelism;
            if config.watchdog {
                odrl.watchdog = WatchdogConfig::enabled();
            }
            if config.diag {
                odrl.obs = ObsConfig::with_diagnostics();
            } else if config.obs {
                odrl.obs = ObsConfig::enabled();
            }
            // Decorrelate exploration across chips (uniformly, so a
            // one-chip fleet is still a fleet, not a disguised chip run).
            odrl.seed ^= stream_seed(config.scenario.seed ^ ODRL_SEED_SALT, k as u64);
            let budget = Watts::new(arbiter.shares()[k]);
            let controller = build_controller(
                config.controller,
                &system,
                budget,
                odrl,
                config.watchdog,
                warm.as_ref(),
            )?;
            let obs = system.observation(budget);
            let cores = system.num_cores();
            chips.push(FleetChip {
                system,
                controller,
                budget,
                obs,
                actions: vec![LevelId(0); cores],
                power: Watts::ZERO,
                measured: Watts::ZERO,
                instructions: 0.0,
                energy: Joules::new(0.0),
                dt: Seconds::new(0.0),
                failed: None,
            });
        }
        Ok(Self {
            chips,
            arbiter,
            channel,
            market,
            market_scratch: MarketScratch::default(),
            last_market_round: None,
            total_budget,
            parallelism: config.parallelism,
            epoch: 0,
            telemetry: FleetTelemetry::default(),
            obs: config.diag.then(|| FleetObs::new(config.recorder.clone())),
        })
    }

    /// Number of chips.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Total cores across the fleet.
    pub fn num_cores(&self) -> usize {
        self.chips.iter().map(|c| c.system.num_cores()).sum()
    }

    /// Fleet epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The total fleet budget the arbiter divides.
    pub fn total_budget(&self) -> Watts {
        self.total_budget
    }

    /// Chip `k`'s current budget share.
    pub fn chip_budget(&self, k: usize) -> Watts {
        self.chips[k].budget
    }

    /// Sum of the per-chip shares *as arbitrated* (what the arbiter will
    /// send). Lossy links mean chips may *hold* different values; this is
    /// the conservation invariant on the arbiter side.
    pub fn arbitrated_sum(&self) -> f64 {
        self.arbiter.shares().iter().sum()
    }

    /// Sum of the budgets the chips currently hold.
    pub fn held_sum(&self) -> f64 {
        self.chips.iter().map(|c| c.budget.value()).sum()
    }

    /// The rack-level arbiter.
    pub fn arbiter(&self) -> &BudgetArbiter {
        &self.arbiter
    }

    /// The rack-scope slack market, when [`FleetConfig::market`] enables
    /// it.
    pub fn market(&self) -> Option<&MarketAllocator> {
        self.market.as_ref()
    }

    /// The ledger of the most recent rack-market round — `None` until the
    /// first market epoch (or with the market off). Conservation gates
    /// assert `conservation_error() == 0.0` on every round.
    pub fn market_round(&self) -> Option<&MarketRound> {
        self.last_market_round.as_ref()
    }

    /// Scalar fleet-wide telemetry.
    pub fn telemetry(&self) -> &FleetTelemetry {
        &self.telemetry
    }

    /// Chip `k`'s own simulator telemetry.
    pub fn chip_telemetry(&self, k: usize) -> &Telemetry {
        self.chips[k].system.telemetry()
    }

    /// The rack-scope metric aggregator, when [`FleetConfig::diag`] is
    /// set: per-chip snapshots merged with the exact summary algebra plus
    /// the rack registry (share spread, link loss rate, market ledger).
    pub fn fleet_metrics(&self) -> Option<&FleetMetrics> {
        self.obs.as_ref().map(|fo| &fo.metrics)
    }

    /// The latest combined `fleet_*` + `rack_*` metrics snapshot, `None`
    /// until the first diagnosed epoch (or with diagnostics off).
    pub fn fleet_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.obs
            .as_ref()
            .map(|fo| &fo.snapshot)
            .filter(|s| !s.counters.is_empty() || !s.gauges.is_empty())
    }

    /// The anomaly-triggered flight recorder, when
    /// [`FleetConfig::recorder`] attached one.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.obs.as_ref().and_then(|fo| fo.recorder.as_ref())
    }

    /// Completed anomaly dumps in trip order (empty with the recorder
    /// off).
    pub fn anomaly_dumps(&self) -> &[AnomalyDump] {
        self.flight_recorder().map_or(&[], FlightRecorder::dumps)
    }

    /// Steps the whole fleet one epoch (see the module docs for the
    /// pipeline and the determinism argument). Allocation-free in steady
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::System`] if any chip's simulator rejects its
    /// actions (first failing chip in fleet order).
    pub fn step_epoch(&mut self) -> Result<(), FleetError> {
        // 1. Arbitrate: on round boundaries, re-divide and send the fresh
        // shares down the (possibly faulty) links.
        self.channel.begin_epoch(self.epoch);
        if self.epoch > 0 && self.epoch.is_multiple_of(self.arbiter.period()) {
            self.arbiter.reallocate();
            for k in 0..self.chips.len() {
                self.channel.send(k, self.arbiter.shares()[k]);
            }
        }
        // 1b. Rack-scope slack market (see `odrl-market`): each market
        // epoch every chip's next-epoch demand is forecast from its
        // measured power; chips whose arbitrated share exceeds their need
        // donate the predicted slack and hot chips apply for it — watts
        // move between arbiter rounds instead of waiting out the (much
        // coarser) `arbiter_period`. Trades rewrite the arbitrated ledger
        // and the fresh shares ride the same lossy links reallocations
        // use, so fleet-scope fault plans exercise the market path too.
        if let Some(market) = &mut self.market {
            if self.epoch > 0 && self.epoch.is_multiple_of(market.period()) {
                let (powers, shares) = self.market_scratch.stage();
                for (k, chip) in self.chips.iter().enumerate() {
                    powers.push(chip.measured.value());
                    shares.push(self.arbiter.shares()[k]);
                }
                let round = market.step(self.total_budget.value(), &mut self.market_scratch);
                if round.moved() {
                    self.arbiter
                        .shares_mut()
                        .copy_from_slice(self.market_scratch.shares());
                    for k in 0..self.chips.len() {
                        self.channel.send(k, self.arbiter.shares()[k]);
                    }
                }
                self.last_market_round = Some(round);
            }
        }
        // 2. Deliver, in fleet order: an undelivered share leaves the old
        // budget in force.
        for (k, chip) in self.chips.iter_mut().enumerate() {
            if let Some(w) = self.channel.poll(k) {
                chip.budget = Watts::new(w);
            }
        }
        // 3. Step every chip, sharded: disjoint &mut chunks, no shared
        // state, so shard count cannot change results.
        shard_chunks(self.parallelism, &mut self.chips[..], |_, chunk| {
            for chip in chunk {
                chip.step();
            }
        });
        // 4. Reduce in fleet order.
        let mut fleet_power = Watts::ZERO;
        let mut instructions = 0.0;
        let mut energy = 0.0;
        let mut dt = Seconds::new(0.0);
        for (k, chip) in self.chips.iter_mut().enumerate() {
            if let Some(e) = chip.failed.take() {
                return Err(FleetError::System(e));
            }
            self.arbiter.observe(k, chip.measured);
            fleet_power = Watts::new(fleet_power.value() + chip.power.value());
            instructions += chip.instructions;
            energy += chip.energy.value();
            dt = chip.dt;
        }
        self.telemetry
            .record(fleet_power, self.total_budget, instructions, Joules::new(energy), dt);
        // 5. Rack-scope observability: merge the chips' fresh metric
        // snapshots, refresh the rack gauges, and feed the flight
        // recorder. Taken out of `self` for the duration so the helper
        // can walk chips/arbiter/market while mutating the aggregator.
        if let Some(mut fo) = self.obs.take() {
            self.observe_epoch(&mut fo, fleet_power);
            self.obs = Some(fo);
        }
        self.epoch += 1;
        Ok(())
    }

    /// One epoch of rack-scope observability (see [`FleetObs`]). Reads
    /// only; allocation-free in steady state — the merge and snapshot
    /// reuse their buffers, and dump assembly (which allocates) happens
    /// only on the rare, bounded anomaly trips.
    fn observe_epoch(&mut self, fo: &mut FleetObs, fleet_power: Watts) {
        let epoch = self.epoch;
        fo.metrics.begin_epoch(epoch);
        for (k, chip) in self.chips.iter().enumerate() {
            if let Some(snap) = chip.controller.metrics_snapshot() {
                fo.metrics.record_chip(k as u32, snap);
            }
        }
        // Rack gauges: arbiter share dispersion, fleet-link loss rate,
        // market conservation.
        let shares = self.arbiter.shares();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in shares {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        let spread = if shares.is_empty() { 0.0 } else { hi - lo };
        let sent = self.channel.messages_sent();
        let delivered = self.channel.messages_delivered();
        let d_sent = sent.saturating_sub(fo.prev_sent);
        // Delayed deliveries can land in a later epoch than their send,
        // so the per-epoch delivered delta may exceed the sent delta;
        // the loss count saturates at zero instead of going negative.
        let d_delivered = delivered.saturating_sub(fo.prev_delivered);
        fo.prev_sent = sent;
        fo.prev_delivered = delivered;
        let d_lost = d_sent.saturating_sub(d_delivered);
        let loss = if d_sent == 0 {
            0.0
        } else {
            d_lost as f64 / d_sent as f64
        };
        let ids = fo.ids;
        let reg = fo.metrics.rack_mut();
        reg.set(ids.g_share_spread, spread);
        reg.set(ids.g_loss_rate, loss);
        if let Some(market) = &self.market {
            reg.set(ids.g_market_donated, market.pool().total_donated());
            reg.set(ids.g_market_granted, market.pool().total_granted());
        }
        if let Some(round) = &self.last_market_round {
            reg.set(ids.g_market_residual, round.residual_w);
            reg.set(ids.g_market_conservation, round.conservation_error());
        }
        // Health sample: per-epoch deltas of the (cumulative) merged
        // counters, plus new-high detection on the cumulative max |TD|
        // so the blowup rule sees the epoch the spike happened, not
        // every epoch after it.
        let merged = fo.metrics.merged();
        let flips: u64 = ["watchdog_stale_flips", "watchdog_dead_flips", "watchdog_dark_flips"]
            .iter()
            .filter_map(|n| merged.counter_by_name(n))
            .sum();
        let d_flips = flips.saturating_sub(fo.prev_flips);
        fo.prev_flips = flips;
        let td_cum = merged
            .summary_by_name("rl_td_error")
            .map_or(0.0, |s| s.max_abs());
        let td_epoch = if td_cum > fo.prev_td_max { td_cum } else { 0.0 };
        fo.prev_td_max = fo.prev_td_max.max(td_cum);
        // Refresh the combined snapshot before any dump so a trip
        // captures this epoch's state.
        fo.metrics.snapshot_into(&mut fo.snapshot);
        if let Some(rec) = &mut fo.recorder {
            let sample = HealthSample {
                epoch,
                overshoot: fleet_power.value() > self.total_budget.value(),
                td_max_abs: td_epoch,
                watchdog_flips: d_flips,
                messages_sent: d_sent,
                messages_lost: d_lost,
            };
            if let Some(kind) = rec.observe(&sample) {
                let value = match kind {
                    AnomalyKind::OvershootStreak => fleet_power.value(),
                    AnomalyKind::TdErrorBlowup => td_epoch,
                    AnomalyKind::WatchdogFlipBurst => d_flips as f64,
                    AnomalyKind::BudgetLossSpike => loss,
                };
                fo.metrics.rack_mut().inc(ids.c_anomalies);
                fo.ring.record(epoch, 0, Event::Anomaly { kind, value });
                // Assemble the dump: header, combined snapshot, then the
                // last-window merged trace (chips + rack, canonical
                // `(epoch, chip, rank, core)` order → bytes are shard-
                // invariant).
                let window = rec.config().window;
                use std::io::Write as _;
                let mut bytes = Vec::new();
                writeln!(
                    bytes,
                    "# odrl_flight_record epoch {epoch} rule {} window {window}",
                    kind.name()
                )
                .expect("write to Vec cannot fail");
                bytes.extend_from_slice(fo.snapshot.to_prometheus().as_bytes());
                writeln!(bytes, "# odrl_trace").expect("write to Vec cannot fail");
                fo.trace_scratch.clear();
                self.extend_trace_into(&mut fo.trace_scratch);
                let mut rack_scratch: Vec<EventRecord> = Vec::new();
                fo.ring.extend_into(&mut rack_scratch);
                fo.trace_scratch.extend(
                    rack_scratch
                        .into_iter()
                        .map(|record| FleetEventRecord { chip: RACK, record }),
                );
                let cutoff = (epoch + 1).saturating_sub(window);
                fo.trace_scratch.retain(|r| r.record.epoch >= cutoff);
                merge_fleet_records(&mut fo.trace_scratch);
                write_fleet_jsonl(&mut bytes, &fo.trace_scratch)
                    .expect("write to Vec cannot fail");
                rec.record_dump(epoch, kind, bytes);
                // Re-snapshot so the exported combined snapshot reflects
                // the anomaly counter bump.
                fo.metrics.snapshot_into(&mut fo.snapshot);
            }
        }
    }

    /// Steps the fleet for `epochs` epochs.
    ///
    /// # Errors
    ///
    /// As [`Fleet::step_epoch`].
    pub fn run(&mut self, epochs: u64) -> Result<(), FleetError> {
        for _ in 0..epochs {
            self.step_epoch()?;
        }
        Ok(())
    }

    /// The serializable end-of-run digest (chips in fleet order).
    pub fn summary(&self) -> FleetSummary {
        FleetSummary {
            chips: self.chips.len(),
            cores_per_chip: self.chips.first().map_or(0, |c| c.system.num_cores()),
            epochs: self.telemetry.epochs,
            fleet_budget_w: self.total_budget.value(),
            total_instructions: self.telemetry.total_instructions,
            total_energy_j: self.telemetry.total_energy,
            peak_power_w: self.telemetry.peak_power,
            overshoot_epochs: self.telemetry.overshoot_epochs,
            overshoot_energy_j: self.telemetry.overshoot_energy,
            arbiter_rounds: self.arbiter.rounds(),
            per_chip: self
                .chips
                .iter()
                .enumerate()
                .map(|(k, c)| ChipSummary {
                    chip: k as u32,
                    budget_w: c.budget.value(),
                    instructions: c.system.telemetry().total_instructions(),
                    energy_j: c.system.telemetry().total_energy().value(),
                    peak_power_w: c.system.telemetry().peak_power().value(),
                })
                .collect(),
        }
    }

    /// Appends every chip's structured-event records (controller and
    /// system sides), tagged with the chip's fleet index, **unmerged**.
    /// Post-run export path — may allocate.
    pub fn extend_trace_into(&self, out: &mut Vec<FleetEventRecord>) {
        let mut scratch: Vec<EventRecord> = Vec::new();
        for (k, chip) in self.chips.iter().enumerate() {
            scratch.clear();
            chip.controller.extend_trace_into(&mut scratch);
            chip.system.extend_trace_into(&mut scratch);
            out.extend(scratch.iter().map(|&record| FleetEventRecord {
                chip: k as u32,
                record,
            }));
        }
        // Rack-scope events (anomaly trips) ride along under the RACK
        // sentinel chip index, which sorts after every real chip within
        // an epoch in the canonical merge order.
        if let Some(fo) = &self.obs {
            scratch.clear();
            fo.ring.extend_into(&mut scratch);
            out.extend(
                scratch
                    .iter()
                    .map(|&record| FleetEventRecord { chip: RACK, record }),
            );
        }
    }

    /// Every chip's structured-event records in the canonical fleet merge
    /// order `(epoch, chip, rank, core)` — bit-identical at every shard
    /// count. Post-run export path — allocates.
    pub fn merged_trace(&self) -> Vec<FleetEventRecord> {
        let mut records = Vec::new();
        self.extend_trace_into(&mut records);
        merge_fleet_records(&mut records);
        records
    }
}
