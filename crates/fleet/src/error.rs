//! The unified error surface of the fleet layer.
//!
//! Every failure mode of building or stepping a fleet — an invalid
//! [`FleetConfig`](crate::FleetConfig), a malformed
//! [`Scenario`](crate::Scenario), a simulator rejection, a controller
//! rejection, a fault plan that does not compile — converges on one
//! [`FleetError`] with `From` conversions from each substrate error, so a
//! binary can drive the whole stack with `?` end to end.

use crate::scenario::ScenarioError;
use odrl_core::OdRlError;
use odrl_faults::FaultError;
use odrl_manycore::SystemError;
use std::fmt;

/// Why a fleet (or a single chip run) could not be built or stepped.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A fleet-level parameter failed validation.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// The per-chip scenario failed validation.
    Scenario(ScenarioError),
    /// The simulator rejected a configuration or an action vector.
    System(SystemError),
    /// The OD-RL controller rejected its configuration.
    Controller(OdRlError),
    /// A fault plan did not compile.
    Faults(FaultError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid fleet config: {field}: {reason}")
            }
            Self::Scenario(e) => write!(f, "invalid scenario: {e}"),
            Self::System(e) => write!(f, "system error: {e}"),
            Self::Controller(e) => write!(f, "controller error: {e}"),
            Self::Faults(e) => write!(f, "fault plan error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidConfig { .. } => None,
            Self::Scenario(e) => Some(e),
            Self::System(e) => Some(e),
            Self::Controller(e) => Some(e),
            Self::Faults(e) => Some(e),
        }
    }
}

impl From<ScenarioError> for FleetError {
    fn from(e: ScenarioError) -> Self {
        Self::Scenario(e)
    }
}

impl From<SystemError> for FleetError {
    fn from(e: SystemError) -> Self {
        Self::System(e)
    }
}

impl From<OdRlError> for FleetError {
    fn from(e: OdRlError) -> Self {
        Self::Controller(e)
    }
}

impl From<FaultError> for FleetError {
    fn from(e: FaultError) -> Self {
        Self::Faults(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_std_error_with_sources() {
        let e = FleetError::InvalidConfig {
            field: "chips",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("chips"));
        let e: Box<dyn std::error::Error> = Box::new(e);
        assert!(e.source().is_none());

        let e = FleetError::from(ScenarioError::BudgetFraction(f64::NAN));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("budget fraction"));
    }
}
