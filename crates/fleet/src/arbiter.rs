//! The rack-level budget arbiter: the paper's coarse-grain global
//! reallocator lifted one level up.
//!
//! Where `odrl_core::BudgetAllocator` re-divides one chip's budget across
//! cores from measured per-core power, [`BudgetArbiter`] re-divides a
//! total fleet budget across chips from measured per-chip power: chips
//! running hot against their share (high utilisation → high smoothed
//! demand) pull budget from chips with headroom, floored at a minimum
//! share so no chip is starved, gain-blended so shares move gradually,
//! and renormalized so the shares sum to the fleet budget **exactly**
//! every round. All state is allocated at construction; a reallocation
//! round touches no heap.

use crate::error::FleetError;
use odrl_power::Watts;

/// Proportional-overshoot budget arbitration across the chips of a fleet.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    /// Total fleet budget, watts.
    total: f64,
    /// Epochs between reallocation rounds.
    period: u64,
    /// Blend factor toward the demand-proportional target (0 < gain ≤ 1).
    gain: f64,
    /// Per-chip floor as a fraction of the fair share `total / chips`.
    min_share: f64,
    /// EMA factor folding fresh measurements into smoothed demand.
    smoothing: f64,
    /// Current per-chip shares, watts. Invariant: sums to `total` (to
    /// round-off; the last chip absorbs the residual).
    shares: Vec<f64>,
    /// Smoothed per-chip power demand, watts.
    demand: Vec<f64>,
    /// Completed reallocation rounds.
    rounds: u64,
}

impl BudgetArbiter {
    /// Creates an arbiter over `chips` chips dividing `total` watts,
    /// starting from an equal split (and equal assumed demand).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for a non-positive budget or
    /// chip count, `period` of zero, `gain` outside `(0, 1]`, `min_share`
    /// outside `[0, 1]`, or `smoothing` outside `(0, 1]`.
    pub fn new(
        total: Watts,
        chips: usize,
        period: u64,
        gain: f64,
        min_share: f64,
        smoothing: f64,
    ) -> Result<Self, FleetError> {
        if chips == 0 {
            return Err(FleetError::InvalidConfig {
                field: "chips",
                reason: "fleet must have at least one chip".into(),
            });
        }
        if !(total.value().is_finite() && total.value() > 0.0) {
            return Err(FleetError::InvalidConfig {
                field: "budget",
                reason: format!("fleet budget must be finite and positive, got {total}"),
            });
        }
        if period == 0 {
            return Err(FleetError::InvalidConfig {
                field: "arbiter_period",
                reason: "reallocation period must be at least 1 epoch".into(),
            });
        }
        if !(gain.is_finite() && gain > 0.0 && gain <= 1.0) {
            return Err(FleetError::InvalidConfig {
                field: "arbiter_gain",
                reason: format!("gain must be in (0, 1], got {gain}"),
            });
        }
        if !(min_share.is_finite() && (0.0..=1.0).contains(&min_share)) {
            return Err(FleetError::InvalidConfig {
                field: "min_share",
                reason: format!("minimum share must be in [0, 1], got {min_share}"),
            });
        }
        if !(smoothing.is_finite() && smoothing > 0.0 && smoothing <= 1.0) {
            return Err(FleetError::InvalidConfig {
                field: "demand_smoothing",
                reason: format!("demand smoothing must be in (0, 1], got {smoothing}"),
            });
        }
        let fair = total.value() / chips as f64;
        Ok(Self {
            total: total.value(),
            period,
            gain,
            min_share,
            smoothing,
            shares: vec![fair; chips],
            demand: vec![fair; chips],
            rounds: 0,
        })
    }

    /// Epochs between reallocation rounds.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Total fleet budget.
    pub fn total(&self) -> Watts {
        Watts::new(self.total)
    }

    /// Current per-chip shares, watts.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Mutable ledger access for the rack-scope slack market: a market
    /// round rewrites the arbitrated shares in place (sum preserved to
    /// round-off; the next [`BudgetArbiter::reallocate`] renormalizes).
    pub(crate) fn shares_mut(&mut self) -> &mut [f64] {
        &mut self.shares
    }

    /// Completed reallocation rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one chip's measured power for the last epoch into its
    /// smoothed demand. Call once per chip per epoch, in chip order.
    pub fn observe(&mut self, chip: usize, measured: Watts) {
        let d = &mut self.demand[chip];
        *d += self.smoothing * (measured.value().max(0.0) - *d);
    }

    /// Runs one reallocation round in place: shares move toward the
    /// demand-proportional division of the total, floored at
    /// `min_share × total / chips`, and are renormalized to sum to the
    /// total exactly. Allocation-free.
    pub fn reallocate(&mut self) {
        let n = self.shares.len();
        let floor = self.min_share * self.total / n as f64;
        // Tiny positive demand floor: a fully idle fleet degrades to an
        // equal split instead of 0/0.
        let sum_d: f64 = self.demand.iter().map(|d| d.max(1e-12)).sum();
        // Demand-proportional targets, floored, gain-blended into the
        // current shares.
        let mut sum_s = 0.0;
        for (s, d) in self.shares.iter_mut().zip(&self.demand) {
            let target = (self.total * d.max(1e-12) / sum_d).max(floor);
            *s += self.gain * (target - *s);
            sum_s += *s;
        }
        // Renormalize (flooring can push the sum above the total), then
        // let the last chip absorb the round-off so the shares sum to the
        // total bit-exactly as a running sum.
        let scale = self.total / sum_s;
        let mut partial = 0.0;
        for s in &mut self.shares[..n - 1] {
            *s *= scale;
            partial += *s;
        }
        self.shares[n - 1] = self.total - partial;
        debug_assert!(self.shares[n - 1] >= 0.0, "last share went negative");
        self.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter(chips: usize) -> BudgetArbiter {
        BudgetArbiter::new(Watts::new(100.0), chips, 10, 0.5, 0.25, 0.25).unwrap()
    }

    fn assert_sums_to_total(a: &BudgetArbiter) {
        let mut partial = 0.0;
        for &s in &a.shares()[..a.shares().len() - 1] {
            partial += s;
        }
        // The last share is defined as total − partial, so the running sum
        // reproduces the total bit-exactly.
        assert_eq!(partial + a.shares()[a.shares().len() - 1], a.total().value());
    }

    #[test]
    fn starts_from_an_equal_split() {
        let a = arbiter(4);
        assert_eq!(a.shares(), &[25.0; 4]);
        assert_eq!(a.period(), 10);
        assert_eq!(a.rounds(), 0);
    }

    #[test]
    fn demand_pulls_budget_toward_hot_chips() {
        let mut a = arbiter(4);
        // Chip 0 runs hot against its share; chips 1-3 idle low.
        for _ in 0..20 {
            a.observe(0, Watts::new(40.0));
            for c in 1..4 {
                a.observe(c, Watts::new(10.0));
            }
        }
        for _ in 0..10 {
            a.reallocate();
        }
        assert!(
            a.shares()[0] > 35.0,
            "hot chip should gain budget, got {:?}",
            a.shares()
        );
        assert!(a.shares()[1] < 25.0);
        assert_sums_to_total(&a);
        assert_eq!(a.rounds(), 10);
    }

    #[test]
    fn min_share_floors_idle_chips() {
        let mut a = arbiter(4);
        // Chip 3 demands nothing at all.
        for _ in 0..50 {
            for c in 0..3 {
                a.observe(c, Watts::new(50.0));
            }
            a.observe(3, Watts::new(0.0));
            a.reallocate();
        }
        // Floor = 0.25 × 100 / 4 = 6.25 W; renormalization may shave it
        // slightly, so allow a small margin.
        assert!(
            a.shares()[3] > 5.5,
            "idle chip fell through the floor: {:?}",
            a.shares()
        );
        assert_sums_to_total(&a);
    }

    #[test]
    fn shares_always_sum_to_the_total() {
        let mut a = arbiter(7);
        for round in 0..100 {
            for c in 0..7 {
                // Arbitrary deterministic demand pattern.
                let w = ((c as f64 + 1.0) * 3.7 + round as f64 * 0.13) % 29.0;
                a.observe(c, Watts::new(w));
            }
            a.reallocate();
            assert_sums_to_total(&a);
            assert!(a.shares().iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn single_chip_keeps_the_whole_budget() {
        let mut a = arbiter(1);
        a.observe(0, Watts::new(12.0));
        a.reallocate();
        assert_eq!(a.shares(), &[100.0]);
    }

    #[test]
    fn rejects_bad_parameters() {
        let bad = [
            BudgetArbiter::new(Watts::new(100.0), 0, 10, 0.5, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(0.0), 4, 10, 0.5, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(f64::NAN), 4, 10, 0.5, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 0, 0.5, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 0.0, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 1.5, 0.25, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 0.5, -0.1, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 0.5, 1.1, 0.25),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 0.5, 0.25, 0.0),
            BudgetArbiter::new(Watts::new(100.0), 4, 10, 0.5, 0.25, 2.0),
        ];
        for (i, b) in bad.into_iter().enumerate() {
            assert!(
                matches!(b, Err(FleetError::InvalidConfig { .. })),
                "case {i} should be rejected"
            );
        }
    }
}
