//! Run descriptions: [`Scenario`] (one chip's size, workload, budget and
//! length) and [`ControllerKind`] (which controller drives it).
//!
//! Both moved here from `odrl-bench` with the fleet API redesign:
//! scenarios now feed the composable [`RunBuilder`](crate::RunBuilder)
//! instead of ad-hoc `build_*` free functions, and the same description
//! replicates across every chip of a [`Fleet`](crate::Fleet).

use crate::error::FleetError;
use odrl_controllers::{
    MaxBips, MaxBipsMode, OndemandGovernor, OndemandTuning, PidController, PidGains,
    PowerController, PriorityGreedy, StaticUniform, SteepestDrop,
};
use odrl_core::{HierarchicalOdRl, OdRlConfig, OdRlController, PolicySnapshot};
use odrl_manycore::{Parallelism, System, SystemConfig, SystemError, SystemSpec};
use odrl_power::Watts;
use odrl_workload::MixPolicy;
use std::fmt;

/// One experiment run: system size, workload, budget and length.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of cores.
    pub cores: usize,
    /// Chip power budget as a fraction of `SystemConfig::max_power()`.
    pub budget_frac: f64,
    /// Number of control epochs.
    pub epochs: u64,
    /// Workload assignment.
    pub mix: MixPolicy,
    /// Master seed.
    pub seed: u64,
    /// How the per-core work *inside* each epoch executes (forwarded to
    /// [`SystemConfig`] and [`OdRlConfig`]). Bit-identical at every setting;
    /// orthogonal to the cross-run fan-out of the bench harness and to the
    /// cross-chip fan-out of a [`Fleet`](crate::Fleet).
    pub parallelism: Parallelism,
}

/// Why a [`Scenario`] could not be turned into a runnable configuration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// `budget_frac` is not a finite, non-negative number.
    BudgetFraction(f64),
    /// The underlying system configuration failed validation.
    Config(SystemError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetFraction(v) => {
                write!(f, "budget fraction {v} is not a finite non-negative number")
            }
            Self::Config(e) => write!(f, "invalid system configuration: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::BudgetFraction(_) => None,
            Self::Config(e) => Some(e),
        }
    }
}

impl From<SystemError> for ScenarioError {
    fn from(e: SystemError) -> Self {
        Self::Config(e)
    }
}

impl Scenario {
    /// The evaluation's default setting: 64 cores, 60 % budget, mixed
    /// workload, 2 000 ms of simulated time.
    pub fn default_eval() -> Self {
        Self {
            cores: 64,
            budget_frac: 0.6,
            epochs: 2_000,
            mix: MixPolicy::RoundRobin,
            seed: 1,
            parallelism: Parallelism::Serial,
        }
    }

    /// Builds the system configuration for this scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the parameters do not describe a
    /// runnable system (zero cores, malformed budget fraction, ...), so
    /// CLI- or JSON-sourced scenarios surface as errors instead of panics.
    pub fn try_system_config(&self) -> Result<SystemConfig, ScenarioError> {
        if !self.budget_frac.is_finite() || self.budget_frac < 0.0 {
            return Err(ScenarioError::BudgetFraction(self.budget_frac));
        }
        SystemConfig::builder()
            .cores(self.cores)
            .mix(self.mix.clone())
            .seed(self.seed)
            .parallelism(self.parallelism)
            .build()
            .map_err(ScenarioError::from)
    }
}

/// The controllers under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControllerKind {
    /// The paper's contribution (fine + coarse grain).
    OdRl,
    /// OD-RL with the predictive slack market on: cores forecast demand,
    /// donate predicted slack into a reclaim pool and over-budget cores
    /// apply for it every epoch, between the reactive reallocations.
    OdRlMarket,
    /// Ablation: per-core RL without global reallocation.
    OdRlLocal,
    /// MaxBIPS with the knapsack-DP solver.
    MaxBipsDp,
    /// MaxBIPS with exhaustive search (≤ 10 cores).
    MaxBipsExhaustive,
    /// Greedy steepest drop.
    SteepestDrop,
    /// Chip-level PID capping.
    Pid,
    /// Static worst-case provisioning.
    StaticUniform,
    /// Priority-greedy budget hand-out.
    PriorityGreedy,
    /// Linux-ondemand-style utilization governor (budget-oblivious).
    Ondemand,
    /// Hierarchical OD-RL: per-cluster controllers (16 cores each) under a
    /// top-level budget reallocator.
    OdRlHier,
}

impl ControllerKind {
    /// The four-way comparison the headline tables use.
    pub fn headline_set() -> Vec<ControllerKind> {
        vec![
            ControllerKind::OdRl,
            ControllerKind::MaxBipsDp,
            ControllerKind::SteepestDrop,
            ControllerKind::Pid,
        ]
    }

    /// Short display name (matches each controller's `name()`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::OdRl => "od-rl",
            Self::OdRlMarket => "od-rl-market",
            Self::OdRlLocal => "od-rl-local",
            Self::MaxBipsDp => "maxbips-dp",
            Self::MaxBipsExhaustive => "maxbips-exhaustive",
            Self::SteepestDrop => "steepest-drop",
            Self::Pid => "pid",
            Self::StaticUniform => "static-uniform",
            Self::PriorityGreedy => "priority-greedy",
            Self::Ondemand => "ondemand",
            Self::OdRlHier => "od-rl-hier",
        }
    }

    /// Instantiates the controller for a spec and budget.
    ///
    /// # Panics
    ///
    /// Panics if construction fails (e.g. exhaustive MaxBIPS on too many
    /// cores) — experiment harnesses pass vetted sizes.
    pub fn build(&self, spec: &SystemSpec, budget: Watts) -> Box<dyn PowerController> {
        self.build_with_odrl_config(spec, budget, OdRlConfig::default())
    }

    /// Instantiates the controller with an explicit OD-RL configuration
    /// (ignored by the baselines); used by the ablation harnesses.
    ///
    /// # Panics
    ///
    /// As [`ControllerKind::build`].
    pub fn build_with_odrl_config(
        &self,
        spec: &SystemSpec,
        budget: Watts,
        odrl: OdRlConfig,
    ) -> Box<dyn PowerController> {
        self.try_instantiate(spec, budget, odrl)
            .expect("valid controller configuration")
    }

    /// Instantiates the controller, surfacing construction failures as
    /// [`FleetError`] instead of panicking (the `?`-friendly path
    /// [`RunBuilder`](crate::RunBuilder) and [`Fleet`](crate::Fleet) use).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Controller`] when an OD-RL variant rejects
    /// its configuration and [`FleetError::InvalidConfig`] when a baseline
    /// rejects the spec (e.g. exhaustive MaxBIPS on too many cores).
    pub fn try_instantiate(
        &self,
        spec: &SystemSpec,
        budget: Watts,
        odrl: OdRlConfig,
    ) -> Result<Box<dyn PowerController + Send>, FleetError> {
        let baseline = |e: odrl_controllers::ControllerError| FleetError::InvalidConfig {
            field: "controller",
            reason: e.to_string(),
        };
        Ok(match self {
            Self::OdRl => Box::new(OdRlController::new(odrl, spec, budget)?),
            Self::OdRlMarket => {
                let mut odrl = odrl;
                odrl.market.enabled = true;
                Box::new(OdRlController::new(odrl, spec, budget)?)
            }
            Self::OdRlLocal => Box::new(OdRlController::without_reallocation(odrl, spec, budget)?),
            Self::MaxBipsDp => Box::new(MaxBips::dp(spec.clone()).map_err(baseline)?),
            Self::MaxBipsExhaustive => {
                Box::new(MaxBips::new(spec.clone(), MaxBipsMode::Exhaustive).map_err(baseline)?)
            }
            Self::SteepestDrop => Box::new(SteepestDrop::new(spec.clone()).map_err(baseline)?),
            Self::Pid => {
                Box::new(PidController::new(spec.clone(), PidGains::default()).map_err(baseline)?)
            }
            Self::StaticUniform => {
                Box::new(StaticUniform::for_budget(spec.clone(), budget).map_err(baseline)?)
            }
            Self::PriorityGreedy => Box::new(PriorityGreedy::new(spec.clone()).map_err(baseline)?),
            Self::Ondemand => Box::new(
                OndemandGovernor::new(spec.clone(), OndemandTuning::default()).map_err(baseline)?,
            ),
            Self::OdRlHier => Box::new(HierarchicalOdRl::new(odrl, spec, budget, 16)?),
        })
    }
}

/// Builds the controller for an already-built system, wiring the OD-RL
/// watchdog path: with `watchdog` set, OD-RL variants run their sensor
/// watchdog and route budget messages through the system's attached fault
/// engine (graceful degradation on); baselines take no degradation
/// machinery either way — they simply suffer the faults. With `warm` set,
/// OD-RL variants boot from the given Q-table snapshot instead of the
/// optimistic cold tables (other kinds have no tables to restore and
/// reject the request).
pub(crate) fn build_controller(
    kind: ControllerKind,
    system: &System,
    budget: Watts,
    odrl: OdRlConfig,
    watchdog: bool,
    warm: Option<&PolicySnapshot>,
) -> Result<Box<dyn PowerController + Send>, FleetError> {
    match kind {
        ControllerKind::OdRl | ControllerKind::OdRlMarket | ControllerKind::OdRlLocal
            if watchdog || warm.is_some() =>
        {
            let mut odrl = odrl;
            if kind == ControllerKind::OdRlMarket {
                odrl.market.enabled = true;
            }
            let mut c = if kind == ControllerKind::OdRlLocal {
                OdRlController::without_reallocation(odrl, &system.spec(), budget)
            } else {
                OdRlController::new(odrl, &system.spec(), budget)
            }?;
            if watchdog {
                if let Some(engine) = system.fault_engine() {
                    c.attach_budget_faults(engine)?;
                }
            }
            if let Some(snap) = warm {
                c.import_policy(snap.clone())?;
            }
            Ok(Box::new(c))
        }
        _ if warm.is_some() => Err(FleetError::InvalidConfig {
            field: "warm_start",
            reason: format!(
                "controller {} cannot boot from a Q-table snapshot",
                kind.label()
            ),
        }),
        _ => kind.try_instantiate(&system.spec(), budget, odrl),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            cores: 8,
            budget_frac: 0.6,
            epochs: 50,
            mix: MixPolicy::RoundRobin,
            seed: 3,
            parallelism: Parallelism::Serial,
        }
    }

    #[test]
    fn invalid_scenarios_surface_as_errors() {
        let mut s = tiny_scenario();
        s.cores = 0;
        assert!(matches!(
            s.try_system_config(),
            Err(ScenarioError::Config(_))
        ));
        let mut s = tiny_scenario();
        s.budget_frac = f64::NAN;
        assert!(matches!(
            s.try_system_config(),
            Err(ScenarioError::BudgetFraction(_))
        ));
        let mut s = tiny_scenario();
        s.budget_frac = -0.3;
        let err = s.try_system_config().unwrap_err();
        assert!(err.to_string().contains("budget fraction"));
        assert!(tiny_scenario().try_system_config().is_ok());
    }

    #[test]
    fn try_instantiate_surfaces_baseline_failures() {
        // Exhaustive MaxBIPS refuses large systems: the fallible path must
        // report that as an error, not a panic.
        let config = tiny_scenario().try_system_config().unwrap();
        let mut big = tiny_scenario();
        big.cores = 64;
        let big_config = big.try_system_config().unwrap();
        let system = System::new(big_config).unwrap();
        let r = ControllerKind::MaxBipsExhaustive.try_instantiate(
            &system.spec(),
            Watts::new(10.0),
            OdRlConfig::default(),
        );
        assert!(matches!(r, Err(FleetError::InvalidConfig { .. })));
        // And the happy path still constructs every headline controller.
        let system = System::new(config).unwrap();
        for kind in ControllerKind::headline_set() {
            assert!(kind
                .try_instantiate(&system.spec(), Watts::new(10.0), OdRlConfig::default())
                .is_ok());
        }
    }
}
