//! Fleet-level configuration, validated like `OdRlConfig`.

use crate::error::FleetError;
use crate::scenario::{ControllerKind, Scenario};
use odrl_core::{MarketConfig, OdRlConfig};
use odrl_faults::FaultPlan;
use odrl_manycore::Parallelism;
use odrl_obs::RecorderConfig;
use std::path::PathBuf;

/// Everything a [`Fleet`](crate::Fleet) needs: how many chips, what each
/// chip looks like (one [`Scenario`] replicated with decorrelated seeds),
/// which controller drives each chip, and how the rack-level
/// [`BudgetArbiter`](crate::BudgetArbiter) re-divides the fleet budget.
///
/// The fleet budget is `scenario.budget_frac × Σ chip max power` — the
/// same fraction a single-chip run uses, scaled to the fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of chips in the fleet.
    pub chips: usize,
    /// The per-chip run description. Chip `k` runs this scenario with its
    /// system seed decorrelated by `stream_seed(seed, k)`, so chips are
    /// statistically independent replicas. `scenario.parallelism` shards
    /// the work *inside* each chip.
    pub scenario: Scenario,
    /// The controller driving every chip.
    pub controller: ControllerKind,
    /// OD-RL configuration for the per-chip controllers (ignored by
    /// baselines). Seeds are decorrelated per chip; `parallelism` is
    /// overridden with `scenario.parallelism`.
    pub odrl: OdRlConfig,
    /// Optional fault plan, attached to every chip with that chip's fleet
    /// index (chip-scoped entries apply only on their chip) and projected
    /// onto the arbiter → chip budget links (see
    /// `FaultPlan::fleet_budget_plan`).
    pub plan: Option<FaultPlan>,
    /// Run the OD-RL sensor watchdog and route per-chip budget faults
    /// through the controllers (graceful degradation on).
    pub watchdog: bool,
    /// Enable structured tracing on every chip's system and controller.
    pub obs: bool,
    /// Record learning-health diagnostics on every chip (TD-error,
    /// greedy-Q-span and visit-spread summaries, exploration rate,
    /// quantized-storage health) and aggregate per-chip metric snapshots
    /// into rack-level [`FleetMetrics`](odrl_obs::FleetMetrics) each
    /// epoch. Requires [`FleetConfig::obs`]. Off by default; when off the
    /// run is bit-identical to a plain `obs` run.
    pub diag: bool,
    /// Attach the anomaly-triggered flight recorder at rack scope: each
    /// epoch a [`HealthSample`](odrl_obs::HealthSample) derived from the
    /// aggregated metrics is checked against the configured watermark
    /// rules, and a trip dumps the last-window merged trace plus the
    /// combined metrics snapshot. Requires [`FleetConfig::diag`].
    pub recorder: Option<RecorderConfig>,
    /// Epochs between fleet budget reallocation rounds. Deliberately
    /// coarser than the intra-chip reallocation period by default: the
    /// rack moves budget on a slower timescale than the chip.
    pub arbiter_period: u64,
    /// Arbiter blend factor toward the demand-proportional split.
    pub arbiter_gain: f64,
    /// Per-chip budget floor as a fraction of the fair share.
    pub min_share: f64,
    /// EMA factor for the arbiter's smoothed per-chip demand.
    pub demand_smoothing: f64,
    /// Rack-scope predictive slack market over the arbitrated per-chip
    /// shares (see `odrl-market`): chips forecast next-epoch demand from
    /// measured power, donate predicted slack and apply for reclaimed
    /// watts between arbiter rounds, with the fresh shares riding the
    /// same lossy budget links. Off by default. Orthogonal to the
    /// intra-chip market knob on [`OdRlConfig`].
    pub market: MarketConfig,
    /// Cross-chip fan-out: how many worker shards step chips concurrently
    /// within one fleet epoch. Bit-identical at every setting. Mutually
    /// exclusive with intra-chip parallelism (`scenario.parallelism`):
    /// both layers share one worker pool whose jobs must not nest.
    pub parallelism: Parallelism,
    /// Optional path to a binary `PolicySnapshot` every chip's OD-RL
    /// controller boots from (warm start). Loaded once and imported per
    /// chip; only OD-RL controller kinds accept it.
    pub warm_start: Option<PathBuf>,
}

impl FleetConfig {
    /// A fleet of `chips` replicas of `scenario` with the default arbiter
    /// policy: OD-RL on every chip, reallocation every 40 epochs (4× the
    /// intra-chip period), gain 0.5, 25 % fair-share floor, EMA 0.25,
    /// serial fan-out.
    pub fn new(chips: usize, scenario: Scenario) -> Self {
        Self {
            chips,
            scenario,
            controller: ControllerKind::OdRl,
            odrl: OdRlConfig::default(),
            plan: None,
            watchdog: false,
            obs: false,
            diag: false,
            recorder: None,
            arbiter_period: 40,
            arbiter_gain: 0.5,
            min_share: 0.25,
            demand_smoothing: 0.25,
            market: MarketConfig::default(),
            parallelism: Parallelism::Serial,
            warm_start: None,
        }
    }

    /// Validates every fleet-level parameter (the arbiter's are checked
    /// again, against the concrete budget, when the fleet is built).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] naming the offending field.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.chips == 0 {
            return Err(FleetError::InvalidConfig {
                field: "chips",
                reason: "fleet must have at least one chip".into(),
            });
        }
        if self.arbiter_period == 0 {
            return Err(FleetError::InvalidConfig {
                field: "arbiter_period",
                reason: "reallocation period must be at least 1 epoch".into(),
            });
        }
        if !(self.arbiter_gain.is_finite() && self.arbiter_gain > 0.0 && self.arbiter_gain <= 1.0)
        {
            return Err(FleetError::InvalidConfig {
                field: "arbiter_gain",
                reason: format!("gain must be in (0, 1], got {}", self.arbiter_gain),
            });
        }
        if !(self.min_share.is_finite() && (0.0..=1.0).contains(&self.min_share)) {
            return Err(FleetError::InvalidConfig {
                field: "min_share",
                reason: format!("minimum share must be in [0, 1], got {}", self.min_share),
            });
        }
        if !(self.demand_smoothing.is_finite()
            && self.demand_smoothing > 0.0
            && self.demand_smoothing <= 1.0)
        {
            return Err(FleetError::InvalidConfig {
                field: "demand_smoothing",
                reason: format!(
                    "demand smoothing must be in (0, 1], got {}",
                    self.demand_smoothing
                ),
            });
        }
        if self.diag && !self.obs {
            return Err(FleetError::InvalidConfig {
                field: "diag",
                reason: "learning-health diagnostics require obs (structured tracing)".into(),
            });
        }
        if let Some(rec) = &self.recorder {
            if !self.diag {
                return Err(FleetError::InvalidConfig {
                    field: "recorder",
                    reason: "the flight recorder needs diag (it reads the aggregated \
                             learning-health metrics)"
                        .into(),
                });
            }
            if rec.window == 0 {
                return Err(FleetError::InvalidConfig {
                    field: "recorder",
                    reason: "dump window must be at least 1 epoch".into(),
                });
            }
            if rec.rules.is_empty() {
                return Err(FleetError::InvalidConfig {
                    field: "recorder",
                    reason: "at least one watermark rule is required".into(),
                });
            }
            if rec.max_dumps == 0 {
                return Err(FleetError::InvalidConfig {
                    field: "recorder",
                    reason: "max_dumps must be at least 1".into(),
                });
            }
        }
        if self.parallelism.is_parallel() && self.scenario.parallelism.is_parallel() {
            // Both layers dispatch onto the same persistent worker pool,
            // whose jobs must not enqueue nested jobs (deadlock): pick one
            // layer to shard.
            return Err(FleetError::InvalidConfig {
                field: "parallelism",
                reason: "cross-chip and intra-chip parallelism are mutually exclusive; \
                         set scenario.parallelism to Serial to shard across chips"
                    .into(),
            });
        }
        self.market
            .validate()
            .map_err(|e| FleetError::InvalidConfig {
                field: "market",
                reason: e.to_string(),
            })?;
        self.odrl.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let config = FleetConfig::new(4, Scenario::default_eval());
        assert!(config.validate().is_ok());
        assert_eq!(config.arbiter_period, 40);
    }

    #[test]
    fn rejects_bad_fleet_parameters() {
        let base = || FleetConfig::new(4, Scenario::default_eval());
        let mut c = base();
        c.chips = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.arbiter_period = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.arbiter_gain = 0.0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.min_share = 1.5;
        assert!(c.validate().is_err());
        let mut c = base();
        c.demand_smoothing = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base();
        c.odrl.realloc_gain = -1.0;
        assert!(matches!(c.validate(), Err(FleetError::Controller(_))));
        let mut c = base();
        c.market = MarketConfig::enabled();
        assert!(c.validate().is_ok());
        c.market.period = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("market"), "{err}");
    }

    #[test]
    fn diag_and_recorder_require_their_parents() {
        let mut c = FleetConfig::new(2, Scenario::default_eval());
        c.diag = true;
        assert!(c.validate().is_err());
        c.obs = true;
        assert!(c.validate().is_ok());
        c.recorder = Some(RecorderConfig::default());
        assert!(c.validate().is_ok());
        c.diag = false;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("recorder"), "{err}");
        c.diag = true;
        c.recorder = Some(RecorderConfig {
            window: 0,
            ..RecorderConfig::default()
        });
        assert!(c.validate().is_err());
        c.recorder = Some(RecorderConfig {
            rules: Vec::new(),
            ..RecorderConfig::default()
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_nested_parallelism() {
        let mut c = FleetConfig::new(4, Scenario::default_eval());
        c.parallelism = Parallelism::Threads(2);
        c.scenario.parallelism = Parallelism::Threads(2);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        // Either layer alone is fine.
        c.scenario.parallelism = Parallelism::Serial;
        assert!(c.validate().is_ok());
        c.parallelism = Parallelism::Serial;
        c.scenario.parallelism = Parallelism::Threads(2);
        assert!(c.validate().is_ok());
    }
}
