//! The composable run builder: one entry point for every closed-loop
//! configuration the harnesses used to assemble by hand.
//!
//! `RunBuilder::new(scenario)` then chain what the run needs — a
//! controller, a fault plan, the watchdog, structured tracing, a warm
//! start, a parallelism override — and finish with
//! [`RunBuilder::build_chip`] (one system + controller pair) or
//! [`RunBuilder::build_fleet`] (N chips under the rack arbiter).

use crate::config::FleetConfig;
use crate::error::FleetError;
use crate::fleet::Fleet;
use crate::scenario::{build_controller, ControllerKind, Scenario};
use odrl_controllers::PowerController;
use odrl_core::{MarketConfig, OdRlConfig, WatchdogConfig};
use odrl_faults::FaultPlan;
use odrl_manycore::{Parallelism, System};
use odrl_core::PolicySnapshot;
use odrl_obs::{ObsConfig, RecorderConfig};
use odrl_power::Watts;
use std::path::PathBuf;

/// A ready-to-run chip: the system, its controller, and the budget the
/// scenario's fraction resolved to. Feed to a run loop (e.g.
/// `odrl_bench::run_loop`).
pub struct ChipRun {
    /// The simulator.
    pub system: System,
    /// The controller under test.
    pub controller: Box<dyn PowerController + Send>,
    /// The chip power budget.
    pub budget: Watts,
}

impl ChipRun {
    /// Splits into the `(system, controller, budget)` triple the legacy
    /// bench helpers returned.
    pub fn into_parts(self) -> (System, Box<dyn PowerController + Send>, Watts) {
        (self.system, self.controller, self.budget)
    }
}

impl std::fmt::Debug for ChipRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChipRun")
            .field("controller", &self.controller.name())
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// Composable builder for single-chip and fleet runs.
#[derive(Debug, Clone)]
pub struct RunBuilder {
    scenario: Scenario,
    kind: ControllerKind,
    odrl: OdRlConfig,
    plan: Option<FaultPlan>,
    watchdog: bool,
    obs: bool,
    diag: bool,
    recorder: Option<RecorderConfig>,
    arbiter_period: u64,
    arbiter_gain: f64,
    min_share: f64,
    demand_smoothing: f64,
    market: Option<MarketConfig>,
    fleet_parallelism: Parallelism,
    warm_start: Option<PathBuf>,
}

impl RunBuilder {
    /// Starts a builder from a scenario, with the defaults the legacy
    /// helpers used: OD-RL, default `OdRlConfig`, no faults, no watchdog,
    /// no tracing, and (for fleets) the [`FleetConfig::new`] arbiter
    /// policy.
    pub fn new(scenario: Scenario) -> Self {
        let defaults = FleetConfig::new(1, scenario);
        Self {
            scenario: defaults.scenario,
            kind: defaults.controller,
            odrl: defaults.odrl,
            plan: None,
            watchdog: false,
            obs: false,
            diag: false,
            recorder: None,
            arbiter_period: defaults.arbiter_period,
            arbiter_gain: defaults.arbiter_gain,
            min_share: defaults.min_share,
            demand_smoothing: defaults.demand_smoothing,
            market: None,
            fleet_parallelism: Parallelism::Serial,
            warm_start: None,
        }
    }

    /// Which controller drives the run (default OD-RL).
    #[must_use]
    pub fn controller(mut self, kind: ControllerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Explicit OD-RL configuration (ignored by baselines). The scenario's
    /// parallelism still overrides `odrl.parallelism`, and
    /// [`RunBuilder::watchdog`] / [`RunBuilder::obs`] still override the
    /// watchdog and tracing fields.
    #[must_use]
    pub fn odrl(mut self, odrl: OdRlConfig) -> Self {
        self.odrl = odrl;
        self
    }

    /// Attach a fault plan (chip-scoped entries apply per fleet index).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Run the OD-RL sensor watchdog and route budget messages through
    /// the plan's unreliable channel (graceful degradation on). Baselines
    /// take no degradation machinery either way.
    #[must_use]
    pub fn watchdog(mut self, watchdog: bool) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Enable structured tracing on the system(s) and controller(s).
    #[must_use]
    pub fn obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Record learning-health diagnostics (TD-error / Q-span /
    /// visit-spread summaries, exploration rate, quantized-storage
    /// health) and, on fleet builds, aggregate per-chip snapshots into
    /// rack-level `FleetMetrics`. Implies [`RunBuilder::obs`].
    #[must_use]
    pub fn diag(mut self, diag: bool) -> Self {
        self.diag = diag;
        if diag {
            self.obs = true;
        }
        self
    }

    /// Attach the anomaly-triggered flight recorder at rack scope (fleet
    /// builds only). Implies [`RunBuilder::diag`] (and so
    /// [`RunBuilder::obs`]). Pass `RecorderConfig::default()` for the
    /// stock watermark rules.
    #[must_use]
    pub fn recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self.diag = true;
        self.obs = true;
        self
    }

    /// Override the scenario's intra-chip parallelism.
    #[must_use]
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.scenario.parallelism = par;
        self
    }

    /// Cross-chip fan-out for [`RunBuilder::build_fleet`] (ignored by
    /// [`RunBuilder::build_chip`]). Mutually exclusive with intra-chip
    /// parallelism.
    #[must_use]
    pub fn fleet_parallelism(mut self, par: Parallelism) -> Self {
        self.fleet_parallelism = par;
        self
    }

    /// Epochs between fleet budget reallocation rounds (fleet runs only).
    #[must_use]
    pub fn arbiter_period(mut self, period: u64) -> Self {
        self.arbiter_period = period;
        self
    }

    /// Arbiter blend factor toward the demand-proportional split (fleet
    /// runs only).
    #[must_use]
    pub fn arbiter_gain(mut self, gain: f64) -> Self {
        self.arbiter_gain = gain;
        self
    }

    /// Run the predictive slack market (see `odrl-market`) at the build
    /// target's scope: [`RunBuilder::build_chip`] enables the controller's
    /// market arm (cores donate/apply inside the chip), while
    /// [`RunBuilder::build_fleet`] runs the rack-scope market over the
    /// arbitrated per-chip shares. Pass `MarketConfig::enabled()` for the
    /// defaults, or a tuned config.
    #[must_use]
    pub fn market(mut self, market: MarketConfig) -> Self {
        self.market = Some(market);
        self
    }

    /// Boot the OD-RL controller(s) from a binary `PolicySnapshot` on
    /// disk (see `odrl_core::PolicySnapshot::save`) instead of cold
    /// optimistic tables. Fleet builds import the same snapshot into every
    /// chip; only OD-RL controller kinds accept a warm start.
    #[must_use]
    pub fn warm_start<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Builds one chip: system (faults attached as chip 0, tracing per
    /// [`RunBuilder::obs`]), controller (watchdog wiring per
    /// [`RunBuilder::watchdog`]), and the resolved budget.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for invalid scenarios, fault plans, or
    /// controller configurations.
    pub fn build_chip(self) -> Result<ChipRun, FleetError> {
        let mut config = self.scenario.try_system_config()?;
        if self.obs {
            config.obs = ObsConfig::enabled();
        }
        let budget = Watts::new(self.scenario.budget_frac * config.max_power().value());
        let mut system = System::new(config)?;
        if let Some(plan) = &self.plan {
            system.attach_faults(plan)?;
        }
        let mut odrl = self.odrl;
        odrl.parallelism = self.scenario.parallelism;
        if self.watchdog {
            odrl.watchdog = WatchdogConfig::enabled();
        }
        if self.diag {
            odrl.obs = ObsConfig::with_diagnostics();
        } else if self.obs {
            odrl.obs = ObsConfig::enabled();
        }
        if let Some(market) = self.market {
            odrl.market = market;
        }
        let warm = self
            .warm_start
            .as_ref()
            .map(|path| {
                PolicySnapshot::load(path).map_err(|e| FleetError::InvalidConfig {
                    field: "warm_start",
                    reason: format!("cannot load snapshot from {}: {e}", path.display()),
                })
            })
            .transpose()?;
        let controller =
            build_controller(self.kind, &system, budget, odrl, self.watchdog, warm.as_ref())?;
        Ok(ChipRun {
            system,
            controller,
            budget,
        })
    }

    /// Builds a fleet of `chips` replicas of the scenario under the rack
    /// arbiter (see [`Fleet::new`] for seeding and fault scoping).
    ///
    /// # Errors
    ///
    /// As [`Fleet::new`].
    pub fn build_fleet(self, chips: usize) -> Result<Fleet, FleetError> {
        let config = FleetConfig {
            chips,
            scenario: self.scenario,
            controller: self.kind,
            odrl: self.odrl,
            plan: self.plan,
            watchdog: self.watchdog,
            obs: self.obs,
            diag: self.diag,
            recorder: self.recorder,
            arbiter_period: self.arbiter_period,
            arbiter_gain: self.arbiter_gain,
            min_share: self.min_share,
            demand_smoothing: self.demand_smoothing,
            market: self.market.unwrap_or_default(),
            parallelism: self.fleet_parallelism,
            warm_start: self.warm_start,
        };
        Fleet::new(config)
    }
}
