//! Hierarchical metric aggregation: chip snapshots → fleet → rack.
//!
//! [`FleetMetrics`] merges the per-chip [`MetricsSnapshot`]s the fleet
//! already takes each epoch into one fleet-level snapshot, and carries its
//! own rack-level [`MetricsRegistry`] for quantities that only exist above
//! the chips (arbiter share dispersion, market conservation, budget-channel
//! loss). The merge is keyed by `(epoch, chip)`: the fleet calls
//! [`FleetMetrics::begin_epoch`] then [`FleetMetrics::record_chip`] once
//! per chip **in ascending fleet order** from its serial reduce phase, so
//! the merged result never depends on which shard *stepped* a chip —
//! bit-identical at any shard or chip parallelism.
//!
//! Merge semantics: counters and gauges sum element-wise (chip layouts are
//! identical by construction — every chip registers the same metrics in
//! the same order), summaries merge exactly (integer adds — see
//! [`StreamSummary::merge`]). After the first epoch sizes the buffers,
//! per-epoch aggregation is allocation-free.

use crate::registry::{MetricsRegistry, MetricsSnapshot};
use crate::summary::StreamSummary;

/// Deterministic fleet-level merge of per-chip metric snapshots plus a
/// rack-scope registry.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    epoch: u64,
    chips: u32,
    last_chip: Option<u32>,
    merged: MetricsSnapshot,
    rack: MetricsRegistry,
}

impl FleetMetrics {
    /// An empty aggregator (buffers sized on the first epoch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new fleet epoch: zeroes the merged values in place
    /// (layout and names are kept, so this never allocates).
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.chips = 0;
        self.last_chip = None;
        self.merged.epoch = epoch;
        for v in &mut self.merged.counters {
            *v = 0;
        }
        for v in &mut self.merged.gauges {
            *v = 0.0;
        }
        for s in &mut self.merged.summaries {
            s.reset();
        }
    }

    /// Folds one chip's snapshot into the fleet merge. Must be called in
    /// ascending `chip` order within an epoch (the fleet's serial reduce
    /// phase does this naturally); the first chip of the first epoch sizes
    /// the merged layout.
    pub fn record_chip(&mut self, chip: u32, snap: &MetricsSnapshot) {
        debug_assert!(
            self.last_chip.is_none_or(|last| chip > last),
            "record_chip must be called in ascending chip order"
        );
        debug_assert!(
            self.chips == 0
                || (self.merged.counters.len() == snap.counters.len()
                    && self.merged.gauges.len() == snap.gauges.len()
                    && self.merged.summaries.len() == snap.summaries.len()),
            "all chips must share one registry layout"
        );
        self.last_chip = Some(chip);
        self.chips += 1;
        if self.merged.counter_names.len() != snap.counter_names.len()
            || self.merged.gauge_names.len() != snap.gauge_names.len()
            || self.merged.summary_names.len() != snap.summary_names.len()
        {
            self.merged.counter_names = snap.counter_names.clone();
            self.merged.gauge_names = snap.gauge_names.clone();
            self.merged.summary_names = snap.summary_names.clone();
            self.merged.counters.resize(snap.counters.len(), 0);
            self.merged.gauges.resize(snap.gauges.len(), 0.0);
            self.merged
                .summaries
                .resize(snap.summaries.len(), StreamSummary::new());
        }
        for (dst, v) in self.merged.counters.iter_mut().zip(&snap.counters) {
            *dst += *v;
        }
        for (dst, v) in self.merged.gauges.iter_mut().zip(&snap.gauges) {
            *dst += *v;
        }
        for (dst, s) in self.merged.summaries.iter_mut().zip(&snap.summaries) {
            dst.merge(s);
        }
    }

    /// The current epoch's merged fleet snapshot (chip metrics summed /
    /// exactly merged; names unprefixed, as registered on the chips).
    pub fn merged(&self) -> &MetricsSnapshot {
        &self.merged
    }

    /// How many chips have been folded in this epoch.
    pub fn chips(&self) -> u32 {
        self.chips
    }

    /// The rack-scope registry (read side).
    pub fn rack(&self) -> &MetricsRegistry {
        &self.rack
    }

    /// The rack-scope registry (register/update side).
    pub fn rack_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.rack
    }

    /// Copies the combined fleet view into `snap`: merged chip metrics
    /// prefixed `fleet_`, rack metrics prefixed `rack_`. Names are rebuilt
    /// only when the layout changed, so steady-state calls are
    /// allocation-free.
    pub fn snapshot_into(&self, snap: &mut MetricsSnapshot) {
        snap.epoch = self.epoch;
        let nc = self.merged.counters.len() + self.rack.counters().count();
        let ng = self.merged.gauges.len() + self.rack.gauges().count();
        let ns = self.merged.summaries.len() + self.rack.summaries().count();
        snap.counters.resize(nc, 0);
        snap.gauges.resize(ng, 0.0);
        snap.summaries.resize(ns, StreamSummary::new());
        if snap.counter_names.len() != nc
            || snap.gauge_names.len() != ng
            || snap.summary_names.len() != ns
        {
            snap.counter_names = self
                .merged
                .counter_names
                .iter()
                .map(|n| format!("fleet_{n}"))
                .chain(self.rack.counters().map(|(n, _)| format!("rack_{n}")))
                .collect();
            snap.gauge_names = self
                .merged
                .gauge_names
                .iter()
                .map(|n| format!("fleet_{n}"))
                .chain(self.rack.gauges().map(|(n, _)| format!("rack_{n}")))
                .collect();
            snap.summary_names = self
                .merged
                .summary_names
                .iter()
                .map(|n| format!("fleet_{n}"))
                .chain(self.rack.summaries().map(|(n, _)| format!("rack_{n}")))
                .collect();
        }
        for (dst, v) in snap
            .counters
            .iter_mut()
            .zip(self.merged.counters.iter().copied().chain(self.rack.counters().map(|(_, v)| v)))
        {
            *dst = v;
        }
        for (dst, v) in snap
            .gauges
            .iter_mut()
            .zip(self.merged.gauges.iter().copied().chain(self.rack.gauges().map(|(_, v)| v)))
        {
            *dst = v;
        }
        for (dst, s) in snap
            .summaries
            .iter_mut()
            .zip(self.merged.summaries.iter().chain(self.rack.summaries().map(|(_, s)| s)))
        {
            *dst = *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip_snapshot(epoch: u64, counter: u64, gauge: f64, samples: &[f64]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("explorations");
        let g = reg.gauge("loss_rate");
        let s = reg.summary("td_error");
        reg.add(c, counter);
        reg.set(g, gauge);
        for &x in samples {
            reg.record_summary(s, x);
        }
        let mut snap = MetricsSnapshot::new();
        reg.snapshot_into(epoch, &mut snap);
        snap
    }

    #[test]
    fn chips_merge_by_sum_and_exact_summary_merge() {
        let mut fm = FleetMetrics::new();
        fm.begin_epoch(9);
        fm.record_chip(0, &chip_snapshot(9, 3, 0.25, &[1.0, -2.0]));
        fm.record_chip(1, &chip_snapshot(9, 4, 0.5, &[0.5]));
        assert_eq!(fm.chips(), 2);
        let m = fm.merged();
        assert_eq!(m.epoch, 9);
        assert_eq!(m.counter_by_name("explorations"), Some(7));
        assert_eq!(m.gauge_by_name("loss_rate"), Some(0.75));
        let s = m.summary_by_name("td_error").unwrap();
        assert_eq!(s.count(), 3);
        // Exactly what one registry seeing all three samples would hold.
        let all = chip_snapshot(9, 0, 0.0, &[1.0, -2.0, 0.5]);
        assert_eq!(*s, all.summaries[0]);
    }

    #[test]
    fn begin_epoch_resets_without_resizing() {
        let mut fm = FleetMetrics::new();
        fm.begin_epoch(0);
        fm.record_chip(0, &chip_snapshot(0, 5, 1.0, &[2.0]));
        let cap = fm.merged().counters.capacity();
        fm.begin_epoch(1);
        assert_eq!(fm.chips(), 0);
        assert_eq!(fm.merged().counter_by_name("explorations"), Some(0));
        assert_eq!(fm.merged().summary_by_name("td_error").unwrap().count(), 0);
        fm.record_chip(0, &chip_snapshot(1, 2, 0.0, &[]));
        assert_eq!(fm.merged().counter_by_name("explorations"), Some(2));
        assert_eq!(fm.merged().counters.capacity(), cap);
    }

    #[test]
    fn combined_snapshot_prefixes_fleet_and_rack() {
        let mut fm = FleetMetrics::new();
        let g = fm.rack_mut().gauge("share_spread");
        fm.begin_epoch(4);
        fm.record_chip(0, &chip_snapshot(4, 1, 0.5, &[1.5]));
        fm.rack_mut().set(g, 0.125);
        let mut out = MetricsSnapshot::new();
        fm.snapshot_into(&mut out);
        assert_eq!(out.epoch, 4);
        assert_eq!(out.counter_by_name("fleet_explorations"), Some(1));
        assert_eq!(out.gauge_by_name("fleet_loss_rate"), Some(0.5));
        assert_eq!(out.gauge_by_name("rack_share_spread"), Some(0.125));
        assert_eq!(out.summary_by_name("fleet_td_error").unwrap().count(), 1);
        // Steady-state re-snapshot keeps the same names.
        let names = out.gauge_names.clone();
        fm.snapshot_into(&mut out);
        assert_eq!(out.gauge_names, names);
        // And it round-trips through the Prometheus codec.
        let back = MetricsSnapshot::from_prometheus(&out.to_prometheus()).unwrap();
        assert_eq!(back, out);
    }
}
