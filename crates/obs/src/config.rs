//! Observability configuration and the aggregate event-count summary.

use serde::{Deserialize, Serialize};

/// Ring capacity used when [`ObsConfig::ring_capacity`] is 0 ("default").
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Quantized-storage health-scan period (epochs) used when
/// [`ObsConfig::diag_period`] is 0 ("default").
pub const DEFAULT_DIAG_PERIOD: u64 = 16;

/// Observability switches, embedded in `SystemConfig` and `OdRlConfig`.
///
/// Defaults to **off**: the instrumented components then hold no tracer at
/// all and every recording site is a single `Option` check on the no-op
/// path, so disabled tracing costs nothing measurable and allocates
/// nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Whether structured tracing + metrics are recorded.
    #[serde(default)]
    pub enabled: bool,
    /// Per-ring record capacity; 0 means [`DEFAULT_RING_CAPACITY`].
    /// Rings never grow: once full they overwrite their oldest records.
    #[serde(default)]
    pub ring_capacity: usize,
    /// Whether learning-health diagnostics (TD-error / greedy-Q-span /
    /// exploration summaries and quantized-storage health) are recorded.
    /// Requires `enabled`; off by default like all obs features.
    #[serde(default)]
    pub diag: bool,
    /// How often (epochs) the quantized-storage health scan runs; 0 means
    /// [`DEFAULT_DIAG_PERIOD`]. The scan walks every Q-row, so it is
    /// period-gated rather than per-epoch.
    #[serde(default)]
    pub diag_period: u64,
}

impl ObsConfig {
    /// Tracing enabled with the default ring capacity.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ring_capacity: 0,
            diag: false,
            diag_period: 0,
        }
    }

    /// Tracing enabled with an explicit per-ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            ring_capacity: capacity,
            ..Self::enabled()
        }
    }

    /// Tracing and learning-health diagnostics both enabled, with default
    /// ring capacity and scan period.
    pub fn with_diagnostics() -> Self {
        Self {
            diag: true,
            ..Self::enabled()
        }
    }

    /// The capacity rings are actually built with (resolves the 0 =
    /// default sentinel).
    pub fn effective_ring_capacity(&self) -> usize {
        if self.ring_capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            self.ring_capacity
        }
    }

    /// Whether learning-health diagnostics are actually on (requires the
    /// tracer itself to be enabled).
    pub fn diagnostics(&self) -> bool {
        self.enabled && self.diag
    }

    /// The quantized-health scan period actually used (resolves the 0 =
    /// default sentinel).
    pub fn effective_diag_period(&self) -> u64 {
        if self.diag_period == 0 {
            DEFAULT_DIAG_PERIOD
        } else {
            self.diag_period
        }
    }
}

/// Per-kind event totals for one run, summed across the instrumented
/// components (controller watchdog/budget/RL events plus simulator fault
/// edges). The compact summary `exp_resilience` prints per cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Watchdog stale-flag transitions (enter + clear).
    pub watchdog_stale: u64,
    /// Watchdog dead-flag transitions (enter + clear).
    pub watchdog_dead: u64,
    /// Chip-dark transitions (enter + clear).
    pub watchdog_dark: u64,
    /// Coarse-grain budget reallocations applied.
    pub reallocations: u64,
    /// Dead-core budget redistributions applied.
    pub redistributions: u64,
    /// Budget-overshoot onsets.
    pub overshoot_onsets: u64,
    /// Slack-market rounds that collected donations.
    #[serde(default)]
    pub market_donations: u64,
    /// Slack-market rounds that granted reclaimed watts.
    #[serde(default)]
    pub market_grants: u64,
    /// RL exploration choices taken.
    pub explorations: u64,
    /// Fault windows opened (all classes).
    pub faults_injected: u64,
    /// Fault windows closed (all classes).
    pub faults_cleared: u64,
}

impl EventCounts {
    /// Element-wise sum of two summaries (e.g. controller + system).
    #[must_use]
    pub fn merged(&self, other: &EventCounts) -> EventCounts {
        EventCounts {
            watchdog_stale: self.watchdog_stale + other.watchdog_stale,
            watchdog_dead: self.watchdog_dead + other.watchdog_dead,
            watchdog_dark: self.watchdog_dark + other.watchdog_dark,
            reallocations: self.reallocations + other.reallocations,
            redistributions: self.redistributions + other.redistributions,
            overshoot_onsets: self.overshoot_onsets + other.overshoot_onsets,
            market_donations: self.market_donations + other.market_donations,
            market_grants: self.market_grants + other.market_grants,
            explorations: self.explorations + other.explorations,
            faults_injected: self.faults_injected + other.faults_injected,
            faults_cleared: self.faults_cleared + other.faults_cleared,
        }
    }

    /// Total events across every kind.
    pub fn total(&self) -> u64 {
        self.watchdog_stale
            + self.watchdog_dead
            + self.watchdog_dark
            + self.reallocations
            + self.redistributions
            + self.overshoot_onsets
            + self.market_donations
            + self.market_grants
            + self.explorations
            + self.faults_injected
            + self.faults_cleared
    }

    /// Compact per-kind rendering for table cells, e.g.
    /// `st2 dd1 dk0 ra12 rd3 ov5 f8` (explorations omitted: they dominate
    /// volume without being resilience events; the market pair `dn/gr`
    /// is appended only when the slack market actually traded, so runs
    /// without a market render exactly as before).
    pub fn compact(&self) -> String {
        let mut s = format!(
            "st{} dd{} dk{} ra{} rd{} ov{} f{}",
            self.watchdog_stale,
            self.watchdog_dead,
            self.watchdog_dark,
            self.reallocations,
            self.redistributions,
            self.overshoot_onsets,
            self.faults_injected
        );
        if self.market_donations > 0 || self.market_grants > 0 {
            s.push_str(&format!(
                " dn{} gr{}",
                self.market_donations, self.market_grants
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_with_sentinel_capacity() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.effective_ring_capacity(), DEFAULT_RING_CAPACITY);
        assert_eq!(ObsConfig::with_ring_capacity(128).effective_ring_capacity(), 128);
        assert!(ObsConfig::enabled().enabled);
        // Diagnostics default off and require the tracer to be enabled.
        assert!(!ObsConfig::enabled().diagnostics());
        let d = ObsConfig::with_diagnostics();
        assert!(d.enabled && d.diag && d.diagnostics());
        assert_eq!(d.effective_diag_period(), DEFAULT_DIAG_PERIOD);
        let orphan = ObsConfig {
            diag: true,
            ..ObsConfig::default()
        };
        assert!(!orphan.diagnostics());
    }

    #[test]
    fn serde_missing_fields_mean_disabled() {
        let c: ObsConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(c, ObsConfig::default());
        let c: ObsConfig = serde_json::from_str(r#"{"enabled":true}"#).unwrap();
        assert!(c.enabled);
        assert_eq!(c.effective_ring_capacity(), DEFAULT_RING_CAPACITY);
        let json = serde_json::to_string(&ObsConfig::with_ring_capacity(64)).unwrap();
        let back: ObsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.effective_ring_capacity(), 64);
        // Old configs without the diag fields deserialize to diag-off.
        let c: ObsConfig = serde_json::from_str(r#"{"enabled":true,"ring_capacity":32}"#).unwrap();
        assert!(!c.diag && c.diag_period == 0);
        let back: ObsConfig =
            serde_json::from_str(&serde_json::to_string(&ObsConfig::with_diagnostics()).unwrap())
                .unwrap();
        assert_eq!(back, ObsConfig::with_diagnostics());
    }

    #[test]
    fn counts_merge_and_render() {
        let a = EventCounts {
            watchdog_stale: 2,
            faults_injected: 1,
            ..EventCounts::default()
        };
        let b = EventCounts {
            watchdog_stale: 1,
            explorations: 10,
            ..EventCounts::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.watchdog_stale, 3);
        assert_eq!(m.total(), 14);
        assert_eq!(m.compact(), "st3 dd0 dk0 ra0 rd0 ov0 f1");
        // Market counters merge and only then appear in the rendering.
        let c = EventCounts {
            market_donations: 4,
            market_grants: 2,
            ..EventCounts::default()
        };
        let mc = m.merged(&c);
        assert_eq!(mc.total(), 20);
        assert_eq!(mc.compact(), "st3 dd0 dk0 ra0 rd0 ov0 f1 dn4 gr2");
    }
}
