//! Anomaly-triggered flight recorder.
//!
//! The recorder watches one [`HealthSample`] per fleet epoch — a handful
//! of scalars the fleet already computes (overshoot flag, max |TD error|,
//! watchdog flips, budget-channel message counts) — against a set of
//! declarative [`WatermarkRule`]s. When a rule trips, the owner dumps the
//! last-N-epoch merged trace window plus a metrics snapshot into an
//! [`AnomalyDump`] tagged with the triggering rule, and records an
//! `Event::Anomaly` in the rack trace.
//!
//! `observe` is allocation-free: the flip-burst window is a preallocated
//! ring, streak/cooldown state is a few integers, and rule evaluation is a
//! linear scan. Dump *assembly* (done by the caller via [`FlightRecorder::
//! record_dump`]) does allocate, but trips are rare by construction —
//! cooldown and `max_dumps` bound them — so the steady state stays
//! alloc-free.
//!
//! Determinism: every input to `observe` derives from the simulated run
//! (no wall clock), rules are evaluated in their configured order with the
//! first match winning, and dump bytes are built from shard-invariant
//! merged traces and snapshots — so dump bytes are identical at any shard
//! count.

use crate::event::AnomalyKind;

/// One declarative watermark rule for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatermarkRule {
    /// Trip when the fleet has been over its rack budget for this many
    /// consecutive epochs.
    OvershootStreak {
        /// Consecutive over-budget epochs required to trip.
        epochs: u32,
    },
    /// Trip when the epoch's max |TD error| exceeds this watermark.
    TdErrorBlowup {
        /// Trip threshold on max |TD error|.
        max_abs: f64,
    },
    /// Trip when at least `flips` watchdog flag transitions happen within
    /// the last `window` epochs.
    WatchdogFlipBurst {
        /// Flip count required to trip.
        flips: u64,
        /// Sliding window length in epochs.
        window: u32,
    },
    /// Trip when the budget channel's per-epoch loss rate reaches
    /// `loss_rate` with at least `min_sent` messages sent (so a single
    /// lost message out of one can't trip it).
    BudgetLossSpike {
        /// Lost/sent ratio required to trip.
        loss_rate: f64,
        /// Minimum messages sent this epoch for the rule to apply.
        min_sent: u64,
    },
}

impl WatermarkRule {
    /// The anomaly kind this rule reports when it trips.
    pub fn kind(self) -> AnomalyKind {
        match self {
            Self::OvershootStreak { .. } => AnomalyKind::OvershootStreak,
            Self::TdErrorBlowup { .. } => AnomalyKind::TdErrorBlowup,
            Self::WatchdogFlipBurst { .. } => AnomalyKind::WatchdogFlipBurst,
            Self::BudgetLossSpike { .. } => AnomalyKind::BudgetLossSpike,
        }
    }
}

/// Flight-recorder configuration: the trace window to dump, the rule set,
/// and the trip-rate bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// How many trailing epochs of merged trace go into each dump.
    pub window: u64,
    /// Watermark rules, evaluated in order; the first match trips.
    pub rules: Vec<WatermarkRule>,
    /// Minimum epochs between trips (suppresses re-trips while the same
    /// incident is still unfolding).
    pub cooldown: u64,
    /// Hard cap on dumps per run; once reached, `observe` stops tripping.
    pub max_dumps: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            window: 32,
            rules: vec![
                WatermarkRule::OvershootStreak { epochs: 25 },
                WatermarkRule::TdErrorBlowup { max_abs: 50.0 },
                WatermarkRule::WatchdogFlipBurst { flips: 8, window: 16 },
                WatermarkRule::BudgetLossSpike {
                    loss_rate: 0.5,
                    min_sent: 4,
                },
            ],
            cooldown: 64,
            max_dumps: 4,
        }
    }
}

/// One epoch's health scalars, fed to [`FlightRecorder::observe`]. All
/// values come from the simulated run, never from the wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthSample {
    /// The fleet epoch this sample describes.
    pub epoch: u64,
    /// Whether fleet power exceeded the rack budget this epoch.
    pub overshoot: bool,
    /// Max |TD error| observed across every chip this epoch.
    pub td_max_abs: f64,
    /// Watchdog flag transitions (enter + clear) across the fleet this
    /// epoch.
    pub watchdog_flips: u64,
    /// Budget-channel messages sent this epoch (fleet channel).
    pub messages_sent: u64,
    /// Of those, messages lost to channel faults.
    pub messages_lost: u64,
}

/// One completed anomaly dump: the trip epoch, the rule kind, and the
/// serialized dump (metrics snapshot + trace window) as produced by the
/// owner.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyDump {
    /// Epoch the rule tripped.
    pub epoch: u64,
    /// Which rule tripped.
    pub kind: AnomalyKind,
    /// The dump body (Prometheus text + JSONL trace window).
    pub bytes: Vec<u8>,
}

/// The anomaly-triggered flight recorder. Owns rule state and completed
/// dumps; the fleet (or any other owner) calls [`observe`](Self::observe)
/// once per epoch and, on a trip, assembles the dump bytes and hands them
/// back via [`record_dump`](Self::record_dump).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    config: RecorderConfig,
    overshoot_streak: u32,
    /// Per-epoch watchdog flip counts for the largest flip-burst window;
    /// a preallocated ring indexed by `epoch % len`.
    flips: Vec<u64>,
    flips_pos: usize,
    last_trip: Option<u64>,
    trips: u64,
    dumps: Vec<AnomalyDump>,
}

impl FlightRecorder {
    /// Builds a recorder; preallocates the flip window for the largest
    /// configured burst rule so `observe` never allocates.
    pub fn new(config: RecorderConfig) -> Self {
        let max_window = config
            .rules
            .iter()
            .map(|r| match r {
                WatermarkRule::WatchdogFlipBurst { window, .. } => *window as usize,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
            .max(1);
        Self {
            config,
            overshoot_streak: 0,
            flips: vec![0; max_window],
            flips_pos: 0,
            last_trip: None,
            trips: 0,
            dumps: Vec::new(),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Feeds one epoch's health scalars; returns the tripped rule's kind,
    /// or `None`. Allocation-free. Honors cooldown and stops tripping once
    /// `max_dumps` dumps have been recorded.
    pub fn observe(&mut self, sample: &HealthSample) -> Option<AnomalyKind> {
        // Update rolling state first so suppressed epochs still count.
        if sample.overshoot {
            self.overshoot_streak += 1;
        } else {
            self.overshoot_streak = 0;
        }
        self.flips[self.flips_pos] = sample.watchdog_flips;
        self.flips_pos = (self.flips_pos + 1) % self.flips.len();

        if self.dumps.len() >= self.config.max_dumps {
            return None;
        }
        if let Some(last) = self.last_trip {
            if sample.epoch.saturating_sub(last) < self.config.cooldown {
                return None;
            }
        }
        let tripped = self.config.rules.iter().find_map(|rule| match *rule {
            WatermarkRule::OvershootStreak { epochs } => {
                (self.overshoot_streak >= epochs).then(|| rule.kind())
            }
            WatermarkRule::TdErrorBlowup { max_abs } => {
                (sample.td_max_abs > max_abs).then(|| rule.kind())
            }
            WatermarkRule::WatchdogFlipBurst { flips, window } => {
                let w = (window as usize).min(self.flips.len());
                let n = self.flips.len();
                // The last `w` entries written, ending at flips_pos - 1.
                let total: u64 = (0..w)
                    .map(|i| self.flips[(self.flips_pos + n - 1 - i) % n])
                    .sum();
                (total >= flips).then(|| rule.kind())
            }
            WatermarkRule::BudgetLossSpike {
                loss_rate,
                min_sent,
            } => {
                let sent = sample.messages_sent;
                (sent >= min_sent
                    && sample.messages_lost as f64 >= loss_rate * sent as f64)
                    .then(|| rule.kind())
            }
        });
        if tripped.is_some() {
            self.last_trip = Some(sample.epoch);
            self.trips += 1;
        }
        tripped
    }

    /// Stores a completed dump assembled by the owner after a trip.
    pub fn record_dump(&mut self, epoch: u64, kind: AnomalyKind, bytes: Vec<u8>) {
        self.dumps.push(AnomalyDump { epoch, kind, bytes });
    }

    /// Completed dumps, in trip order.
    pub fn dumps(&self) -> &[AnomalyDump] {
        &self.dumps
    }

    /// Total rule trips so far (counts trips even if the owner never
    /// recorded a dump for one).
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> HealthSample {
        HealthSample {
            epoch,
            ..HealthSample::default()
        }
    }

    #[test]
    fn overshoot_streak_trips_and_resets() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            rules: vec![WatermarkRule::OvershootStreak { epochs: 3 }],
            cooldown: 0,
            ..RecorderConfig::default()
        });
        for e in 0..2 {
            let s = HealthSample {
                overshoot: true,
                ..sample(e)
            };
            assert_eq!(rec.observe(&s), None);
        }
        // A clear epoch resets the streak.
        assert_eq!(rec.observe(&sample(2)), None);
        for e in 3..5 {
            let s = HealthSample {
                overshoot: true,
                ..sample(e)
            };
            assert_eq!(rec.observe(&s), None);
        }
        let s = HealthSample {
            overshoot: true,
            ..sample(5)
        };
        assert_eq!(rec.observe(&s), Some(AnomalyKind::OvershootStreak));
        assert_eq!(rec.trips(), 1);
    }

    #[test]
    fn td_blowup_respects_cooldown_and_max_dumps() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            rules: vec![WatermarkRule::TdErrorBlowup { max_abs: 10.0 }],
            cooldown: 5,
            max_dumps: 2,
            ..RecorderConfig::default()
        });
        let hot = |e| HealthSample {
            td_max_abs: 99.0,
            ..sample(e)
        };
        assert_eq!(rec.observe(&hot(0)), Some(AnomalyKind::TdErrorBlowup));
        rec.record_dump(0, AnomalyKind::TdErrorBlowup, vec![1]);
        // Inside the cooldown: suppressed.
        assert_eq!(rec.observe(&hot(3)), None);
        assert_eq!(rec.observe(&hot(5)), Some(AnomalyKind::TdErrorBlowup));
        rec.record_dump(5, AnomalyKind::TdErrorBlowup, vec![2]);
        // Dump cap reached: never trips again.
        assert_eq!(rec.observe(&hot(50)), None);
        assert_eq!(rec.dumps().len(), 2);
        assert_eq!(rec.trips(), 2);
    }

    #[test]
    fn flip_burst_uses_sliding_window() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            rules: vec![WatermarkRule::WatchdogFlipBurst { flips: 6, window: 3 }],
            cooldown: 0,
            ..RecorderConfig::default()
        });
        let flips = |e, n| HealthSample {
            watchdog_flips: n,
            ..sample(e)
        };
        assert_eq!(rec.observe(&flips(0, 2)), None);
        assert_eq!(rec.observe(&flips(1, 2)), None);
        assert_eq!(
            rec.observe(&flips(2, 2)),
            Some(AnomalyKind::WatchdogFlipBurst)
        );
        // Old epochs age out of the window.
        assert_eq!(rec.observe(&flips(3, 0)), None);
        assert_eq!(rec.observe(&flips(4, 0)), None);
        assert_eq!(rec.observe(&flips(5, 5)), None);
    }

    #[test]
    fn loss_spike_needs_min_sent() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            rules: vec![WatermarkRule::BudgetLossSpike {
                loss_rate: 0.5,
                min_sent: 4,
            }],
            cooldown: 0,
            ..RecorderConfig::default()
        });
        let s = HealthSample {
            messages_sent: 2,
            messages_lost: 2,
            ..sample(0)
        };
        assert_eq!(rec.observe(&s), None);
        let s = HealthSample {
            messages_sent: 4,
            messages_lost: 2,
            ..sample(1)
        };
        assert_eq!(rec.observe(&s), Some(AnomalyKind::BudgetLossSpike));
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            rules: vec![
                WatermarkRule::TdErrorBlowup { max_abs: 1.0 },
                WatermarkRule::BudgetLossSpike {
                    loss_rate: 0.1,
                    min_sent: 1,
                },
            ],
            cooldown: 0,
            ..RecorderConfig::default()
        });
        let s = HealthSample {
            td_max_abs: 5.0,
            messages_sent: 10,
            messages_lost: 10,
            ..sample(0)
        };
        assert_eq!(rec.observe(&s), Some(AnomalyKind::TdErrorBlowup));
    }
}
