//! Exact-merge streaming summaries for learning-health diagnostics.
//!
//! [`StreamSummary`] is a fixed-size (no heap) accumulator of a scalar
//! stream: count, mean, variance, min/max and a 32-bucket log2-magnitude
//! histogram. Its defining property is that **merging is exact**: samples
//! are quantized once at a fixed scale and accumulated as integers, so
//! `merge` is integer addition and min/max — associative and commutative
//! bit for bit. Summaries recorded per RL shard therefore merge to the
//! same value at every shard count, which is what lets fleet-level
//! telemetry (and anomaly-dump bytes) stay invariant across 1/2/4/8-shard
//! runs. Welford-style `f64` merging cannot give that guarantee: floating
//! additions reorder with the shard layout.
//!
//! The quantization grid is 2⁻²⁰ (~1e-6) over a clamped range of ±2²⁰
//! (~1e6) — far finer and wider than TD errors, Q-spans or visit-count
//! dispersions ever get in this workspace. Derived statistics (mean,
//! variance) are computed from the exact integer sums at render time.

/// Number of log2-magnitude buckets a summary tracks.
pub const SUMMARY_BUCKETS: usize = 32;

/// Fixed quantization scale: samples land on a 2⁻²⁰ grid.
const Q_SCALE: f64 = (1u64 << 20) as f64;

/// Samples are clamped to ±2²⁰ before quantization, so a quantized value
/// fits ±2⁴⁰ and `sum_sq` stays far below `i128::MAX` for any feasible
/// count.
const Q_CLAMP: i64 = 1 << 40;

/// Smallest magnitude exponent a bucket resolves: bucket 0 holds
/// `|x| < 2^-15`, bucket `i` (1..=31) holds `2^(i-16) <= |x| < 2^(i-15)`
/// with the top bucket absorbing everything `>= 2^15`.
const BUCKET_MIN_EXP: i32 = -15;

/// A zero-alloc streaming summary with exactly-associative merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    count: u64,
    sum_q: i128,
    sum_sq_q: i128,
    min: f64,
    max: f64,
    buckets: [u64; SUMMARY_BUCKETS],
}

impl Default for StreamSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantizes a finite sample onto the fixed 2⁻²⁰ grid, clamped to ±2⁴⁰
/// quanta. Round-half-away-from-zero via a half-ulp shift and truncating
/// cast — one `cvttsd2si` on the hot path, where `f64::round` is a libm
/// call on baseline x86-64. Deterministic on every platform.
#[inline]
fn quantize(x: f64) -> i64 {
    let scaled = x * Q_SCALE;
    if scaled >= Q_CLAMP as f64 {
        Q_CLAMP
    } else if scaled <= -(Q_CLAMP as f64) {
        -Q_CLAMP
    } else {
        let half = if scaled >= 0.0 { 0.5 } else { -0.5 };
        (scaled + half) as i64
    }
}

/// The log2-magnitude bucket of a finite sample, from the exponent bits —
/// no `log2` call, so the result is exact on every platform.
#[inline]
fn bucket_of(x: f64) -> usize {
    let bits = x.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormals (and ±0) are far below the 2^-15 floor.
        return 0;
    }
    let exp = biased - 1023; // floor(log2 |x|)
    let idx = exp - BUCKET_MIN_EXP; // 0 at the floor
    if idx < 0 {
        0
    } else {
        (idx as usize + 1).min(SUMMARY_BUCKETS - 1)
    }
}

impl StreamSummary {
    /// An empty summary.
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum_q: 0,
            sum_sq_q: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; SUMMARY_BUCKETS],
        }
    }

    /// Records one sample. Non-finite samples are ignored (mirroring
    /// `odrl_metrics::Histogram::record`). Allocation-free.
    #[inline]
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        let q = i128::from(quantize(x));
        self.sum_q += q;
        self.sum_sq_q += q * q;
        self.buckets[bucket_of(x)] += 1;
    }

    /// Tracks only the extremes of a sample — two compares, no count,
    /// moment or bucket update — for signals whose peak must stay
    /// epoch-accurate while the full moments are sampled on the
    /// diagnostics period (TD error in the RL hot loop). Extreme-only
    /// updates merge exactly (min/max are associative and commutative)
    /// and render through [`StreamSummary::min`]/[`StreamSummary::max`]/
    /// [`StreamSummary::max_abs`] immediately, while the count, moments
    /// and buckets stay untouched. Non-finite samples are ignored.
    #[inline]
    pub fn record_extreme(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Folds `other` in. Integer adds plus min/max — exactly associative
    /// and commutative, so any merge tree over the same samples yields the
    /// same bits.
    pub fn merge(&mut self, other: &StreamSummary) {
        if other.count == 0 {
            // Extreme-only (or empty) summaries carry no moments or
            // buckets; two compares replace the bucket loop. This is the
            // common case for the per-epoch shard folds on off-period
            // epochs, where only `record_extreme` ran.
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
            return;
        }
        self.count += other.count;
        self.sum_q += other.sum_q;
        self.sum_sq_q += other.sum_sq_q;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    /// Resets to empty without touching any allocation (there is none).
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample reached the extremes, via [`StreamSummary::
    /// record`] or [`StreamSummary::record_extreme`].
    fn has_extremes(&self) -> bool {
        self.min <= self.max
    }

    /// Smallest sample (full records and extreme-only records alike), or
    /// `0.0` when none was ever seen.
    pub fn min(&self) -> f64 {
        if self.has_extremes() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest sample (full records and extreme-only records alike), or
    /// `0.0` when none was ever seen.
    pub fn max(&self) -> f64 {
        if self.has_extremes() {
            self.max
        } else {
            0.0
        }
    }

    /// Largest absolute sample (full records and extreme-only records
    /// alike), or `0.0` when none was ever seen. Watermark rules read
    /// this, so an extreme recorded on an off-period epoch is visible the
    /// epoch it happens.
    pub fn max_abs(&self) -> f64 {
        if self.has_extremes() {
            self.min.abs().max(self.max.abs())
        } else {
            0.0
        }
    }

    /// Mean of the quantized samples (exact integer sum over count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_q as f64 / (self.count as f64 * Q_SCALE)
        }
    }

    /// Population variance of the quantized samples.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean_q = self.sum_q as f64 / n;
        let var_q = (self.sum_sq_q as f64 / n - mean_q * mean_q).max(0.0);
        var_q / (Q_SCALE * Q_SCALE)
    }

    /// Population standard deviation of the quantized samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The log2-magnitude bucket counts: bucket 0 holds `|x| < 2^-15`,
    /// bucket `i >= 1` holds `2^(i-16) <= |x| < 2^(i-15)`, the last bucket
    /// absorbing everything above.
    pub fn buckets(&self) -> &[u64; SUMMARY_BUCKETS] {
        &self.buckets
    }

    /// Lower magnitude edge of bucket `i` (0.0 for bucket 0).
    pub fn bucket_lower_bound(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (2.0f64).powi(i as i32 - 1 + BUCKET_MIN_EXP)
        }
    }

    /// Approximate magnitude quantile from the log2 buckets: the lower
    /// edge of the bucket where the cumulative count crosses `q`. Coarse
    /// (factor-of-two resolution) but heap-free and merge-exact.
    pub fn magnitude_quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_lower_bound(i);
            }
        }
        Self::bucket_lower_bound(SUMMARY_BUCKETS - 1)
    }

    /// The raw exact state `(count, sum_q, sum_sq_q, min, max, buckets)` —
    /// the text-exposition codec's payload.
    pub fn raw_parts(&self) -> (u64, i128, i128, f64, f64, &[u64; SUMMARY_BUCKETS]) {
        (
            self.count,
            self.sum_q,
            self.sum_sq_q,
            self.min,
            self.max,
            &self.buckets,
        )
    }

    /// Rebuilds a summary from [`StreamSummary::raw_parts`] output.
    pub fn from_raw_parts(
        count: u64,
        sum_q: i128,
        sum_sq_q: i128,
        min: f64,
        max: f64,
        buckets: [u64; SUMMARY_BUCKETS],
    ) -> Self {
        Self {
            count,
            sum_q,
            sum_sq_q,
            min,
            max,
            buckets,
        }
    }
}

/// Per-shard learning-health accumulator for one epoch of the RL pass:
/// TD-error, greedy-Q-span and visit-dispersion summaries plus decision /
/// exploration tallies and quantized-storage health. Fixed-size and
/// `Copy`, so shard-local accumulation and the end-of-epoch merge never
/// touch the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LearnDiag {
    /// TD error (`target − old Q`) of every applied update.
    pub td_error: StreamSummary,
    /// Q-row span (`max − min` over the decided state's row) per decision.
    pub q_span: StreamSummary,
    /// Visit-count dispersion (`max − min` visits over the decided state's
    /// row) per decision.
    pub visit_span: StreamSummary,
    /// Decisions taken (live cores only).
    pub decisions: u64,
    /// Exploration (non-greedy) decisions taken.
    pub explorations: u64,
    /// Σ over quantized rows of log2(scale / default scale) — how many
    /// requantize doublings the storage has absorbed.
    pub quant_doublings: u64,
    /// Quantized lanes currently pinned at ±`i16` full scale.
    pub quant_saturated: u64,
    /// Total real (non-pad) quantized lanes scanned.
    pub quant_lanes: u64,
}

impl LearnDiag {
    /// An empty accumulator.
    pub const fn new() -> Self {
        Self {
            td_error: StreamSummary::new(),
            q_span: StreamSummary::new(),
            visit_span: StreamSummary::new(),
            decisions: 0,
            explorations: 0,
            quant_doublings: 0,
            quant_saturated: 0,
            quant_lanes: 0,
        }
    }

    /// Folds `other` in (exact — see [`StreamSummary::merge`]).
    pub fn merge(&mut self, other: &LearnDiag) {
        self.td_error.merge(&other.td_error);
        self.q_span.merge(&other.q_span);
        self.visit_span.merge(&other.visit_span);
        self.decisions += other.decisions;
        self.explorations += other.explorations;
        self.quant_doublings += other.quant_doublings;
        self.quant_saturated += other.quant_saturated;
        self.quant_lanes += other.quant_lanes;
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Explorations over decisions (0.0 before any decision).
    pub fn exploration_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.explorations as f64 / self.decisions as f64
        }
    }

    /// Fraction of quantized lanes at ±full scale (0.0 without quantized
    /// storage).
    pub fn saturation_frac(&self) -> f64 {
        if self.quant_lanes == 0 {
            0.0
        } else {
            self.quant_saturated as f64 / self.quant_lanes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_moments_and_extrema() {
        let mut s = StreamSummary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.mean() - 2.5).abs() < 1e-5);
        assert!((s.variance() - 1.25).abs() < 1e-4);
        assert_eq!(s.max_abs(), 4.0);
        // Non-finite samples are dropped.
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 4);
        // Empty summaries render as zeros.
        let e = StreamSummary::new();
        assert_eq!((e.min(), e.max(), e.mean(), e.std_dev()), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_is_exact_at_any_split() {
        // The shard-invariance property: any partition of the sample
        // stream merges to bit-identical state.
        let samples: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 10007) as f64 - 5000.0) / 311.0)
            .collect();
        let mut serial = StreamSummary::new();
        for &x in &samples {
            serial.record(x);
        }
        for parts in [2usize, 3, 4, 8] {
            let mut shards = vec![StreamSummary::new(); parts];
            for (i, &x) in samples.iter().enumerate() {
                shards[i % parts].record(x);
            }
            // Merge in reverse order too: commutativity.
            let mut merged = StreamSummary::new();
            for s in shards.iter().rev() {
                merged.merge(s);
            }
            assert_eq!(merged, serial, "split {parts} diverged");
        }
    }

    #[test]
    fn buckets_follow_log2_magnitude() {
        let mut s = StreamSummary::new();
        s.record(0.0); // bucket 0
        s.record(1e-9); // far below the floor: bucket 0
        s.record(1.0); // exp 0 -> bucket 16
        s.record(-1.5); // exp 0 -> bucket 16
        s.record(3.0); // exp 1 -> bucket 17
        s.record(1e12); // clamps into the top bucket
        let b = s.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[16], 2);
        assert_eq!(b[17], 1);
        assert_eq!(b[SUMMARY_BUCKETS - 1], 1);
        assert_eq!(b.iter().sum::<u64>(), s.count());
        assert_eq!(StreamSummary::bucket_lower_bound(0), 0.0);
        assert_eq!(StreamSummary::bucket_lower_bound(16), 1.0);
        // Median magnitude of {0, ~0, 1, 1.5, 3, 1e12} sits in bucket 16.
        assert_eq!(s.magnitude_quantile(0.5), 1.0);
    }

    #[test]
    fn record_extreme_tracks_peaks_without_moments() {
        let mut s = StreamSummary::new();
        s.record_extreme(5.0);
        s.record_extreme(-7.0);
        s.record_extreme(f64::NAN);
        // Extremes render immediately — watermark rules must see a peak
        // the epoch it happens — but leave count/moments/buckets alone.
        assert_eq!(s.count(), 0);
        assert_eq!((s.min(), s.max(), s.max_abs()), (-7.0, 5.0, 7.0));
        assert_eq!((s.mean(), s.std_dev()), (0.0, 0.0));
        // They survive a merge into a counted summary, and the
        // empty-side merge matches the full merge path bit for bit.
        let mut dst = StreamSummary::new();
        dst.record(1.0);
        dst.merge(&s);
        assert_eq!(dst.count(), 1);
        assert_eq!(dst.min(), -7.0);
        assert_eq!(dst.max(), 5.0);
        assert_eq!(dst.max_abs(), 7.0);
        assert_eq!(dst.mean(), 1.0);
        // A later full record folds in normally.
        dst.record(2.0);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.max(), 5.0);
    }

    #[test]
    fn quantization_clamps_extremes() {
        let mut s = StreamSummary::new();
        s.record(1e300);
        s.record(-1e300);
        assert_eq!(s.count(), 2);
        // Clamped symmetric quanta cancel exactly.
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 1e300);
        assert_eq!(s.min(), -1e300);
    }

    #[test]
    fn raw_parts_round_trip() {
        let mut s = StreamSummary::new();
        for x in [0.25, -3.5, 11.0] {
            s.record(x);
        }
        let (c, sq, ssq, mn, mx, b) = s.raw_parts();
        let back = StreamSummary::from_raw_parts(c, sq, ssq, mn, mx, *b);
        assert_eq!(back, s);
    }

    #[test]
    fn learn_diag_merges_and_derives_rates() {
        let mut a = LearnDiag::new();
        a.decisions = 10;
        a.explorations = 1;
        a.td_error.record(0.5);
        let mut b = LearnDiag::new();
        b.decisions = 30;
        b.explorations = 3;
        b.quant_lanes = 100;
        b.quant_saturated = 5;
        a.merge(&b);
        assert_eq!(a.decisions, 40);
        assert_eq!(a.exploration_rate(), 0.1);
        assert_eq!(a.saturation_frac(), 0.05);
        assert_eq!(a.td_error.count(), 1);
        a.reset();
        assert_eq!(a, LearnDiag::new());
    }
}
