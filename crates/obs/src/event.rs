//! The structured-event vocabulary of the control loop.
//!
//! Every notable state change in one control epoch — a watchdog flag flip,
//! a budget reallocation, an exploration choice, a fault window opening, a
//! VF-level switch — is one compact [`Event`] wrapped in an
//! [`EventRecord`] carrying its epoch, core and per-ring sequence number.
//! Events are `Copy` and carry plain scalars only, so recording one is a
//! couple of stores into a preallocated ring (see [`crate::TraceRing`]).
//!
//! Within an epoch, events are ordered by their position in the control
//! pipeline ([`Event::rank`]): the controller's serial decision events
//! first, then the per-core RL choices, then the simulator's fault edges,
//! VF switches and the closing epoch boundary. This rank — not the shard
//! that recorded the event — is the merge key, which is what makes merged
//! traces bit-identical across shard counts (see [`crate::merge_records`]).

use serde::{Deserialize, Serialize};

/// Sentinel core index for chip-wide events (epoch boundaries, chip-sensor
/// faults, budget reallocations, chip-dark transitions).
pub const CHIP: u32 = u32::MAX;

/// Sentinel chip index for rack-wide events in a merged fleet trace
/// (arbiter decisions, fleet-market rounds, anomaly trips). The epoch-major
/// fleet merge key sorts rack events after every real chip's events of the
/// same epoch, mirroring how the rack closes each fleet epoch.
pub const RACK: u32 = u32::MAX;

/// Which watermark rule tripped a flight-recorder [`Event::Anomaly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Fleet power stayed over its rack budget for too many epochs.
    OvershootStreak,
    /// The per-epoch max |TD error| crossed the blowup watermark.
    TdErrorBlowup,
    /// Too many watchdog flag flips inside a sliding epoch window.
    WatchdogFlipBurst,
    /// The budget channel lost too large a fraction of messages.
    BudgetLossSpike,
}

impl AnomalyKind {
    /// Short kebab-case name for dump headers and tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::OvershootStreak => "overshoot-streak",
            Self::TdErrorBlowup => "td-error-blowup",
            Self::WatchdogFlipBurst => "watchdog-flip-burst",
            Self::BudgetLossSpike => "budget-loss-spike",
        }
    }
}

/// Which watchdog flag a [`Event::Watchdog`] transition refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WatchdogFlag {
    /// The core's sensor reading is suspect and being held.
    Stale,
    /// The core's sensor has been written off as dead.
    Dead,
    /// Chip-level telemetry is dark (chip-wide event).
    Dark,
}

impl WatchdogFlag {
    /// Short lower-case name for tables and CSV.
    pub fn name(self) -> &'static str {
        match self {
            Self::Stale => "stale",
            Self::Dead => "dead",
            Self::Dark => "dark",
        }
    }
}

/// Which family of fault machinery a fault edge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Per-core power-sensor fault (stuck / spike / drift).
    Sensor,
    /// DVFS actuator fault (dropped / delayed / clamped commands).
    Actuator,
    /// Budget-channel fault (lost / delayed / corrupt messages).
    Budget,
    /// Core hot-unplug.
    Unplug,
    /// Thermal-throttle cap on the core's level.
    Throttle,
    /// Chip-level sensor fault (chip-wide event).
    ChipSensor,
}

impl FaultClass {
    /// Every class, in bitmask-bit order (see `FaultState::class_mask`).
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Sensor,
        FaultClass::Actuator,
        FaultClass::Budget,
        FaultClass::Unplug,
        FaultClass::Throttle,
        FaultClass::ChipSensor,
    ];

    /// Short lower-case name for tables and CSV.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sensor => "sensor",
            Self::Actuator => "actuator",
            Self::Budget => "budget",
            Self::Unplug => "unplug",
            Self::Throttle => "throttle",
            Self::ChipSensor => "chip-sensor",
        }
    }
}

/// One structured event in the control loop.
///
/// Payloads are plain scalars (`f64`/`u64`/`u8`) so records stay `Copy`
/// and ring slots have a fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A watchdog flag flipped for this core (or the chip, for
    /// [`WatchdogFlag::Dark`]).
    Watchdog {
        /// Which flag flipped.
        flag: WatchdogFlag,
        /// `true` when the flag was raised, `false` when it cleared.
        entered: bool,
    },
    /// Chip power crossed above the budget this epoch.
    OvershootOnset {
        /// Watts above the budget at onset.
        over_w: f64,
    },
    /// Chip power fell back under the budget.
    OvershootEnd {
        /// How many consecutive epochs the overshoot lasted.
        epochs: u64,
    },
    /// The coarse-grain allocator reassigned per-core budgets.
    BudgetRealloc {
        /// Total moved watts: `Σ|new_i − old_i|` over all cores.
        magnitude_w: f64,
    },
    /// Budget freed by dead cores was redistributed to survivors.
    BudgetRedistribution {
        /// Watts redistributed this epoch.
        freed_w: f64,
    },
    /// The slack market collected donations this round (chip-wide at
    /// chip scope; per-fleet at rack scope). Recorded only on rounds
    /// where slack was actually offered.
    MarketDonation {
        /// Watts donated into the reclaim pool (also the pool's peak
        /// level this round — the pool drains back to zero).
        donated_w: f64,
    },
    /// The slack market granted reclaimed watts to over-budget
    /// applicants this round.
    MarketGrant {
        /// Watts granted out of the reclaim pool.
        granted_w: f64,
    },
    /// The market's demand predictor missed: sum of per-participant
    /// |measured − predicted| for this round. Recorded only when a
    /// previous prediction existed and the error is non-zero.
    MarketPrediction {
        /// Aggregate absolute prediction error, watts.
        abs_err_w: f64,
    },
    /// A per-core RL agent explored (took a non-greedy action).
    RlChoice {
        /// The VF level index the agent chose.
        action: u8,
        /// Always `true` today (only explorations are recorded); kept so
        /// exploitation records can be added without a format change.
        explored: bool,
    },
    /// A fault window opened on this core (or the chip sensor).
    FaultInjected {
        /// Which fault family.
        class: FaultClass,
    },
    /// A fault window closed on this core (or the chip sensor).
    FaultCleared {
        /// Which fault family.
        class: FaultClass,
    },
    /// The core's VF level changed this epoch (recorded only on change).
    VfAction {
        /// The new level index.
        level: u8,
    },
    /// End-of-epoch boundary marker (chip-wide, one per epoch).
    Epoch {
        /// True total chip power over the epoch, watts.
        power_w: f64,
    },
    /// A flight-recorder watermark rule tripped (rack-wide at fleet
    /// scope). Recorded after the epoch boundary so a dump's trace window
    /// ends with the trip that produced it.
    Anomaly {
        /// Which watermark rule tripped.
        kind: AnomalyKind,
        /// The observed value that crossed the watermark (streak length,
        /// max |TD error|, flip count, or loss rate — per `kind`).
        value: f64,
    },
}

impl Event {
    /// Position of this event's recording site in the control pipeline.
    ///
    /// The merge key within an epoch: controller decision events
    /// (watchdog, overshoot, budget, RL) precede simulator events (fault
    /// edges, VF switches, the epoch boundary), mirroring the
    /// decide-then-step order of the closed loop.
    pub fn rank(self) -> u8 {
        match self {
            Self::Watchdog { .. } => 0,
            Self::OvershootOnset { .. } | Self::OvershootEnd { .. } => 1,
            Self::BudgetRealloc { .. } => 2,
            Self::BudgetRedistribution { .. } => 3,
            Self::MarketDonation { .. } => 4,
            Self::MarketGrant { .. } => 5,
            Self::MarketPrediction { .. } => 6,
            Self::RlChoice { .. } => 7,
            Self::FaultInjected { .. } => 8,
            Self::FaultCleared { .. } => 9,
            Self::VfAction { .. } => 10,
            Self::Epoch { .. } => 11,
            Self::Anomaly { .. } => 12,
        }
    }

    /// The event's family name, used by `trace_inspect --kind`.
    pub fn kind_name(self) -> &'static str {
        match self {
            Self::Watchdog { .. } => "watchdog",
            Self::OvershootOnset { .. } | Self::OvershootEnd { .. } => "overshoot",
            Self::BudgetRealloc { .. } => "realloc",
            Self::BudgetRedistribution { .. } => "redistribution",
            Self::MarketDonation { .. }
            | Self::MarketGrant { .. }
            | Self::MarketPrediction { .. } => "market",
            Self::RlChoice { .. } => "rl",
            Self::FaultInjected { .. } | Self::FaultCleared { .. } => "fault",
            Self::VfAction { .. } => "vf",
            Self::Epoch { .. } => "epoch",
            Self::Anomaly { .. } => "anomaly",
        }
    }

    /// A compact human-readable payload description for tables.
    pub fn detail(self) -> String {
        match self {
            Self::Watchdog { flag, entered } => {
                format!("{} {}", flag.name(), if entered { "enter" } else { "clear" })
            }
            Self::OvershootOnset { over_w } => format!("onset +{over_w:.3} W"),
            Self::OvershootEnd { epochs } => format!("end after {epochs} ep"),
            Self::BudgetRealloc { magnitude_w } => format!("moved {magnitude_w:.3} W"),
            Self::BudgetRedistribution { freed_w } => format!("freed {freed_w:.3} W"),
            Self::MarketDonation { donated_w } => format!("donated {donated_w:.3} W"),
            Self::MarketGrant { granted_w } => format!("granted {granted_w:.3} W"),
            Self::MarketPrediction { abs_err_w } => format!("pred err {abs_err_w:.3} W"),
            Self::RlChoice { action, explored } => {
                format!("{} a={action}", if explored { "explore" } else { "exploit" })
            }
            Self::FaultInjected { class } => format!("{} inject", class.name()),
            Self::FaultCleared { class } => format!("{} clear", class.name()),
            Self::VfAction { level } => format!("level {level}"),
            Self::Epoch { power_w } => format!("{power_w:.3} W"),
            Self::Anomaly { kind, value } => format!("{} at {value:.3}", kind.name()),
        }
    }
}

/// One recorded event: the epoch and core it belongs to, its per-ring
/// sequence number, and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Control epoch the event occurred in.
    pub epoch: u64,
    /// Core index, or [`CHIP`] for chip-wide events.
    pub core: u32,
    /// Sequence number: per-ring and monotonic while recording; rewritten
    /// to the global merged position by [`crate::merge_records`].
    pub seq: u32,
    /// The event payload.
    pub event: Event,
}

impl EventRecord {
    /// The deterministic merge key: `(epoch, pipeline rank, core)`.
    ///
    /// Deliberately *not* `(epoch, shard, seq)`: shard identity and
    /// per-ring sequence numbers depend on the shard count, while the
    /// pipeline rank and core index do not. Every recording site emits at
    /// most one event per `(epoch, rank-discriminating payload, core)`, so
    /// this key (with a stable sort for the rare same-site ties) yields
    /// the same merged order at every shard count.
    pub fn merge_key(&self) -> (u64, u8, u32) {
        (self.epoch, self.event.rank(), self.core)
    }
}

/// Stably sorts `records` into the canonical merged order and renumbers
/// `seq` to the merged position, making the result independent of how many
/// rings (shards) the records came from.
///
/// Call with the concatenation of every ring's records (each ring appended
/// oldest → newest, serial rings before shard rings). The sort key is
/// [`EventRecord::merge_key`]; ties keep their per-ring recording order,
/// which serial sites make shard-count-invariant by construction.
pub fn merge_records(records: &mut [EventRecord]) {
    records.sort_by_key(EventRecord::merge_key);
    for (i, r) in records.iter_mut().enumerate() {
        r.seq = i as u32;
    }
}

/// One recorded event in a multi-chip fleet run: a per-chip
/// [`EventRecord`] tagged with the fleet index of the chip that produced
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEventRecord {
    /// Fleet index of the chip the event belongs to.
    pub chip: u32,
    /// The chip-local record (its `core` stays chip-local).
    pub record: EventRecord,
}

impl FleetEventRecord {
    /// The deterministic fleet merge key: `(epoch, chip, rank, core)`.
    ///
    /// Epoch-major so the merged trace interleaves chips epoch by epoch,
    /// then chip-major within the epoch: which shard *stepped* a chip
    /// depends on the fleet shard count, but the chip's fleet index does
    /// not, so this key (with [`EventRecord::merge_key`]'s rank/core tail)
    /// yields the same merged order at every shard count.
    pub fn merge_key(&self) -> (u64, u32, u8, u32) {
        (
            self.record.epoch,
            self.chip,
            self.record.event.rank(),
            self.record.core,
        )
    }
}

/// Stably sorts fleet records into the canonical merged order and
/// renumbers `seq` to the merged position — [`merge_records`] one level
/// up, keyed by [`FleetEventRecord::merge_key`], making the result
/// independent of how many shards stepped the fleet.
pub fn merge_fleet_records(records: &mut [FleetEventRecord]) {
    records.sort_by_key(FleetEventRecord::merge_key);
    for (i, r) in records.iter_mut().enumerate() {
        r.record.seq = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_pipeline_order() {
        let wd = Event::Watchdog {
            flag: WatchdogFlag::Stale,
            entered: true,
        };
        let rl = Event::RlChoice {
            action: 3,
            explored: true,
        };
        let vf = Event::VfAction { level: 2 };
        let ep = Event::Epoch { power_w: 10.0 };
        assert!(wd.rank() < rl.rank());
        assert!(rl.rank() < Event::FaultInjected { class: FaultClass::Sensor }.rank());
        assert!(vf.rank() < ep.rank());
        // Market events sit between the reactive budget events and the
        // per-core RL choices — that is where the pass runs in the loop.
        let donation = Event::MarketDonation { donated_w: 1.0 };
        let grant = Event::MarketGrant { granted_w: 0.5 };
        let pred = Event::MarketPrediction { abs_err_w: 0.1 };
        assert!(Event::BudgetRedistribution { freed_w: 0.0 }.rank() < donation.rank());
        assert!(donation.rank() < grant.rank());
        assert!(grant.rank() < pred.rank());
        assert!(pred.rank() < rl.rank());
        assert_eq!(donation.kind_name(), "market");
        assert_eq!(grant.detail(), "granted 0.500 W");
    }

    #[test]
    fn merge_is_shard_layout_invariant() {
        // Simulate one epoch of RL events recorded serially vs in two
        // shard rings: the merged orders must match bit for bit.
        let rl = |core: u32, seq: u32| EventRecord {
            epoch: 7,
            core,
            seq,
            event: Event::RlChoice {
                action: 1,
                explored: true,
            },
        };
        let mut serial: Vec<EventRecord> = (0..6).map(|c| rl(c, c)).collect();
        // Two shards: cores 0..3 in ring A (seq restarts), 3..6 in ring B.
        let mut sharded: Vec<EventRecord> = (0..3)
            .map(|c| rl(c, c))
            .chain((3..6).map(|c| rl(c, c - 3)))
            .collect();
        merge_records(&mut serial);
        merge_records(&mut sharded);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn merge_renumbers_seq_globally() {
        let mut records = vec![
            EventRecord {
                epoch: 2,
                core: 0,
                seq: 9,
                event: Event::Epoch { power_w: 1.0 },
            },
            EventRecord {
                epoch: 1,
                core: 0,
                seq: 4,
                event: Event::Epoch { power_w: 2.0 },
            },
        ];
        merge_records(&mut records);
        assert_eq!(records[0].epoch, 1);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
    }

    #[test]
    fn chip_events_sort_after_core_events_of_same_rank() {
        let mk = |core: u32| EventRecord {
            epoch: 0,
            core,
            seq: 0,
            event: Event::Watchdog {
                flag: WatchdogFlag::Stale,
                entered: true,
            },
        };
        let mut v = vec![mk(CHIP), mk(3)];
        merge_records(&mut v);
        assert_eq!(v[0].core, 3);
        assert_eq!(v[1].core, CHIP);
    }

    #[test]
    fn fleet_merge_is_chip_layout_invariant() {
        // Two chips' rings concatenated in either order must merge to the
        // same canonical trace: chip-major within the epoch, epoch-major
        // overall.
        let rec = |chip: u32, epoch: u64, core: u32| FleetEventRecord {
            chip,
            record: EventRecord {
                epoch,
                core,
                seq: 0,
                event: Event::VfAction { level: 1 },
            },
        };
        let mut ab = vec![rec(0, 1, 2), rec(0, 2, 0), rec(1, 1, 0), rec(1, 1, 1)];
        let mut ba = vec![rec(1, 1, 1), rec(1, 1, 0), rec(0, 2, 0), rec(0, 1, 2)];
        merge_fleet_records(&mut ab);
        merge_fleet_records(&mut ba);
        assert_eq!(ab, ba);
        // Epoch-major, then chip-major, then the chip-local key.
        let keys: Vec<(u64, u32, u32)> = ab
            .iter()
            .map(|r| (r.record.epoch, r.chip, r.record.core))
            .collect();
        assert_eq!(keys, vec![(1, 0, 2), (1, 1, 0), (1, 1, 1), (2, 0, 0)]);
        // seq is renumbered to the merged position.
        assert_eq!(ab.iter().map(|r| r.record.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn names_and_details_are_stable() {
        let e = Event::FaultInjected {
            class: FaultClass::Unplug,
        };
        assert_eq!(e.kind_name(), "fault");
        assert_eq!(e.detail(), "unplug inject");
        let e = Event::VfAction { level: 5 };
        assert_eq!(e.kind_name(), "vf");
        assert_eq!(e.detail(), "level 5");
        let e = Event::Anomaly {
            kind: AnomalyKind::TdErrorBlowup,
            value: 64.5,
        };
        assert_eq!(e.kind_name(), "anomaly");
        assert_eq!(e.detail(), "td-error-blowup at 64.500");
        assert!(Event::Epoch { power_w: 0.0 }.rank() < e.rank());
    }
}
