//! A registry of named counters, gauges and histograms.
//!
//! All metrics are registered once at construction (allocating their
//! storage and names); after that every update — [`MetricsRegistry::inc`],
//! [`MetricsRegistry::add`], [`MetricsRegistry::set`],
//! [`MetricsRegistry::observe`] — is an indexed store with no heap
//! traffic, and [`MetricsRegistry::snapshot_into`] copies the scalar
//! metrics into a reusable [`MetricsSnapshot`] without allocating once
//! the snapshot buffers are warm.

use odrl_metrics::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Named counters/gauges/histograms with fixed-at-construction layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotonically increasing counter (construction time).
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (construction time).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram over `[lo, hi)` with `bins` equal bins
    /// (construction time).
    ///
    /// # Errors
    ///
    /// Propagates [`Histogram::new`]'s layout validation.
    pub fn histogram(
        &mut self,
        name: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramId, String> {
        let h = Histogram::new(lo, hi, bins)?;
        self.histograms.push((name.to_string(), h));
        Ok(HistogramId(self.histograms.len() - 1))
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind a handle.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Iterates `(name, value)` over all counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates `(name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates `(name, histogram)` over all histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Looks a counter up by name (diagnostics/tests; O(metrics)).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Copies every counter and gauge into `snap`. The first call sizes
    /// the snapshot's buffers; every later call with the same registry
    /// layout is allocation-free.
    pub fn snapshot_into(&self, epoch: u64, snap: &mut MetricsSnapshot) {
        snap.epoch = epoch;
        snap.counters.resize(self.counters.len(), 0);
        snap.gauges.resize(self.gauges.len(), 0.0);
        for (dst, (_, v)) in snap.counters.iter_mut().zip(&self.counters) {
            *dst = *v;
        }
        for (dst, (_, v)) in snap.gauges.iter_mut().zip(&self.gauges) {
            *dst = *v;
        }
    }

    /// Renders every metric as `name,value` CSV lines; histograms are
    /// summarized as `count`, `p50`, `p99`. Export-time only (allocates).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (n, v) in self.counters() {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, v) in self.gauges() {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, h) in self.histograms() {
            out.push_str(&format!("{n}_count,{}\n", h.count()));
            for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
                if h.count() > 0 {
                    out.push_str(&format!("{n}_{label},{}\n", h.quantile(q)));
                }
            }
        }
        out
    }
}

/// A point-in-time copy of a registry's scalar metrics, reusable across
/// epochs without reallocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// Counter values, in registration order.
    pub counters: Vec<u64>,
    /// Gauge values, in registration order.
    pub gauges: Vec<f64>,
}

impl MetricsSnapshot {
    /// An empty snapshot (sized on first [`MetricsRegistry::snapshot_into`]).
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_in_place() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("flips");
        let g = reg.gauge("scale");
        reg.inc(c);
        reg.add(c, 4);
        reg.set(g, 1.25);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), 1.25);
        assert_eq!(reg.counter_by_name("flips"), Some(5));
        assert_eq!(reg.counter_by_name("missing"), None);
    }

    #[test]
    fn histograms_record_and_summarize() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("latency", 0.0, 100.0, 10).unwrap();
        for v in [5.0, 15.0, 15.0, 95.0] {
            reg.observe(h, v);
        }
        assert_eq!(reg.histogram_ref(h).count(), 4);
        let csv = reg.to_csv();
        assert!(csv.contains("latency_count,4"));
        assert!(reg.histogram("bad", 10.0, 0.0, 4).is_err());
    }

    #[test]
    fn snapshot_reuses_buffers() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a");
        let g = reg.gauge("b");
        let mut snap = MetricsSnapshot::new();
        reg.snapshot_into(0, &mut snap);
        let cap_c = snap.counters.capacity();
        let cap_g = snap.gauges.capacity();
        reg.inc(c);
        reg.set(g, 2.0);
        for epoch in 1..50 {
            reg.snapshot_into(epoch, &mut snap);
        }
        assert_eq!(snap.epoch, 49);
        assert_eq!(snap.counters, vec![1]);
        assert_eq!(snap.gauges, vec![2.0]);
        assert_eq!(snap.counters.capacity(), cap_c);
        assert_eq!(snap.gauges.capacity(), cap_g);
    }
}
