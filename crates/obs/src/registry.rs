//! A registry of named counters, gauges, histograms and summaries.
//!
//! All metrics are registered once at construction (allocating their
//! storage and names); after that every update — [`MetricsRegistry::inc`],
//! [`MetricsRegistry::add`], [`MetricsRegistry::set`],
//! [`MetricsRegistry::observe`], [`MetricsRegistry::merge_summary`] — is
//! an indexed store with no heap traffic, and
//! [`MetricsRegistry::snapshot_into`] copies the scalar metrics into a
//! reusable [`MetricsSnapshot`] without allocating once the snapshot
//! buffers are warm.
//!
//! Snapshots deliberately carry **counters, gauges and summaries only**:
//! the histograms hold wall-clock latencies, which would leak
//! nondeterminism into anything derived from a snapshot (fleet
//! aggregation, flight-recorder dumps).

use crate::summary::{StreamSummary, SUMMARY_BUCKETS};
use odrl_metrics::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered streaming summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryId(usize);

/// Named counters/gauges/histograms/summaries with fixed-at-construction
/// layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    summaries: Vec<(String, StreamSummary)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotonically increasing counter (construction time).
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (construction time).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram over `[lo, hi)` with `bins` equal bins
    /// (construction time).
    ///
    /// # Errors
    ///
    /// Propagates [`Histogram::new`]'s layout validation.
    pub fn histogram(
        &mut self,
        name: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramId, String> {
        let h = Histogram::new(lo, hi, bins)?;
        self.histograms.push((name.to_string(), h));
        Ok(HistogramId(self.histograms.len() - 1))
    }

    /// Registers a streaming summary (construction time).
    pub fn summary(&mut self, name: &str) -> SummaryId {
        self.summaries.push((name.to_string(), StreamSummary::new()));
        SummaryId(self.summaries.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Records a sample into a streaming summary.
    #[inline]
    pub fn record_summary(&mut self, id: SummaryId, value: f64) {
        self.summaries[id.0].1.record(value);
    }

    /// Folds a pre-accumulated summary into a registered one (exact merge
    /// — see [`StreamSummary::merge`]).
    #[inline]
    pub fn merge_summary(&mut self, id: SummaryId, s: &StreamSummary) {
        self.summaries[id.0].1.merge(s);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind a handle.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// The streaming summary behind a handle.
    pub fn summary_ref(&self, id: SummaryId) -> &StreamSummary {
        &self.summaries[id.0].1
    }

    /// Iterates `(name, value)` over all counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates `(name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates `(name, histogram)` over all histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Iterates `(name, summary)` over all streaming summaries.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &StreamSummary)> {
        self.summaries.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Looks a counter up by name (diagnostics/tests; O(metrics)).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Copies every counter, gauge and summary into `snap`. The first call
    /// sizes the snapshot's buffers and copies the metric names; every
    /// later call with the same registry layout is allocation-free.
    pub fn snapshot_into(&self, epoch: u64, snap: &mut MetricsSnapshot) {
        snap.epoch = epoch;
        snap.counters.resize(self.counters.len(), 0);
        snap.gauges.resize(self.gauges.len(), 0.0);
        snap.summaries.resize(self.summaries.len(), StreamSummary::new());
        if snap.counter_names.len() != self.counters.len()
            || snap.gauge_names.len() != self.gauges.len()
            || snap.summary_names.len() != self.summaries.len()
        {
            snap.counter_names = self.counters.iter().map(|(n, _)| n.clone()).collect();
            snap.gauge_names = self.gauges.iter().map(|(n, _)| n.clone()).collect();
            snap.summary_names = self.summaries.iter().map(|(n, _)| n.clone()).collect();
        }
        for (dst, (_, v)) in snap.counters.iter_mut().zip(&self.counters) {
            *dst = *v;
        }
        for (dst, (_, v)) in snap.gauges.iter_mut().zip(&self.gauges) {
            *dst = *v;
        }
        for (dst, (_, s)) in snap.summaries.iter_mut().zip(&self.summaries) {
            *dst = *s;
        }
    }

    /// Renders every metric as `name,value` CSV lines; histograms are
    /// summarized as `count`, `p50`, `p99`. Export-time only (allocates).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (n, v) in self.counters() {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, v) in self.gauges() {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, h) in self.histograms() {
            out.push_str(&format!("{n}_count,{}\n", h.count()));
            for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
                if h.count() > 0 {
                    out.push_str(&format!("{n}_{label},{}\n", h.quantile(q)));
                }
            }
        }
        for (n, s) in self.summaries() {
            out.push_str(&format!("{n}_count,{}\n", s.count()));
            if s.count() > 0 {
                out.push_str(&format!("{n}_mean,{}\n", s.mean()));
                out.push_str(&format!("{n}_max,{}\n", s.max()));
            }
        }
        out
    }
}

/// A point-in-time copy of a registry's scalar metrics (counters, gauges,
/// summaries — never histograms, which hold wall-clock samples), reusable
/// across epochs without reallocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// Counter values, in registration order.
    pub counters: Vec<u64>,
    /// Gauge values, in registration order.
    pub gauges: Vec<f64>,
    /// Streaming summaries, in registration order.
    pub summaries: Vec<StreamSummary>,
    /// Counter names, copied once when the snapshot is first sized.
    pub counter_names: Vec<String>,
    /// Gauge names, copied once when the snapshot is first sized.
    pub gauge_names: Vec<String>,
    /// Summary names, copied once when the snapshot is first sized.
    pub summary_names: Vec<String>,
}

impl MetricsSnapshot {
    /// An empty snapshot (sized on first [`MetricsRegistry::snapshot_into`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a counter by name (diagnostics/tests; O(metrics)).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        let i = self.counter_names.iter().position(|n| n == name)?;
        self.counters.get(i).copied()
    }

    /// Value of a gauge by name (diagnostics/tests; O(metrics)).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        let i = self.gauge_names.iter().position(|n| n == name)?;
        self.gauges.get(i).copied()
    }

    /// A summary by name (diagnostics/tests; O(metrics)).
    pub fn summary_by_name(&self, name: &str) -> Option<&StreamSummary> {
        let i = self.summary_names.iter().position(|n| n == name)?;
        self.summaries.get(i)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Counters and gauges become ordinary `# TYPE`-annotated sample
    /// lines. Each summary becomes a block of untyped derived samples
    /// (`_count`, `_mean`, `_stddev`, `_min`, `_max`) preceded by one
    /// `# odrl_summary` comment carrying the exact integer state, so
    /// [`MetricsSnapshot::from_prometheus`] reconstructs the snapshot bit
    /// for bit (Prometheus itself ignores unknown comments). `f64` values
    /// print through `Display`, which round-trips exactly.
    ///
    /// Export-time only (allocates).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# odrl_snapshot epoch {}", self.epoch);
        for (name, v) in self.counter_names.iter().zip(&self.counters) {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in self.gauge_names.iter().zip(&self.gauges) {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, s) in self.summary_names.iter().zip(&self.summaries) {
            let (count, sum_q, sum_sq_q, min, max, buckets) = s.raw_parts();
            let _ = write!(
                out,
                "# odrl_summary {name} {count} {sum_q} {sum_sq_q} {min} {max}"
            );
            for b in buckets {
                let _ = write!(out, " {b}");
            }
            out.push('\n');
            let _ = writeln!(out, "{name}_count {count}");
            let _ = writeln!(out, "{name}_mean {}", s.mean());
            let _ = writeln!(out, "{name}_stddev {}", s.std_dev());
            let _ = writeln!(out, "{name}_min {}", s.min());
            let _ = writeln!(out, "{name}_max {}", s.max());
        }
        out
    }

    /// Parses [`MetricsSnapshot::to_prometheus`] output back into a
    /// snapshot — an exact inverse, including summary state. Sample lines
    /// are accepted only for the metric named by the preceding `# TYPE`
    /// header, so the untyped summary-derived samples are skipped.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_prometheus(text: &str) -> Result<Self, String> {
        fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
            tok.ok_or_else(|| format!("missing {what}"))?
                .parse()
                .map_err(|_| format!("malformed {what}"))
        }
        let mut snap = MetricsSnapshot::new();
        // (name, is_counter) of the last `# TYPE` header seen.
        let mut expect: Option<(String, bool)> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let mut tok = rest.split_whitespace();
                match tok.next() {
                    Some("odrl_snapshot") if tok.next() == Some("epoch") => {
                        snap.epoch = parse(tok.next(), "epoch")?;
                    }
                    Some("odrl_snapshot") => {}
                    Some("TYPE") => {
                        let name = parse::<String>(tok.next(), "metric name")?;
                        let kind = parse::<String>(tok.next(), "metric kind")?;
                        expect = Some((name, kind == "counter"));
                    }
                    Some("odrl_summary") => {
                        let name = parse::<String>(tok.next(), "summary name")?;
                        let count = parse(tok.next(), "summary count")?;
                        let sum_q = parse(tok.next(), "summary sum")?;
                        let sum_sq_q = parse(tok.next(), "summary sum_sq")?;
                        let min = parse(tok.next(), "summary min")?;
                        let max = parse(tok.next(), "summary max")?;
                        let mut buckets = [0u64; SUMMARY_BUCKETS];
                        for b in &mut buckets {
                            *b = parse(tok.next(), "summary bucket")?;
                        }
                        snap.summary_names.push(name);
                        snap.summaries.push(StreamSummary::from_raw_parts(
                            count, sum_q, sum_sq_q, min, max, buckets,
                        ));
                    }
                    _ => {}
                }
                continue;
            }
            let mut tok = line.split_whitespace();
            let (name, value) = (tok.next().unwrap_or(""), tok.next());
            if let Some((expected, is_counter)) = expect.take() {
                if name == expected {
                    if is_counter {
                        snap.counter_names.push(expected);
                        snap.counters.push(parse(value, "counter value")?);
                    } else {
                        snap.gauge_names.push(expected);
                        snap.gauges.push(parse(value, "gauge value")?);
                    }
                    continue;
                }
                // Header without its sample: drop the expectation.
            }
            // Untyped lines (summary-derived samples) are ignored.
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_in_place() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("flips");
        let g = reg.gauge("scale");
        reg.inc(c);
        reg.add(c, 4);
        reg.set(g, 1.25);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), 1.25);
        assert_eq!(reg.counter_by_name("flips"), Some(5));
        assert_eq!(reg.counter_by_name("missing"), None);
    }

    #[test]
    fn histograms_record_and_summarize() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("latency", 0.0, 100.0, 10).unwrap();
        for v in [5.0, 15.0, 15.0, 95.0] {
            reg.observe(h, v);
        }
        assert_eq!(reg.histogram_ref(h).count(), 4);
        let csv = reg.to_csv();
        assert!(csv.contains("latency_count,4"));
        assert!(reg.histogram("bad", 10.0, 0.0, 4).is_err());
    }

    #[test]
    fn snapshot_reuses_buffers() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a");
        let g = reg.gauge("b");
        let mut snap = MetricsSnapshot::new();
        reg.snapshot_into(0, &mut snap);
        let cap_c = snap.counters.capacity();
        let cap_g = snap.gauges.capacity();
        reg.inc(c);
        reg.set(g, 2.0);
        for epoch in 1..50 {
            reg.snapshot_into(epoch, &mut snap);
        }
        assert_eq!(snap.epoch, 49);
        assert_eq!(snap.counters, vec![1]);
        assert_eq!(snap.gauges, vec![2.0]);
        assert_eq!(snap.counters.capacity(), cap_c);
        assert_eq!(snap.gauges.capacity(), cap_g);
        assert_eq!(snap.counter_names, vec!["a".to_string()]);
        assert_eq!(snap.gauge_names, vec!["b".to_string()]);
        assert_eq!(snap.counter_by_name("a"), Some(1));
        assert_eq!(snap.gauge_by_name("b"), Some(2.0));
        assert_eq!(snap.counter_by_name("missing"), None);
    }

    #[test]
    fn summaries_register_record_and_snapshot() {
        let mut reg = MetricsRegistry::new();
        let s = reg.summary("td_error");
        reg.record_summary(s, 0.5);
        reg.record_summary(s, -1.5);
        let mut pre = StreamSummary::new();
        pre.record(2.0);
        reg.merge_summary(s, &pre);
        assert_eq!(reg.summary_ref(s).count(), 3);
        let mut snap = MetricsSnapshot::new();
        reg.snapshot_into(7, &mut snap);
        assert_eq!(snap.summary_names, vec!["td_error".to_string()]);
        assert_eq!(snap.summary_by_name("td_error").unwrap().count(), 3);
        let csv = reg.to_csv();
        assert!(csv.contains("td_error_count,3"));
    }

    #[test]
    fn prometheus_round_trips_exactly() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("overshoot_onsets");
        let g = reg.gauge("budget_loss_rate");
        let s = reg.summary("rl_td_error");
        reg.add(c, 17);
        reg.set(g, 0.125);
        for x in [0.25, -3.5, 11.0, 1e-7, -0.0625] {
            reg.record_summary(s, x);
        }
        let mut snap = MetricsSnapshot::new();
        reg.snapshot_into(42, &mut snap);
        let text = snap.to_prometheus();
        // Prometheus-shaped body: TYPE headers plus derived summary lines.
        assert!(text.contains("# TYPE overshoot_onsets counter"));
        assert!(text.contains("overshoot_onsets 17"));
        assert!(text.contains("# TYPE budget_loss_rate gauge"));
        assert!(text.contains("budget_loss_rate 0.125"));
        assert!(text.contains("rl_td_error_count 5"));
        assert!(text.contains("rl_td_error_mean "));
        // Exact inverse: full snapshot equality, then text fixpoint.
        let back = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_prometheus(), text);
        // An empty summary (infinite sentinels) survives the trip too.
        let mut reg2 = MetricsRegistry::new();
        reg2.summary("empty");
        let mut snap2 = MetricsSnapshot::new();
        reg2.snapshot_into(0, &mut snap2);
        let back2 = MetricsSnapshot::from_prometheus(&snap2.to_prometheus()).unwrap();
        assert_eq!(back2, snap2);
        // Malformed input is rejected, not mis-parsed.
        assert!(MetricsSnapshot::from_prometheus("# TYPE x counter\nx notanumber\n").is_err());
    }
}
