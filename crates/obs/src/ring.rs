//! Fixed-capacity event ring buffers (flight recorders).
//!
//! A [`TraceRing`] allocates its whole buffer at construction and then
//! never touches the heap again: recording into a non-full ring is a
//! `Vec::push` within reserved capacity, and a full ring overwrites its
//! oldest slot. The steady-state control loop therefore records events
//! with **zero allocations**, and a long run degrades gracefully into a
//! "last N events" flight recorder instead of growing without bound
//! (dropped-event count is kept so consumers can tell).

use crate::event::{Event, EventRecord};

/// A fixed-capacity ring of [`EventRecord`]s, oldest-overwriting.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<EventRecord>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Next per-ring sequence number.
    seq: u32,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records (min 1),
    /// allocating the full buffer up front.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            seq: 0,
            dropped: 0,
        }
    }

    /// Records one event. Allocation-free: the slot was reserved at
    /// construction, and a full ring overwrites its oldest record.
    #[inline]
    pub fn record(&mut self, epoch: u64, core: u32, event: Event) {
        let rec = EventRecord {
            epoch,
            core,
            seq: self.seq,
            event,
        };
        self.seq = self.seq.wrapping_add(1);
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records lost to overwriting (0 while the ring has never wrapped —
    /// the regime in which merged traces are comparable across shard
    /// counts).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends the held records, oldest → newest, onto `out`.
    pub fn extend_into(&self, out: &mut Vec<EventRecord>) {
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
    }

    /// Iterates the held records, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Forgets all records (capacity and allocation are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.seq = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: f64) -> Event {
        Event::Epoch { power_w: p }
    }

    #[test]
    fn records_in_order_until_full() {
        let mut r = TraceRing::with_capacity(4);
        for i in 0..3 {
            r.record(i, 0, ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let epochs: Vec<u64> = r.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
        let seqs: Vec<u32> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_overwriting_oldest() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..5 {
            r.record(i, 0, ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let epochs: Vec<u64> = r.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4]);
        let mut out = Vec::new();
        r.extend_into(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].epoch, 2);
        assert_eq!(out[2].epoch, 4);
    }

    #[test]
    fn recording_never_allocates_past_construction() {
        let mut r = TraceRing::with_capacity(8);
        let cap_before = r.buf.capacity();
        for i in 0..100 {
            r.record(i, 1, ev(0.0));
        }
        assert_eq!(r.buf.capacity(), cap_before);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut r = TraceRing::with_capacity(2);
        r.record(0, 0, ev(0.0));
        r.record(1, 0, ev(0.0));
        r.record(2, 0, ev(0.0));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 2);
        r.record(9, 0, ev(1.0));
        assert_eq!(r.iter().next().unwrap().seq, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRing::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.record(0, 0, ev(0.0));
        r.record(1, 0, ev(0.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().epoch, 1);
    }
}
