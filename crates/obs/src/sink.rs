//! Trace sinks: JSONL and CSV exporters plus an in-memory sink for tests.
//!
//! Sinks consume *merged* records (see [`crate::merge_records`]) at
//! export time — the hot loop only ever touches the preallocated rings,
//! so sinks are free to allocate and do I/O.

use crate::event::{EventRecord, FleetEventRecord};
use std::io::{self, BufRead, Write};

/// A consumer of merged trace records.
pub trait TraceSink {
    /// Emits one record.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn emit(&mut self, record: &EventRecord) -> io::Result<()>;

    /// Emits every record in order.
    ///
    /// # Errors
    ///
    /// As [`TraceSink::emit`].
    fn emit_all(&mut self, records: &[EventRecord]) -> io::Result<()> {
        for r in records {
            self.emit(r)?;
        }
        Ok(())
    }
}

/// Writes one JSON object per line (the `trace_inspect` input format).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, record: &EventRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }
}

/// Writes `epoch,core,seq,kind,detail` CSV rows (header emitted first).
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            wrote_header: false,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn emit(&mut self, record: &EventRecord) -> io::Result<()> {
        if !self.wrote_header {
            self.writer.write_all(b"epoch,core,seq,kind,detail\n")?;
            self.wrote_header = true;
        }
        let core = if record.core == crate::event::CHIP {
            "chip".to_string()
        } else {
            record.core.to_string()
        };
        writeln!(
            self.writer,
            "{},{},{},{},{}",
            record.epoch,
            core,
            record.seq,
            record.event.kind_name(),
            record.event.detail()
        )
    }
}

/// Collects records in memory (tests and programmatic consumers).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The records received, in emit order.
    pub records: Vec<EventRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, record: &EventRecord) -> io::Result<()> {
        self.records.push(*record);
        Ok(())
    }
}

/// Parses a JSONL trace (as written by [`JsonlSink`]) back into records.
/// Blank lines are skipped.
///
/// # Errors
///
/// Returns an [`io::Error`] for unreadable input or undecodable lines.
pub fn read_jsonl<R: BufRead>(reader: R) -> io::Result<Vec<EventRecord>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let rec: EventRecord = serde_json::from_str(trimmed)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push(rec);
    }
    Ok(out)
}

/// Writes merged fleet records as one JSON object per line (the
/// `trace_inspect --chip` input format and the flight-recorder trace
/// section).
///
/// # Errors
///
/// Returns the underlying I/O error, if any.
pub fn write_fleet_jsonl<W: Write>(writer: &mut W, records: &[FleetEventRecord]) -> io::Result<()> {
    for r in records {
        let line = serde_json::to_string(r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Parses a fleet JSONL trace (as written by [`write_fleet_jsonl`]) back
/// into records. Blank lines and `#` comment lines are skipped, so a
/// flight-recorder dump's trace section parses directly.
///
/// # Errors
///
/// Returns an [`io::Error`] for unreadable input or undecodable lines.
pub fn read_fleet_jsonl<R: BufRead>(reader: R) -> io::Result<Vec<FleetEventRecord>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec: FleetEventRecord = serde_json::from_str(trimmed)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FaultClass, WatchdogFlag, CHIP};

    fn sample() -> Vec<EventRecord> {
        vec![
            EventRecord {
                epoch: 1,
                core: 0,
                seq: 0,
                event: Event::Watchdog {
                    flag: WatchdogFlag::Stale,
                    entered: true,
                },
            },
            EventRecord {
                epoch: 1,
                core: 3,
                seq: 1,
                event: Event::FaultInjected {
                    class: FaultClass::Sensor,
                },
            },
            EventRecord {
                epoch: 1,
                core: CHIP,
                seq: 2,
                event: Event::Epoch { power_w: 12.5 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let records = sample();
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit_all(&records).unwrap();
        let bytes = sink.into_inner();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 3);
        let parsed = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let parsed = read_jsonl("\n\n".as_bytes()).unwrap();
        assert!(parsed.is_empty());
        assert!(read_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn csv_has_header_and_chip_label() {
        let mut sink = CsvSink::new(Vec::new());
        sink.emit_all(&sample()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "epoch,core,seq,kind,detail");
        assert!(lines[1].contains("watchdog"));
        assert!(lines[3].starts_with("1,chip,"));
    }

    #[test]
    fn fleet_jsonl_round_trips_and_skips_comments() {
        let records: Vec<FleetEventRecord> = sample()
            .into_iter()
            .enumerate()
            .map(|(i, record)| FleetEventRecord {
                chip: i as u32,
                record,
            })
            .collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"# odrl_trace window 3\n");
        write_fleet_jsonl(&mut bytes, &records).unwrap();
        let parsed = read_fleet_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed, records);
        assert!(read_fleet_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        sink.emit_all(&sample()).unwrap();
        assert_eq!(sink.records.len(), 3);
        assert_eq!(sink.records[1].core, 3);
    }
}
