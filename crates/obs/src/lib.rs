//! # odrl-obs — zero-alloc structured tracing + metrics for the control loop
//!
//! A flight-recorder-style observability layer for the OD-RL power
//! controller and manycore simulator:
//!
//! - **Events** ([`Event`], [`EventRecord`]): a compact, `Copy` vocabulary
//!   of control-loop state changes — epoch boundaries, per-core VF
//!   actions, budget reallocations and redistributions, watchdog flag
//!   transitions, fault injection/clear edges, overshoot onset/end, and
//!   RL exploration choices.
//! - **Rings** ([`TraceRing`]): fixed-capacity per-shard ring buffers
//!   allocated at construction; steady-state recording never touches the
//!   heap. [`merge_records`] merges rings into one canonical stream that
//!   is bit-identical whether the run used 1, 2, 4 or 8 shards.
//! - **Metrics** ([`MetricsRegistry`]): named counters, gauges and
//!   `odrl_metrics::Histogram`s registered once at construction and
//!   updated by index; [`MetricsRegistry::snapshot_into`] captures them
//!   per epoch into a reusable [`MetricsSnapshot`] without allocating.
//! - **Sinks** ([`JsonlSink`], [`CsvSink`], [`MemorySink`]): export-time
//!   consumers of merged traces, plus [`read_jsonl`] for loading a trace
//!   back (the `trace_inspect` tool's input path).
//! - **Summaries** ([`StreamSummary`], [`LearnDiag`]): exact-integer
//!   streaming moments + log2-magnitude histograms whose merge is
//!   associative and commutative, so per-shard learning-health
//!   accumulators fold to bit-identical results at any shard count.
//! - **Aggregation** ([`FleetMetrics`]): deterministic `(epoch, chip)`
//!   keyed merge of per-chip snapshots plus a rack-scope registry.
//! - **Flight recorder** ([`FlightRecorder`]): declarative watermark
//!   rules ([`WatermarkRule`]) over per-epoch [`HealthSample`]s; a trip
//!   dumps the trailing merged-trace window + metrics snapshot
//!   ([`AnomalyDump`]) and emits an [`Event::Anomaly`].
//! - **Config** ([`ObsConfig`]): the enable switch embedded in
//!   `SystemConfig`/`OdRlConfig`, defaulting to off so uninstrumented
//!   runs pay nothing; [`EventCounts`] summarizes a run's events per kind.
//!
//! The crate deliberately has no dependency on the simulator or
//! controller crates — they depend on it and push events in.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod config;
pub mod event;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod summary;

pub use aggregate::FleetMetrics;
pub use config::{EventCounts, ObsConfig, DEFAULT_DIAG_PERIOD, DEFAULT_RING_CAPACITY};
pub use event::{
    merge_fleet_records, merge_records, AnomalyKind, Event, EventRecord, FaultClass,
    FleetEventRecord, WatchdogFlag, CHIP, RACK,
};
pub use recorder::{AnomalyDump, FlightRecorder, HealthSample, RecorderConfig, WatermarkRule};
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, SummaryId};
pub use ring::TraceRing;
pub use sink::{
    read_fleet_jsonl, read_jsonl, write_fleet_jsonl, CsvSink, JsonlSink, MemorySink, TraceSink,
};
pub use summary::{LearnDiag, StreamSummary, SUMMARY_BUCKETS};
