//! Property-based tests for the metrics crate.

use odrl_metrics::{Comparison, OnlineStats, RunRecorder, Table};
use odrl_power::{Seconds, Watts};
use proptest::prelude::*;

proptest! {
    /// RunSummary invariants hold for any recorded sequence.
    #[test]
    fn run_summary_invariants(
        samples in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1e8, 1e-4f64..1e-2), 1..200),
    ) {
        let mut rec = RunRecorder::new("prop");
        for &(p, b, instr, dt) in &samples {
            rec.record(Watts::new(p), Watts::new(b), instr, Seconds::new(dt));
        }
        let s = rec.finish();
        prop_assert_eq!(s.epochs as usize, samples.len());
        prop_assert!(s.overshoot_energy <= s.total_energy);
        prop_assert!((0.0..=1.0).contains(&s.overshoot_fraction));
        prop_assert!(s.peak_overshoot <= s.peak_power);
        prop_assert!(s.mean_power <= s.peak_power + Watts::new(1e-9));
        prop_assert!(s.throughput_ips() >= 0.0);
        prop_assert!(s.instructions_per_joule() >= 0.0);
        prop_assert!(s.throughput_per_overshoot_energy() >= 0.0);
        let f = s.overshoot_energy_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Comparison of a run against itself is the identity (ratios 1, or
    /// None where both sides are overshoot-free).
    #[test]
    fn self_comparison_is_identity(
        samples in prop::collection::vec(
            (1.0f64..100.0, 1.0f64..100.0, 1.0f64..1e8, 1e-4f64..1e-2), 1..50),
    ) {
        let mk = || {
            let mut rec = RunRecorder::new("x");
            for &(p, b, instr, dt) in &samples {
                rec.record(Watts::new(p), Watts::new(b), instr, Seconds::new(dt));
            }
            rec.finish()
        };
        let a = mk();
        let c = Comparison::against(&a, &mk());
        prop_assert!((c.throughput_ratio - 1.0).abs() < 1e-9);
        prop_assert!((c.efficiency_ratio - 1.0).abs() < 1e-9);
        match c.tpoe_ratio {
            None => prop_assert_eq!(a.overshoot_energy.value(), 0.0),
            Some(r) => prop_assert!((r - 1.0).abs() < 1e-9),
        }
        match c.overshoot_reduction {
            None => prop_assert_eq!(a.overshoot_energy.value(), 0.0),
            Some(r) => prop_assert!(r.abs() < 1e-9),
        }
    }

    /// Online stats agree with a two-pass computation on arbitrary data.
    #[test]
    fn online_stats_match_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (data.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), data.iter().copied().fold(f64::MAX, f64::min));
        prop_assert_eq!(s.max(), data.iter().copied().fold(f64::MIN, f64::max));
    }

    /// Merged stats equal sequential stats for any split point.
    #[test]
    fn merge_is_associative_with_push(
        data in prop::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!(
            (a.variance() - whole.variance()).abs() < 1e-7 * whole.variance().abs().max(1.0)
        );
    }

    /// Tables render one line per row plus header and rule, with all lines
    /// equally wide, for arbitrary cell contents.
    #[test]
    fn tables_render_rectangular(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z0-9]{0,12}", 0..5), 0..10),
    ) {
        let mut t = Table::new(vec!["col_a", "col_b", "col_c"]);
        for r in rows.iter() {
            t.add_row(r.clone());
        }
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        for w in lines.windows(2) {
            prop_assert_eq!(w[0].len(), w[1].len());
        }
    }
}
