//! Fixed-bin histograms and quantile estimation.

use serde::{Deserialize, Serialize};

/// A fixed-range, fixed-bin histogram with out-of-range overflow bins.
///
/// TDP compliance is a *tail* property — the mean hides the 1-in-100
/// epochs that trip the package's throttle — so run analysis wants
/// quantiles (p95/p99/max) of the power distribution, not just moments.
///
/// ```
/// use odrl_metrics::Histogram;
/// let mut h = Histogram::new(0.0, 100.0, 50)?;
/// for i in 0..1000 {
///     h.record(i as f64 / 10.0); // 0.0 .. 99.9
/// }
/// let p50 = h.quantile(0.5);
/// assert!((45.0..56.0).contains(&p50), "{p50}");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns a message if `bins == 0` or the range is degenerate.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, String> {
        if bins == 0 {
            return Err("histogram needs at least one bin".into());
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("invalid histogram range [{lo}, {hi})"));
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        })
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let t = (x - self.lo) / (self.hi - self.lo);
            let idx = ((t * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of recorded (finite) samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fraction of samples at or above `x` (an exceedance probability,
    /// resolved at bin granularity).
    pub fn exceedance(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return (self.total - self.below) as f64 / self.total as f64;
        }
        if x >= self.hi {
            return self.above as f64 / self.total as f64;
        }
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        let tail: u64 = self.counts[idx..].iter().sum::<u64>() + self.above;
        tail as f64 / self.total as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), linearly interpolated within the
    /// containing bin. Returns `lo`/`hi` for quantiles falling into the
    /// overflow bins, and 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.below;
        if target <= seen {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                return self.lo + width * (i as f64 + into);
            }
            seen += c;
        }
        self.hi
    }

    /// Merges another histogram with the identical range/bin layout.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram layouts differ");
        assert_eq!(self.hi, other.hi, "histogram layouts differ");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_layouts() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn quantiles_of_a_uniform_stream() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..10_000 {
            h.record(i as f64 % 100.0);
        }
        for (q, expect) in [(0.25, 25.0), (0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = h.quantile(q);
            assert!((got - expect).abs() < 2.0, "q{q}: {got} vs {expect}");
        }
    }

    #[test]
    fn overflow_bins_count_and_clamp() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        let h = h.as_mut().unwrap();
        h.record(-5.0);
        h.record(5.0);
        h.record(50.0);
        h.record(f64::INFINITY); // ignored
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 0.0); // below-range clamps to lo
        assert_eq!(h.quantile(1.0), 10.0); // above-range clamps to hi
    }

    #[test]
    fn exceedance_matches_construction() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        assert!((h.exceedance(0.0) - 1.0).abs() < 1e-9);
        let e90 = h.exceedance(90.0);
        assert!((e90 - 0.1).abs() < 0.02, "{e90}");
        assert_eq!(h.exceedance(100.0), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(0.0, 10.0, 10).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..50 {
            a.record(i as f64 % 10.0);
            b.record(i as f64 % 10.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(0.0, 10.0, 10).unwrap();
        let b = Histogram::new(0.0, 20.0, 10).unwrap();
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.exceedance(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }
}
