//! Online summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Single-pass mean/variance/extrema accumulator.
///
/// ```
/// use odrl_metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0 for an empty accumulator.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 for an empty accumulator.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..60).map(|i| (i as f64).sqrt()).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..25] {
            a.push(x);
        }
        for &x in &data[25..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
