//! Evaluation metrics for power-capped many-core runs.
//!
//! Defines the headline quantities of the paper's results tables:
//!
//! * **budget overshoot** — energy spent above the power budget, its
//!   per-epoch frequency and peak (claim: OD-RL produces up to 98 % less);
//! * **throughput per over-the-budget energy (TpOE)** — instructions per
//!   joule of overshoot (claim: up to 44.3× better);
//! * **energy efficiency** — instructions per joule overall (claim: up to
//!   23 % higher);
//!
//! plus the plumbing to compute and print them: [`RunRecorder`] /
//! [`RunSummary`] per run, [`Comparison`] for paper-style ratios against a
//! baseline, [`OnlineStats`] for single-pass statistics, [`Histogram`] for
//! power-tail quantiles (p95/p99 — TDP compliance is a tail property), and
//! [`Table`] for aligned text output.
//!
//! # Example
//!
//! ```
//! use odrl_metrics::{Comparison, RunRecorder};
//! use odrl_power::{Watts, Seconds};
//!
//! let mut good = RunRecorder::new("od-rl");
//! let mut bad = RunRecorder::new("baseline");
//! for _ in 0..100 {
//!     good.record(Watts::new(9.9), Watts::new(10.0), 1.0e6, Seconds::new(1e-3));
//!     bad.record(Watts::new(11.0), Watts::new(10.0), 1.0e6, Seconds::new(1e-3));
//! }
//! let c = Comparison::against(&good.finish(), &bad.finish());
//! assert_eq!(c.tpoe_ratio, Some(f64::INFINITY)); // od-rl never overshot
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod run;
pub mod stats;
pub mod table;

pub use histogram::Histogram;
pub use run::{Comparison, RunRecorder, RunSummary};
pub use stats::OnlineStats;
pub use table::{fmt_num, fmt_percent, fmt_ratio, Table};
