//! Per-run metric recording and the summary behind every results table.

use crate::stats::OnlineStats;
use crate::table::{fmt_percent, fmt_ratio};
use odrl_power::{EnergyAccount, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Records one controller run epoch-by-epoch and produces a
/// [`RunSummary`].
///
/// ```
/// use odrl_metrics::RunRecorder;
/// use odrl_power::{Watts, Seconds};
///
/// let mut rec = RunRecorder::new("demo");
/// rec.record(Watts::new(12.0), Watts::new(10.0), 2.0e6, Seconds::new(1e-3));
/// rec.record(Watts::new(8.0), Watts::new(10.0), 1.5e6, Seconds::new(1e-3));
/// let summary = rec.finish();
/// assert_eq!(summary.name, "demo");
/// assert!(summary.overshoot_energy.value() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RunRecorder {
    name: String,
    energy: EnergyAccount,
    instructions: f64,
    power_stats: OnlineStats,
}

impl RunRecorder {
    /// Starts recording a run under a controller/scenario name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            energy: EnergyAccount::new(),
            instructions: 0.0,
            power_stats: OnlineStats::new(),
        }
    }

    /// Records one epoch: true chip power, the budget in force, the
    /// instructions retired, and the epoch length.
    pub fn record(&mut self, power: Watts, budget: Watts, instructions: f64, dt: Seconds) {
        self.energy.record(power, budget, dt);
        self.instructions += instructions.max(0.0);
        self.power_stats.push(power.value());
    }

    /// Finalizes the run into a summary.
    pub fn finish(self) -> RunSummary {
        RunSummary {
            name: self.name,
            epochs: self.energy.intervals(),
            elapsed: self.energy.elapsed(),
            total_instructions: self.instructions,
            total_energy: self.energy.total_energy(),
            overshoot_energy: self.energy.overshoot_energy(),
            overshoot_fraction: self.energy.overshoot_fraction(),
            peak_overshoot: self.energy.peak_overshoot(),
            peak_power: self.energy.peak_power(),
            mean_power: Watts::new(self.power_stats.mean()),
            power_std: Watts::new(self.power_stats.std_dev()),
        }
    }
}

/// All headline metrics of one (controller, workload, budget) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Controller/scenario label.
    pub name: String,
    /// Number of control epochs executed.
    pub epochs: u64,
    /// Simulated wall-clock time.
    pub elapsed: Seconds,
    /// Total instructions retired across all cores.
    pub total_instructions: f64,
    /// Total energy consumed.
    pub total_energy: Joules,
    /// Energy consumed above the budget — the paper's *budget overshoot*.
    pub overshoot_energy: Joules,
    /// Fraction of epochs with chip power above the budget.
    pub overshoot_fraction: f64,
    /// Largest single-epoch power excess.
    pub peak_overshoot: Watts,
    /// Highest chip power seen.
    pub peak_power: Watts,
    /// Mean chip power.
    pub mean_power: Watts,
    /// Standard deviation of chip power.
    pub power_std: Watts,
}

impl RunSummary {
    /// Aggregate throughput in instructions per second.
    pub fn throughput_ips(&self) -> f64 {
        if self.elapsed.value() <= 0.0 {
            0.0
        } else {
            self.total_instructions / self.elapsed.value()
        }
    }

    /// Energy efficiency in instructions per joule (≡ BIPS/W ·1e9).
    pub fn instructions_per_joule(&self) -> f64 {
        if self.total_energy.value() <= 0.0 {
            0.0
        } else {
            self.total_instructions / self.total_energy.value()
        }
    }

    /// **Throughput per over-the-budget energy** (TpOE), the paper's
    /// claim-2 metric: instructions retired per joule spent *above* the
    /// budget. Infinite for a run that never overshoots.
    pub fn throughput_per_overshoot_energy(&self) -> f64 {
        if self.overshoot_energy.value() <= 0.0 {
            f64::INFINITY
        } else {
            self.total_instructions / self.overshoot_energy.value()
        }
    }

    /// Energy-delay product in joule-seconds, normalized per giga-instruction
    /// (lower is better): `E · t / (instr/1e9)²` — the classic DVFS figure
    /// of merit weighing energy and performance equally.
    pub fn energy_delay_product(&self) -> f64 {
        let gi = self.total_instructions / 1e9;
        if gi <= 0.0 {
            return f64::INFINITY;
        }
        self.total_energy.value() * self.elapsed.value() / (gi * gi)
    }

    /// Energy-delay-squared product (`E · t²`, per GI³) — weighs
    /// performance more heavily, as high-performance designs do.
    pub fn energy_delay_squared(&self) -> f64 {
        let gi = self.total_instructions / 1e9;
        if gi <= 0.0 {
            return f64::INFINITY;
        }
        self.total_energy.value() * self.elapsed.value() * self.elapsed.value() / (gi * gi * gi)
    }

    /// Overshoot energy as a fraction of total energy.
    pub fn overshoot_energy_fraction(&self) -> f64 {
        if self.total_energy.value() <= 0.0 {
            0.0
        } else {
            self.overshoot_energy.value() / self.total_energy.value()
        }
    }
}

/// Ratio comparison of one summary against a baseline, as the paper's
/// tables report ("X× better TpOE", "Y % less overshoot").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The candidate's name.
    pub name: String,
    /// The baseline's name.
    pub baseline: String,
    /// Candidate throughput / baseline throughput.
    pub throughput_ratio: f64,
    /// 1 − candidate overshoot energy / baseline overshoot energy
    /// (the paper's "98 % less budget overshoot"). `None` when the baseline
    /// never overshoots.
    pub overshoot_reduction: Option<f64>,
    /// Candidate TpOE / baseline TpOE (the paper's "44.3× better"). `None`
    /// when both are infinite (neither run overshoots).
    pub tpoe_ratio: Option<f64>,
    /// Candidate efficiency / baseline efficiency (the paper's "23 %
    /// higher energy efficiency" ⇒ ratio 1.23).
    pub efficiency_ratio: f64,
}

impl Comparison {
    /// Compares `candidate` against `baseline`.
    pub fn against(candidate: &RunSummary, baseline: &RunSummary) -> Self {
        let tpoe_c = candidate.throughput_per_overshoot_energy();
        let tpoe_b = baseline.throughput_per_overshoot_energy();
        let tpoe_ratio = if tpoe_c.is_infinite() && tpoe_b.is_infinite() {
            None
        } else if tpoe_b.is_infinite() {
            Some(0.0)
        } else if tpoe_c.is_infinite() {
            Some(f64::INFINITY)
        } else {
            Some(tpoe_c / tpoe_b)
        };
        let overshoot_reduction = if baseline.overshoot_energy.value() > 0.0 {
            Some(1.0 - candidate.overshoot_energy.value() / baseline.overshoot_energy.value())
        } else {
            None
        };
        Self {
            name: candidate.name.clone(),
            baseline: baseline.name.clone(),
            throughput_ratio: safe_ratio(candidate.throughput_ips(), baseline.throughput_ips()),
            overshoot_reduction,
            tpoe_ratio,
            efficiency_ratio: safe_ratio(
                candidate.instructions_per_joule(),
                baseline.instructions_per_joule(),
            ),
        }
    }
}

impl fmt::Display for Comparison {
    /// One paper-style line; every ratio goes through [`fmt_ratio`], so a
    /// zero-overshoot baseline prints `inf`/`n/a` rather than
    /// `infx`/`nanx`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let overshoot = self
            .overshoot_reduction
            .map_or_else(|| "n/a".to_string(), fmt_percent);
        write!(
            f,
            "{} vs {}: throughput {}, overshoot reduction {}, tpoe {}, efficiency {}",
            self.name,
            self.baseline,
            fmt_ratio(Some(self.throughput_ratio)),
            overshoot,
            fmt_ratio(self.tpoe_ratio),
            fmt_ratio(Some(self.efficiency_ratio)),
        )
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(instr: f64, energy: f64, overshoot: f64, elapsed: f64) -> RunSummary {
        RunSummary {
            name: "x".into(),
            epochs: 100,
            elapsed: Seconds::new(elapsed),
            total_instructions: instr,
            total_energy: Joules::new(energy),
            overshoot_energy: Joules::new(overshoot),
            overshoot_fraction: 0.1,
            peak_overshoot: Watts::new(1.0),
            peak_power: Watts::new(10.0),
            mean_power: Watts::new(5.0),
            power_std: Watts::new(1.0),
        }
    }

    #[test]
    fn recorder_accumulates() {
        let mut rec = RunRecorder::new("test");
        rec.record(Watts::new(12.0), Watts::new(10.0), 1e6, Seconds::new(1.0));
        rec.record(Watts::new(8.0), Watts::new(10.0), 1e6, Seconds::new(1.0));
        let s = rec.finish();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.total_instructions, 2e6);
        assert_eq!(s.total_energy.value(), 20.0);
        assert_eq!(s.overshoot_energy.value(), 2.0);
        assert_eq!(s.overshoot_fraction, 0.5);
        assert_eq!(s.mean_power.value(), 10.0);
        assert!((s.throughput_ips() - 1e6).abs() < 1e-9);
    }

    #[test]
    fn tpoe_is_infinite_without_overshoot() {
        let s = summary(1e9, 10.0, 0.0, 1.0);
        assert!(s.throughput_per_overshoot_energy().is_infinite());
        let s = summary(1e9, 10.0, 2.0, 1.0);
        assert_eq!(s.throughput_per_overshoot_energy(), 5e8);
    }

    #[test]
    fn comparison_reports_paper_style_numbers() {
        // Candidate: same throughput, 50x less overshoot.
        let cand = summary(1e9, 10.0, 0.02, 1.0);
        let base = summary(1e9, 12.0, 1.0, 1.0);
        let c = Comparison::against(&cand, &base);
        assert!((c.throughput_ratio - 1.0).abs() < 1e-12);
        assert!((c.overshoot_reduction.unwrap() - 0.98).abs() < 1e-12);
        assert!((c.tpoe_ratio.unwrap() - 50.0).abs() < 1e-9);
        assert!((c.efficiency_ratio - 1.2).abs() < 1e-12);
    }

    #[test]
    fn comparison_handles_no_overshoot_baseline() {
        let cand = summary(1e9, 10.0, 0.0, 1.0);
        let base = summary(1e9, 10.0, 0.0, 1.0);
        let c = Comparison::against(&cand, &base);
        assert!(c.tpoe_ratio.is_none());
        assert!(c.overshoot_reduction.is_none());
        // Candidate overshoots, baseline doesn't: ratio 0 (worse).
        let cand2 = summary(1e9, 10.0, 1.0, 1.0);
        let c2 = Comparison::against(&cand2, &base);
        assert_eq!(c2.tpoe_ratio, Some(0.0));
    }

    #[test]
    fn display_spells_out_nonfinite_ratios() {
        // Neither run overshoots: tpoe and reduction are undefined.
        let cand = summary(1e9, 10.0, 0.0, 1.0);
        let base = summary(1e9, 10.0, 0.0, 1.0);
        let line = Comparison::against(&cand, &base).to_string();
        assert!(line.contains("tpoe n/a"), "{line}");
        assert!(line.contains("overshoot reduction n/a"), "{line}");
        assert!(!line.contains("nanx") && !line.contains("NaN"), "{line}");

        // Baseline overshoots, candidate doesn't: tpoe ratio is infinite.
        let base = summary(1e9, 10.0, 2.0, 1.0);
        let line = Comparison::against(&cand, &base).to_string();
        assert!(line.contains("tpoe inf"), "{line}");
        assert!(!line.contains("infx"), "{line}");
    }

    #[test]
    fn edp_orders_runs_correctly() {
        // Same work and time, half the energy: EDP halves.
        let a = summary(1e9, 10.0, 0.0, 1.0);
        let b = summary(1e9, 5.0, 0.0, 1.0);
        assert!((a.energy_delay_product() / b.energy_delay_product() - 2.0).abs() < 1e-9);
        // Same energy, double the throughput (half the time for the same
        // work): EDP and ED2P both improve, ED2P more.
        let slow = summary(1e9, 10.0, 0.0, 2.0);
        let fast = summary(1e9, 10.0, 0.0, 1.0);
        assert!(fast.energy_delay_product() < slow.energy_delay_product());
        assert!(
            fast.energy_delay_squared() / slow.energy_delay_squared()
                < fast.energy_delay_product() / slow.energy_delay_product()
        );
        // Degenerate run: infinite (worst possible).
        let zero = summary(0.0, 1.0, 0.0, 1.0);
        assert!(zero.energy_delay_product().is_infinite());
    }

    #[test]
    fn zero_division_guards() {
        let zero = summary(0.0, 0.0, 0.0, 0.0);
        assert_eq!(zero.throughput_ips(), 0.0);
        assert_eq!(zero.instructions_per_joule(), 0.0);
        assert_eq!(zero.overshoot_energy_fraction(), 0.0);
        let c = Comparison::against(&zero, &zero);
        assert_eq!(c.throughput_ratio, 1.0);
    }
}
