//! Plain-text results tables (aligned columns, Markdown-ish).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table for experiment output.
///
/// ```
/// use odrl_metrics::Table;
/// let mut t = Table::new(vec!["bench", "tpoe"]);
/// t.add_row(vec!["canneal".into(), "12.5".into()]);
/// let s = t.to_string();
/// assert!(s.contains("canneal"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV (header row first). Cells containing
    /// commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let row_line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&row_line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row_line(row));
            out.push('\n');
        }
        out
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for tables: engineering-style with 3
/// significant figures, `inf`/`nan` spelled out.
pub fn fmt_num(x: f64) -> String {
    if x.is_nan() {
        return "nan".into();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf".into() } else { "-inf".into() };
    }
    let abs = x.abs();
    if abs == 0.0 {
        "0".into()
    } else if !(1e-3..1e5).contains(&abs) {
        format!("{x:.2e}")
    } else if abs >= 100.0 {
        format!("{x:.1}")
    } else if abs >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a ratio as a paper-style multiplier (`12.3x`, `inf`).
///
/// Non-finite ratios — the 0/0 and x/0 cases a zero-overshoot baseline
/// produces — render as `n/a` and `inf` instead of `nanx`/`infx`.
pub fn fmt_ratio(x: Option<f64>) -> String {
    match x {
        None => "n/a".into(),
        Some(v) if v.is_nan() => "n/a".into(),
        Some(v) if v.is_infinite() => {
            if v > 0.0 {
                "inf".into()
            } else {
                "-inf".into()
            }
        }
        Some(v) => format!("{}x", fmt_num(v)),
    }
}

/// Formats a fraction as a percentage (`97.5%`).
pub fn fmt_percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length (aligned).
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.to_string();
        assert!(!s.contains('3'), "extra cells must be dropped");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["plain".into(), "with,comma".into()]);
        t.add_row(vec!["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_num(f64::NAN), "nan");
        assert_eq!(fmt_num(1.234), "1.23");
        assert_eq!(fmt_num(123.4), "123.4");
        assert_eq!(fmt_num(0.1234), "0.123");
        assert!(fmt_num(1.23e9).contains('e'));
        assert!(fmt_num(1.2e-5).contains('e'));
    }

    #[test]
    fn fmt_ratio_and_percent() {
        assert_eq!(fmt_ratio(None), "n/a");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "inf");
        assert_eq!(fmt_ratio(Some(44.3)), "44.30x");
        assert_eq!(fmt_percent(0.98), "98.0%");
    }

    #[test]
    fn fmt_ratio_nonfinite_never_prints_a_multiplier_suffix() {
        // 0/0 (a zero-overshoot baseline against a zero-overshoot
        // candidate) must read as "not applicable", not "nanx".
        assert_eq!(fmt_ratio(Some(f64::NAN)), "n/a");
        assert_eq!(fmt_ratio(Some(f64::NEG_INFINITY)), "-inf");
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!fmt_ratio(Some(v)).ends_with('x'), "{v}");
        }
    }
}
