//! Criterion micro-benches for OD-RL's per-epoch components.
//!
//! The scalability claim rests on the controller's decide path being cheap;
//! this bench decomposes it: state encoding + reward shaping + agent
//! select/update per core, and the coarse-grain reallocation. Guards
//! against regressions that would erode the O(n·L) advantage measured in
//! E5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odrl_bench::{ControllerKind, Scenario};
use odrl_core::{BudgetAllocator, OdRlConfig};
use odrl_manycore::{Observation, Parallelism, System};
use odrl_power::{LevelId, Watts};
use odrl_workload::MixPolicy;
use std::time::Duration;

fn observation_for(cores: usize) -> (Observation, odrl_manycore::SystemSpec, Watts) {
    let scenario = Scenario {
        cores,
        budget_frac: 0.6,
        epochs: 0,
        mix: MixPolicy::RoundRobin,
        seed: 7,
        parallelism: Parallelism::Serial,
    };
    let config = scenario
        .try_system_config()
        .expect("scenario parameters are valid");
    let budget = Watts::new(0.6 * config.max_power().value());
    let mut system = System::new(config).expect("valid config");
    let spec = system.spec();
    for _ in 0..5 {
        system.step(&vec![LevelId(4); cores]).expect("valid step");
    }
    (system.observation(budget), spec, budget)
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("odrl_components");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for &cores in &[64usize, 256] {
        let (obs, spec, budget) = observation_for(cores);

        // The full fine-grain + coarse-grain decide path (zero-alloc).
        let mut ctrl = ControllerKind::OdRl.build(&spec, budget);
        let mut actions = vec![LevelId(0); cores];
        group.throughput(Throughput::Elements(cores as u64));
        group.bench_with_input(BenchmarkId::new("decide", cores), &obs, |b, obs| {
            b.iter(|| {
                ctrl.decide_into(obs, &mut actions);
                std::hint::black_box(&mut actions);
            })
        });

        // The coarse-grain reallocation alone.
        let mut alloc = BudgetAllocator::new(
            cores,
            OdRlConfig::default().realloc_gain,
            OdRlConfig::default().min_share,
        );
        alloc.observe(&obs);
        let current = BudgetAllocator::fair_split(budget, cores);
        group.bench_with_input(BenchmarkId::new("reallocate", cores), &obs, |b, obs| {
            b.iter(|| std::hint::black_box(alloc.reallocate(obs, &current, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
