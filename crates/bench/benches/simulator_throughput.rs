//! Criterion bench for the simulation substrate itself: epochs per second
//! of the closed loop at several system sizes.
//!
//! Not a paper figure — it documents that the simulator is fast enough to
//! run the full evaluation (the paper's scalability argument presumes the
//! plant is not the bottleneck) and guards against performance regressions
//! in the epoch path (perf model + power model + thermal grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odrl_manycore::{System, SystemConfig};
use odrl_power::LevelId;
use std::time::Duration;

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for &cores in &[16usize, 64, 256] {
        let config = SystemConfig::builder()
            .cores(cores)
            .seed(1)
            .build()
            .expect("valid config");
        let mut system = System::new(config).expect("valid system");
        let levels = vec![LevelId(4); cores];
        group.throughput(Throughput::Elements(cores as u64));
        group.bench_with_input(BenchmarkId::new("epoch", cores), &(), |b, ()| {
            b.iter(|| std::hint::black_box(system.step(&levels).expect("valid step")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
