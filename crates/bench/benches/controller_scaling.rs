//! Criterion bench for experiment E5: per-decision controller latency vs
//! core count.
//!
//! Regenerates the paper's scalability figure with statistically sound
//! timing: OD-RL's O(n·L) decision cost against MaxBIPS-DP's
//! pseudo-polynomial knapsack and the other baselines, at 16–1024 cores
//! (exhaustive MaxBIPS only at 4–8 cores, where it is still feasible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odrl_bench::{ControllerKind, Scenario};
use odrl_manycore::{Observation, Parallelism, System, SystemSpec};
use odrl_power::{LevelId, Watts};
use odrl_workload::MixPolicy;
use std::time::Duration;

fn observation_for(cores: usize) -> (Observation, SystemSpec, Watts) {
    let scenario = Scenario {
        cores,
        budget_frac: 0.6,
        epochs: 0,
        mix: MixPolicy::RoundRobin,
        seed: 7,
        parallelism: Parallelism::Serial,
    };
    let config = scenario
        .try_system_config()
        .expect("scenario parameters are valid");
    let budget = Watts::new(0.6 * config.max_power().value());
    let mut system = System::new(config).expect("valid config");
    let spec = system.spec();
    for _ in 0..5 {
        system.step(&vec![LevelId(4); cores]).expect("valid step");
    }
    (system.observation(budget), spec, budget)
}

fn bench_controllers(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for &cores in &[16usize, 64, 256, 1024] {
        let (obs, spec, budget) = observation_for(cores);
        for kind in [
            ControllerKind::OdRl,
            ControllerKind::MaxBipsDp,
            ControllerKind::SteepestDrop,
            ControllerKind::Pid,
        ] {
            let mut ctrl = kind.build(&spec, budget);
            let mut actions = vec![LevelId(0); cores];
            group.bench_with_input(BenchmarkId::new(kind.label(), cores), &obs, |b, obs| {
                b.iter(|| {
                    ctrl.decide_into(obs, &mut actions);
                    std::hint::black_box(&mut actions);
                })
            });
        }
    }

    // The combinatorial wall: exhaustive MaxBIPS at toy core counts only.
    for &cores in &[4usize, 6, 8] {
        let (obs, spec, budget) = observation_for(cores);
        let mut ctrl = ControllerKind::MaxBipsExhaustive.build(&spec, budget);
        let mut actions = vec![LevelId(0); cores];
        group.bench_with_input(
            BenchmarkId::new("maxbips-exhaustive", cores),
            &obs,
            |b, obs| {
                b.iter(|| {
                    ctrl.decide_into(obs, &mut actions);
                    std::hint::black_box(&mut actions);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
