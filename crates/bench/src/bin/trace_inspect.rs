//! Trace inspector: filters and windows a structured JSONL trace
//! (written by `epoch_kernel --trace` or any `odrl_obs::JsonlSink`) and
//! prints it as an aligned table plus per-kind totals.
//!
//! ```text
//! trace_inspect out.jsonl                     # whole trace
//! trace_inspect out.jsonl --core 3            # one core (plus chip rows: --core chip)
//! trace_inspect out.jsonl --kind fault        # one event family
//! trace_inspect out.jsonl --around-overshoot 5  # ±5 epochs around each overshoot onset
//! trace_inspect out.jsonl --limit 40          # first 40 matching rows
//! ```
//!
//! Filters compose (logical AND). `--kind` takes the family names
//! `watchdog`, `overshoot`, `realloc`, `redistribution`, `market`, `rl`,
//! `fault`, `vf`, `epoch`.

use odrl_metrics::Table;
use odrl_obs::{read_jsonl, Event, EventRecord, CHIP};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    path: String,
    core: Option<u32>,
    kind: Option<String>,
    around_overshoot: Option<u64>,
    limit: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_inspect <trace.jsonl> [--core K|chip] [--kind NAME] \
         [--around-overshoot N] [--limit M]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut path = None;
    let mut core = None;
    let mut kind = None;
    let mut around_overshoot = None;
    let mut limit = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => {
                let v = args.next().unwrap_or_else(|| usage());
                core = Some(if v == "chip" {
                    CHIP
                } else {
                    v.parse().unwrap_or_else(|_| usage())
                });
            }
            "--kind" => kind = Some(args.next().unwrap_or_else(|| usage())),
            "--around-overshoot" => {
                around_overshoot = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--limit" => {
                limit = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with("--") => path = Some(arg),
            _ => usage(),
        }
    }
    Args {
        path: path.unwrap_or_else(|| usage()),
        core,
        kind,
        around_overshoot,
        limit,
    }
}

/// Epochs within `±n` of any overshoot onset in the trace.
fn overshoot_windows(records: &[EventRecord], n: u64) -> Vec<(u64, u64)> {
    records
        .iter()
        .filter(|r| matches!(r.event, Event::OvershootOnset { .. }))
        .map(|r| (r.epoch.saturating_sub(n), r.epoch.saturating_add(n)))
        .collect()
}

fn main() -> ExitCode {
    let args = parse_args();
    let file = match std::fs::File::open(&args.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_inspect: cannot open {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let records = match read_jsonl(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_inspect: cannot parse {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let total = records.len();
    let windows = args
        .around_overshoot
        .map(|n| overshoot_windows(&records, n));
    if let (Some(w), Some(n)) = (&windows, args.around_overshoot) {
        println!(
            "{} overshoot onset(s); windowing to ±{n} epochs around each",
            w.len()
        );
    }

    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut table = Table::new(vec!["epoch", "core", "seq", "kind", "detail"]);
    let mut shown = 0usize;
    let mut matched = 0usize;
    for r in &records {
        if let Some(core) = args.core {
            if r.core != core {
                continue;
            }
        }
        if let Some(kind) = &args.kind {
            if r.event.kind_name() != kind {
                continue;
            }
        }
        if let Some(w) = &windows {
            if !w.iter().any(|&(lo, hi)| (lo..=hi).contains(&r.epoch)) {
                continue;
            }
        }
        matched += 1;
        *by_kind.entry(r.event.kind_name()).or_insert(0) += 1;
        if shown < args.limit {
            let core = if r.core == CHIP {
                "chip".to_string()
            } else {
                r.core.to_string()
            };
            table.add_row(vec![
                r.epoch.to_string(),
                core,
                r.seq.to_string(),
                r.event.kind_name().to_string(),
                r.event.detail(),
            ]);
            shown += 1;
        }
    }

    if table.is_empty() {
        println!("no records match ({total} in trace)");
        return ExitCode::SUCCESS;
    }
    println!("{table}");
    if shown < matched {
        println!("... {matched} matched, first {shown} shown (--limit)");
    }
    let mut counts = Table::new(vec!["kind", "count"]);
    for (kind, count) in &by_kind {
        counts.add_row(vec![(*kind).to_string(), count.to_string()]);
    }
    println!("per-kind totals ({matched} of {total} records matched):");
    println!("{counts}");
    ExitCode::SUCCESS
}
