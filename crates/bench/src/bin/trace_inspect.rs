//! Trace inspector: filters and windows a structured JSONL trace
//! (written by `epoch_kernel --trace` or any `odrl_obs::JsonlSink`) and
//! prints it as an aligned table plus per-kind totals. Also understands
//! fleet traces (`--chip`) and metrics snapshots / flight-recorder dumps
//! (`metrics` mode).
//!
//! ```text
//! trace_inspect out.jsonl                     # whole trace
//! trace_inspect out.jsonl --core 3            # one core (plus chip rows: --core chip)
//! trace_inspect out.jsonl --kind fault        # one event family
//! trace_inspect out.jsonl --around-overshoot 5  # ±5 epochs around each overshoot onset
//! trace_inspect out.jsonl --limit 40          # first 40 matching rows
//! trace_inspect fleet.jsonl --chip 2          # fleet trace, one chip
//! trace_inspect fleet.jsonl --chip rack       # rack-scope rows (anomalies)
//! trace_inspect metrics snapshot.prom         # counters/gauges/summary quantiles
//! trace_inspect metrics dump.bin              # flight-recorder dump (both sections)
//! ```
//!
//! Filters compose (logical AND). `--kind` takes the family names
//! `watchdog`, `overshoot`, `realloc`, `redistribution`, `market`, `rl`,
//! `fault`, `vf`, `epoch`, `anomaly`. `--chip` switches the reader to the
//! fleet JSONL encoding (records tagged with a chip index).

use odrl_metrics::Table;
use odrl_obs::{
    read_fleet_jsonl, read_jsonl, Event, EventRecord, MetricsSnapshot, CHIP, RACK,
};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    path: String,
    metrics: bool,
    core: Option<u32>,
    chip: Option<u32>,
    kind: Option<String>,
    around_overshoot: Option<u64>,
    limit: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_inspect <trace.jsonl> [--core K|chip] [--chip K|rack] [--kind NAME] \
         [--around-overshoot N] [--limit M]\n\
         \x20      trace_inspect metrics <snapshot.prom|dump>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut path = None;
    let mut metrics = false;
    let mut core = None;
    let mut chip = None;
    let mut kind = None;
    let mut around_overshoot = None;
    let mut limit = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "metrics" if path.is_none() && !metrics => metrics = true,
            "--core" => {
                let v = args.next().unwrap_or_else(|| usage());
                core = Some(if v == "chip" {
                    CHIP
                } else {
                    v.parse().unwrap_or_else(|_| usage())
                });
            }
            "--chip" => {
                let v = args.next().unwrap_or_else(|| usage());
                chip = Some(if v == "rack" {
                    RACK
                } else {
                    v.parse().unwrap_or_else(|_| usage())
                });
            }
            "--kind" => kind = Some(args.next().unwrap_or_else(|| usage())),
            "--around-overshoot" => {
                around_overshoot = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--limit" => {
                limit = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with("--") => path = Some(arg),
            _ => usage(),
        }
    }
    Args {
        path: path.unwrap_or_else(|| usage()),
        metrics,
        core,
        chip,
        kind,
        around_overshoot,
        limit,
    }
}

/// Epochs within `±n` of any overshoot onset in the trace.
fn overshoot_windows(records: &[(u32, EventRecord)], n: u64) -> Vec<(u64, u64)> {
    records
        .iter()
        .filter(|(_, r)| matches!(r.event, Event::OvershootOnset { .. }))
        .map(|(_, r)| (r.epoch.saturating_sub(n), r.epoch.saturating_add(n)))
        .collect()
}

/// Prints a metrics snapshot as aligned counter/gauge/summary tables; the
/// summary table derives magnitude quantiles from the log2 buckets.
fn print_snapshot(snap: &MetricsSnapshot) {
    println!("snapshot at epoch {}", snap.epoch);
    if !snap.counters.is_empty() {
        let mut t = Table::new(vec!["counter", "value"]);
        for (name, v) in snap.counter_names.iter().zip(&snap.counters) {
            t.add_row(vec![name.clone(), v.to_string()]);
        }
        println!("{t}");
    }
    if !snap.gauges.is_empty() {
        let mut t = Table::new(vec!["gauge", "value"]);
        for (name, v) in snap.gauge_names.iter().zip(&snap.gauges) {
            t.add_row(vec![name.clone(), format!("{v:.6}")]);
        }
        println!("{t}");
    }
    if !snap.summaries.is_empty() {
        let mut t = Table::new(vec![
            "summary", "count", "mean", "stddev", "min", "max", "|p50|", "|p90|", "|p99|",
        ]);
        for (name, s) in snap.summary_names.iter().zip(&snap.summaries) {
            if s.count() == 0 {
                t.add_row(vec![
                    name.clone(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            t.add_row(vec![
                name.clone(),
                s.count().to_string(),
                format!("{:.6}", s.mean()),
                format!("{:.6}", s.std_dev()),
                format!("{:.6}", s.min()),
                format!("{:.6}", s.max()),
                format!("{:.4}", s.magnitude_quantile(0.5)),
                format!("{:.4}", s.magnitude_quantile(0.9)),
                format!("{:.4}", s.magnitude_quantile(0.99)),
            ]);
        }
        println!("{t}");
    }
}

/// `metrics` mode: a bare Prometheus exposition, or a flight-recorder
/// dump (`# odrl_flight_record` header, exposition, `# odrl_trace`,
/// fleet JSONL window).
fn inspect_metrics(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_inspect: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (header, metrics_text, trace_text) = if text.starts_with("# odrl_flight_record") {
        let (header, rest) = text.split_once('\n').unwrap_or((text.as_str(), ""));
        match rest.find("# odrl_trace\n") {
            Some(at) => {
                let (m, t) = rest.split_at(at);
                (Some(header), m, Some(t))
            }
            None => (Some(header), rest, None),
        }
    } else {
        (None, text.as_str(), None)
    };
    if let Some(h) = header {
        println!("{h}");
    }
    match MetricsSnapshot::from_prometheus(metrics_text) {
        Ok(snap) => print_snapshot(&snap),
        Err(e) => {
            eprintln!("trace_inspect: cannot parse metrics section of {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(t) = trace_text {
        match read_fleet_jsonl(t.as_bytes()) {
            Ok(records) => {
                let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for fr in &records {
                    *by_kind.entry(fr.record.event.kind_name()).or_insert(0) += 1;
                    lo = lo.min(fr.record.epoch);
                    hi = hi.max(fr.record.epoch);
                }
                println!(
                    "trace window: {} records over epochs {lo}..={hi}",
                    records.len()
                );
                let mut counts = Table::new(vec!["kind", "count"]);
                for (kind, count) in &by_kind {
                    counts.add_row(vec![(*kind).to_string(), count.to_string()]);
                }
                println!("{counts}");
            }
            Err(e) => {
                eprintln!("trace_inspect: cannot parse trace section of {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.metrics {
        return inspect_metrics(&args.path);
    }
    let file = match std::fs::File::open(&args.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_inspect: cannot open {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    // A fleet trace (`--chip` given) carries a chip index per record; a
    // chip trace maps onto the same row shape with the chip column fixed.
    let fleet = args.chip.is_some();
    let records: Vec<(u32, EventRecord)> = if fleet {
        match read_fleet_jsonl(BufReader::new(file)) {
            Ok(r) => r.into_iter().map(|fr| (fr.chip, fr.record)).collect(),
            Err(e) => {
                eprintln!("trace_inspect: cannot parse {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match read_jsonl(BufReader::new(file)) {
            Ok(r) => r.into_iter().map(|record| (0, record)).collect(),
            Err(e) => {
                eprintln!("trace_inspect: cannot parse {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let total = records.len();
    let windows = args
        .around_overshoot
        .map(|n| overshoot_windows(&records, n));
    if let (Some(w), Some(n)) = (&windows, args.around_overshoot) {
        println!(
            "{} overshoot onset(s); windowing to ±{n} epochs around each",
            w.len()
        );
    }

    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let header = if fleet {
        vec!["epoch", "chip", "core", "seq", "kind", "detail"]
    } else {
        vec!["epoch", "core", "seq", "kind", "detail"]
    };
    let mut table = Table::new(header);
    let mut shown = 0usize;
    let mut matched = 0usize;
    for (chip, r) in &records {
        if let Some(want) = args.chip {
            if *chip != want {
                continue;
            }
        }
        if let Some(core) = args.core {
            if r.core != core {
                continue;
            }
        }
        if let Some(kind) = &args.kind {
            if r.event.kind_name() != kind {
                continue;
            }
        }
        if let Some(w) = &windows {
            if !w.iter().any(|&(lo, hi)| (lo..=hi).contains(&r.epoch)) {
                continue;
            }
        }
        matched += 1;
        *by_kind.entry(r.event.kind_name()).or_insert(0) += 1;
        if shown < args.limit {
            let core = if r.core == CHIP {
                "chip".to_string()
            } else {
                r.core.to_string()
            };
            let mut row = vec![r.epoch.to_string()];
            if fleet {
                row.push(if *chip == RACK {
                    "rack".to_string()
                } else {
                    chip.to_string()
                });
            }
            row.extend([
                core,
                r.seq.to_string(),
                r.event.kind_name().to_string(),
                r.event.detail(),
            ]);
            table.add_row(row);
            shown += 1;
        }
    }

    if table.is_empty() {
        println!("no records match ({total} in trace)");
        return ExitCode::SUCCESS;
    }
    println!("{table}");
    if shown < matched {
        println!("... {matched} matched, first {shown} shown (--limit)");
    }
    let mut counts = Table::new(vec!["kind", "count"]);
    for (kind, count) in &by_kind {
        counts.add_row(vec![(*kind).to_string(), count.to_string()]);
    }
    println!("per-kind totals ({matched} of {total} records matched):");
    println!("{counts}");
    ExitCode::SUCCESS
}
