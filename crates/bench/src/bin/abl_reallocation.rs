//! **A1** — Ablation: coarse-grain global budget reallocation on/off.
//!
//! Compares full OD-RL against the per-core-RL-only variant (budgets frozen
//! at the fair split) on the heterogeneous mixed workload, where
//! reallocation matters most: memory-bound cores donate watts that
//! compute-bound cores convert into instructions.
//!
//! Run with: `cargo run --release -p odrl-bench --bin abl_reallocation`

use odrl_bench::{run_scenarios_parallel, sweep_parallelism, ControllerKind, Scenario};
use odrl_manycore::Parallelism;
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_workload::MixPolicy;

fn main() {
    println!("A1: global budget reallocation ablation (64 cores, mixed workload, 2000 epochs)\n");

    let mut table = Table::new(vec![
        "budget_pct",
        "odrl_gips",
        "local_gips",
        "realloc_gain",
        "odrl_ovj",
        "local_ovj",
    ]);
    let mut max_gain = f64::NEG_INFINITY;
    let pcts = [40, 50, 60, 70];
    let cells: Vec<_> = pcts
        .iter()
        .flat_map(|&pct| {
            let scenario = Scenario {
                cores: 64,
                budget_frac: pct as f64 / 100.0,
                epochs: 2_000,
                mix: MixPolicy::RoundRobin,
                seed: 4,
                parallelism: Parallelism::Serial,
            };
            [
                (scenario.clone(), ControllerKind::OdRl),
                (scenario, ControllerKind::OdRlLocal),
            ]
        })
        .collect();
    let mut summaries = run_scenarios_parallel(&cells, sweep_parallelism()).into_iter();
    for pct in pcts {
        let full = summaries.next().expect("one summary per cell");
        let local = summaries.next().expect("one summary per cell");
        let gain = full.throughput_ips() / local.throughput_ips() - 1.0;
        max_gain = max_gain.max(gain);
        table.add_row(vec![
            format!("{pct}%"),
            fmt_num(full.throughput_ips() / 1e9),
            fmt_num(local.throughput_ips() / 1e9),
            fmt_percent(gain),
            fmt_num(full.overshoot_energy.value()),
            fmt_num(local.overshoot_energy.value()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: reallocation helps most at tight budgets (it can move scarce \
         watts to compute-bound cores); max observed throughput gain {}",
        fmt_percent(max_gain)
    );
}
