//! **E15** — Predictive slack market: overshoot and utilization vs the
//! reactive OD-RL reference.
//!
//! The market arm (`odrl-market`) forecasts each core's next-epoch power
//! with an EMA-plus-window predictor, collects predicted slack above a
//! safety margin into a reclaim pool and re-grants it to over-budget
//! cores before the AIMD step runs. This harness compares the arm
//! against plain reactive OD-RL across the benchmark suite (overshoot
//! energy, throughput, budget utilization), then runs the conservation
//! gates: every market round at chip and rack scope must satisfy
//! `donated − granted − residual = 0` **bit-exactly**.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_market`
//! (add `-- --smoke` for the CI gate).

use odrl_bench::{benchmark_sweep_parallel, sweep_parallelism, ControllerKind, RunBuilder, Scenario};
use odrl_controllers::PowerController;
use odrl_core::{MarketConfig, OdRlConfig, OdRlController};
use odrl_manycore::{Parallelism, System};
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_power::{LevelId, Watts};
use odrl_workload::MixPolicy;

/// Steps one chip with the market arm on, asserting after every epoch
/// that the round ledger conserves bit-exactly, and returns
/// `(rounds, trades, total_granted_w)`.
fn chip_conservation_gate(cores: usize, budget_frac: f64, epochs: u64) -> (u64, u64, f64) {
    let scenario = Scenario {
        cores,
        budget_frac,
        epochs,
        mix: MixPolicy::RoundRobin,
        seed: 7,
        parallelism: Parallelism::Serial,
    };
    let config = scenario.try_system_config().expect("valid scenario");
    let budget = Watts::new(budget_frac * config.max_power().value());
    let mut system = System::new(config).expect("valid scenario config");
    let odrl = OdRlConfig {
        market: MarketConfig::enabled(),
        ..OdRlConfig::default()
    };
    let mut controller =
        OdRlController::new(odrl, &system.spec(), budget).expect("valid OD-RL config");
    let mut actions = vec![LevelId(0); cores];
    let mut obs = system.observation(budget);
    let mut trades = 0u64;
    for _ in 0..epochs {
        controller.decide_into(&obs, &mut actions);
        system.step_in_place(&actions).expect("valid actions");
        system.observation_into(budget, &mut obs);
        if let Some(round) = controller.market_round() {
            assert_eq!(
                round.conservation_error(),
                0.0,
                "chip-scope market ledger must conserve bit-exactly"
            );
            if round.moved() {
                trades += 1;
            }
        }
    }
    let market = controller.market().expect("market arm is on");
    (market.rounds(), trades, market.pool().total_granted())
}

/// Steps a 4-chip fleet with the rack-scope market on, asserting the
/// round ledger conserves bit-exactly and the arbitrated shares keep
/// summing to the fleet budget. Returns `(rounds, trades)`.
fn fleet_conservation_gate(cores: usize, epochs: u64) -> (u64, u64) {
    let scenario = Scenario {
        cores,
        // Tight budget: chips run clamped against their shares, so
        // decorrelated workload phases produce donors *and* applicants.
        budget_frac: 0.2,
        epochs,
        mix: MixPolicy::RoundRobin,
        seed: 9,
        parallelism: Parallelism::Serial,
    };
    let market = MarketConfig {
        safety_margin: 0.0,
        min_keep: 0.0,
        min_grant: 0.0,
        headroom: 1.0,
        ..MarketConfig::enabled()
    };
    let mut fleet = RunBuilder::new(scenario)
        .arbiter_period(20)
        .market(market)
        .build_fleet(4)
        .expect("valid fleet configuration");
    let total = fleet.total_budget().value();
    let mut trades = 0u64;
    for _ in 0..epochs {
        fleet.step_epoch().expect("fleet epoch completes");
        if let Some(round) = fleet.market_round() {
            assert_eq!(
                round.conservation_error(),
                0.0,
                "rack-scope market ledger must conserve bit-exactly"
            );
            if round.moved() {
                trades += 1;
            }
        }
        let sum = fleet.arbitrated_sum();
        assert!(
            (sum - total).abs() <= 1e-9 * total,
            "epoch {}: arbitrated shares sum to {sum} W, fleet budget is {total} W",
            fleet.epoch()
        );
    }
    (fleet.market().expect("market is on").rounds(), trades)
}

/// Runs the reactive-vs-market benchmark comparison and prints the E15
/// table. Returns suite totals
/// `(reactive_overshoot_j, market_overshoot_j, reactive_instr, market_instr)`.
fn comparison(cores: usize, epochs: u64, print: bool) -> (f64, f64, f64, f64) {
    let kinds = [ControllerKind::OdRl, ControllerKind::OdRlMarket];
    let sweep = benchmark_sweep_parallel(cores, 0.6, epochs, 1, &kinds, sweep_parallelism());
    let mut table = Table::new(vec![
        "benchmark",
        "reactive_j",
        "market_j",
        "reduction",
        "util_react",
        "util_market",
        "thru_ratio",
    ]);
    let mut totals = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (bench, summaries) in &sweep {
        let (reactive, market) = (&summaries[0], &summaries[1]);
        // Both cells share the budget (same scenario geometry): mean
        // power over budget is the utilization the market tries to raise.
        let budget = {
            let scenario = Scenario {
                cores,
                budget_frac: 0.6,
                epochs,
                mix: MixPolicy::Homogeneous(bench.clone()),
                seed: 1,
                parallelism: Parallelism::Serial,
            };
            let config = scenario.try_system_config().expect("valid scenario");
            0.6 * config.max_power().value()
        };
        let reduction = if reactive.overshoot_energy.value() > 0.0 {
            1.0 - market.overshoot_energy.value() / reactive.overshoot_energy.value()
        } else {
            0.0
        };
        table.add_row(vec![
            bench.clone(),
            fmt_num(reactive.overshoot_energy.value()),
            fmt_num(market.overshoot_energy.value()),
            fmt_percent(reduction),
            fmt_percent(reactive.mean_power.value() / budget),
            fmt_percent(market.mean_power.value() / budget),
            format!(
                "{:.4}",
                market.total_instructions / reactive.total_instructions
            ),
        ]);
        totals.0 += reactive.overshoot_energy.value();
        totals.1 += market.overshoot_energy.value();
        totals.2 += reactive.total_instructions;
        totals.3 += market.total_instructions;
    }
    if print {
        println!("{table}");
    }
    totals
}

/// The CI gate: a small reactive-vs-market slice plus both conservation
/// gates. Panics on regression.
fn smoke() {
    let (reactive_j, market_j, reactive_i, market_i) = comparison(16, 400, false);
    let thru = market_i / reactive_i;
    println!(
        "smoke comparison : suite overshoot {} J -> {} J, throughput ratio {thru:.4}",
        fmt_num(reactive_j),
        fmt_num(market_j)
    );
    assert!(
        market_j <= reactive_j,
        "market arm must not increase suite-total overshoot ({market_j} J vs {reactive_j} J)"
    );
    assert!(
        thru >= 0.99,
        "market arm throughput regressed more than 1% (ratio {thru:.4})"
    );
    let (rounds, trades, granted) = chip_conservation_gate(16, 0.6, 400);
    assert!(trades > 0, "the chip-scope market never traded");
    assert!(granted > 0.0);
    println!(
        "smoke chip gate  : {rounds} rounds, {trades} trading, {} W granted, ledger bit-exact",
        fmt_num(granted)
    );
    let (rounds, trades) = fleet_conservation_gate(16, 60);
    assert!(trades > 0, "the rack-scope market never traded");
    println!("smoke fleet gate : {rounds} rounds, {trades} trading, ledger bit-exact");
    println!("\nsmoke OK: market beats reactive on overshoot and both ledgers conserve");
}

fn main() {
    let smoke_only = std::env::args().skip(1).any(|a| a == "--smoke");
    if smoke_only {
        smoke();
        return;
    }

    println!("E15: predictive slack market vs reactive OD-RL (64 cores, 60% budget, 2000 epochs)\n");
    let (reactive_j, market_j, reactive_i, market_i) = comparison(64, 2_000, true);
    let reduction = if reactive_j > 0.0 {
        1.0 - market_j / reactive_j
    } else {
        0.0
    };
    println!(
        "suite totals: overshoot {} J -> {} J ({} less), throughput ratio {:.4}\n",
        fmt_num(reactive_j),
        fmt_num(market_j),
        fmt_percent(reduction),
        market_i / reactive_i
    );

    let (rounds, trades, granted) = chip_conservation_gate(64, 0.6, 2_000);
    println!(
        "chip conservation : {rounds} rounds, {trades} trading, {} W granted, \
         donated - granted - residual = 0 bit-exactly every round",
        fmt_num(granted)
    );
    let (rounds, trades) = fleet_conservation_gate(64, 200);
    println!(
        "fleet conservation: {rounds} rounds, {trades} trading, ledger bit-exact, \
         arbitrated shares sum to the fleet budget every epoch"
    );
}
