//! **E5** — Controller-runtime scalability (paper claim 3: "two orders of
//! magnitude speedup over state-of-the-art techniques for systems with
//! hundreds of cores").
//!
//! Measures the wall-clock cost of one `decide()` call per controller at
//! core counts from 16 to 1024 (exhaustive MaxBIPS additionally at 4–8
//! cores, beyond which it is combinatorially infeasible — the point of the
//! claim). Reports median nanoseconds per decision and the MaxBIPS-DP /
//! OD-RL ratio.
//!
//! Criterion-grade measurements of the same quantity live in
//! `benches/controller_scaling.rs`; this binary prints the paper-style
//! table quickly.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_scaling`

use odrl_bench::{allocs, ControllerKind, Scenario};
use odrl_controllers::PowerController;
use odrl_core::{OdRlConfig, OdRlController};
use odrl_manycore::{Observation, Parallelism, System};
use odrl_metrics::{fmt_num, fmt_ratio, Table};
use odrl_power::{LevelId, Watts};
use odrl_workload::MixPolicy;
use std::time::Instant;

#[global_allocator]
static ALLOC: allocs::CountingAllocator = allocs::CountingAllocator;

/// Builds a warmed-up observation for `cores` cores.
fn observation_for(cores: usize) -> (Observation, odrl_manycore::SystemSpec, Watts) {
    let scenario = Scenario {
        cores,
        budget_frac: 0.6,
        epochs: 0,
        mix: MixPolicy::RoundRobin,
        seed: 7,
        parallelism: Parallelism::Serial,
    };
    let config = scenario
        .try_system_config()
        .expect("scenario parameters are valid");
    let budget = Watts::new(0.6 * config.max_power().value());
    let mut system = System::new(config).expect("valid config");
    let spec = system.spec();
    let mid = LevelId(4);
    for _ in 0..5 {
        system.step(&vec![mid; cores]).expect("valid step");
    }
    (system.observation(budget), spec, budget)
}

/// One controller's measured decision cost: median latency plus the heap
/// traffic of the measured region (serial decides allocate on this thread,
/// so the thread-local counters see every allocation).
struct Sample {
    ns: f64,
    allocs_per_decide: f64,
}

/// Median nanoseconds per decision over `reps` calls (zero-alloc hot path),
/// with the allocation counters diffed around the timed region.
fn measure(ctrl: &mut dyn PowerController, obs: &Observation, reps: usize) -> Sample {
    let mut actions = vec![LevelId(0); obs.cores.len()];
    // Warmup: populates every scratch buffer so the timed region is the
    // steady state.
    for _ in 0..3 {
        ctrl.decide_into(obs, &mut actions);
    }
    let mut samples = vec![0.0f64; reps];
    let a0 = allocs::allocations();
    for s in samples.iter_mut() {
        let t = Instant::now();
        ctrl.decide_into(obs, &mut actions);
        *s = t.elapsed().as_nanos() as f64;
    }
    let da = allocs::allocations() - a0;
    samples.sort_by(f64::total_cmp);
    Sample {
        ns: samples[samples.len() / 2],
        allocs_per_decide: da as f64 / reps as f64,
    }
}

fn main() {
    println!("E5: controller decision latency vs core count (median ns/decision)\n");

    // Exhaustive MaxBIPS: only at toy sizes, to show the combinatorial wall.
    println!("exhaustive MaxBIPS (exact, as published):");
    let mut ex_table = Table::new(vec!["cores", "maxbips_exhaustive_ns"]);
    for &n in &[2usize, 4, 6, 8] {
        let (obs, spec, budget) = observation_for(n);
        let mut ctrl = ControllerKind::MaxBipsExhaustive.build(&spec, budget);
        let ns = measure(ctrl.as_mut(), &obs, 5).ns;
        ex_table.add_row(vec![n.to_string(), fmt_num(ns)]);
    }
    println!("{ex_table}");

    let kinds = [
        ControllerKind::OdRl,
        ControllerKind::OdRlHier,
        ControllerKind::MaxBipsDp,
        ControllerKind::SteepestDrop,
        ControllerKind::PriorityGreedy,
        ControllerKind::Pid,
    ];
    let mut headers = vec!["cores".to_string()];
    headers.extend(kinds.iter().map(|k| format!("{}_ns", k.label())));
    headers.push("dp_over_odrl".into());
    let mut table = Table::new(headers);
    let mut alloc_headers = vec!["cores".to_string()];
    alloc_headers.extend(kinds.iter().map(|k| format!("{}_allocs", k.label())));
    let mut alloc_table = Table::new(alloc_headers);

    let mut worst_ratio = 0.0f64;
    for &n in &[16usize, 32, 64, 128, 256, 512, 1024] {
        let (obs, spec, budget) = observation_for(n);
        let mut row = vec![n.to_string()];
        let mut alloc_row = vec![n.to_string()];
        let mut odrl_ns = 0.0;
        let mut dp_ns = 0.0;
        for kind in kinds {
            let mut ctrl = kind.build(&spec, budget);
            let reps = if n >= 512 { 7 } else { 11 };
            let sample = measure(ctrl.as_mut(), &obs, reps);
            if kind == ControllerKind::OdRl {
                odrl_ns = sample.ns;
            }
            if kind == ControllerKind::MaxBipsDp {
                dp_ns = sample.ns;
            }
            row.push(fmt_num(sample.ns));
            alloc_row.push(format!("{:.1}", sample.allocs_per_decide));
        }
        let ratio = dp_ns / odrl_ns;
        if n >= 256 {
            worst_ratio = worst_ratio.max(ratio);
        }
        row.push(fmt_ratio(Some(ratio)));
        table.add_row(row);
        alloc_table.add_row(alloc_row);
    }
    println!("{table}");
    println!("heap allocations per steady-state decide (0 = zero-alloc hot path):");
    println!("{alloc_table}");
    println!(
        "MaxBIPS-DP / OD-RL decision-cost ratio at >=256 cores: up to {worst_ratio:.0}x \
         (paper: two orders of magnitude vs state of the art; exhaustive MaxBIPS is \
         infeasible outright beyond ~10 cores)\n"
    );

    // Sharded decide path: the per-core agents are independent, so the
    // decide loop parallelizes bit-identically across worker threads.
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "OD-RL decision latency vs worker threads (bit-identical output; \
         {hw} hardware thread(s) available — speedups need spare hardware threads):"
    );
    let shard_counts = [1usize, 2, 4, 8];
    let mut headers = vec!["cores".to_string()];
    headers.extend(shard_counts.iter().map(|t| format!("{t}_threads_ns")));
    headers.push("best_speedup".into());
    let mut par_table = Table::new(headers);
    for &n in &[256usize, 512, 1024] {
        let (obs, spec, budget) = observation_for(n);
        let mut row = vec![n.to_string()];
        let mut serial_ns = 0.0;
        let mut best_ns = f64::INFINITY;
        for (i, &threads) in shard_counts.iter().enumerate() {
            let config = OdRlConfig {
                parallelism: if threads == 1 {
                    Parallelism::Serial
                } else {
                    Parallelism::Threads(threads)
                },
                ..OdRlConfig::default()
            };
            let mut ctrl =
                OdRlController::new(config, &spec, budget).expect("valid OD-RL config");
            let ns = measure(&mut ctrl, &obs, 11).ns;
            if i == 0 {
                serial_ns = ns;
            }
            best_ns = best_ns.min(ns);
            row.push(fmt_num(ns));
        }
        row.push(format!("{:.2}x", serial_ns / best_ns));
        par_table.add_row(row);
    }
    println!("{par_table}");
}
