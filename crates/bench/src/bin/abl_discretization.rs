//! **A2** — Ablation: state-discretization granularity.
//!
//! Sweeps the number of power-ratio bins and memory-boundedness bins of
//! the per-core state. Too few bins blur the budget boundary (overshoot
//! rises); too many slow learning (each state is visited less often within
//! the run). The default (8 × 4) sits in the sweet spot.
//!
//! Run with: `cargo run --release -p odrl-bench --bin abl_discretization`

use odrl_bench::{
    run_cells_parallel, run_loop, sweep_parallelism, ChipRun, ControllerKind, RunBuilder, Scenario,
};
use odrl_core::OdRlConfig;
use odrl_manycore::Parallelism;
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_workload::MixPolicy;

fn run_with(config: OdRlConfig, scenario: &Scenario) -> odrl_metrics::RunSummary {
    let ChipRun {
        mut system,
        mut controller,
        budget,
    } = RunBuilder::new(scenario.clone())
        .controller(ControllerKind::OdRl)
        .odrl(config)
        .build_chip()
        .expect("valid ablation configuration");
    run_loop(&mut system, controller.as_mut(), budget, scenario.epochs).summary
}

fn main() {
    let scenario = Scenario {
        cores: 64,
        budget_frac: 0.6,
        epochs: 2_000,
        mix: MixPolicy::RoundRobin,
        seed: 6,
        parallelism: Parallelism::Serial,
    };
    println!("A2: state-discretization ablation (64 cores, 60% budget, 2000 epochs)\n");

    let power_bins = [2usize, 4, 8, 16, 32];
    let mem_bins = [1usize, 2, 4, 8];
    // Fan both sweep axes out together: one cell per (axis, bins) point.
    let cells: Vec<(bool, usize)> = power_bins
        .iter()
        .map(|&b| (true, b))
        .chain(mem_bins.iter().map(|&b| (false, b)))
        .collect();
    let mut runs = run_cells_parallel(&cells, sweep_parallelism(), |&(is_power, bins)| {
        let config = if is_power {
            OdRlConfig {
                power_bins: bins,
                ..OdRlConfig::default()
            }
        } else {
            OdRlConfig {
                mem_bins: bins,
                ..OdRlConfig::default()
            }
        };
        run_with(config, &scenario)
    })
    .into_iter();

    println!("power-ratio bins (mem_bins fixed at 4):");
    let mut table = Table::new(vec!["power_bins", "gips", "overshoot_j", "over_epochs"]);
    for bins in power_bins {
        let s = runs.next().expect("one summary per cell");
        table.add_row(vec![
            bins.to_string(),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");

    println!("memory-boundedness bins (power_bins fixed at 8):");
    let mut table = Table::new(vec!["mem_bins", "gips", "overshoot_j", "over_epochs"]);
    for bins in mem_bins {
        let s = runs.next().expect("one summary per cell");
        table.add_row(vec![
            bins.to_string(),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: very coarse binning (2 power bins, 1 mem bin) hurts either \
         overshoot or throughput; very fine binning learns slower within the run."
    );
}
