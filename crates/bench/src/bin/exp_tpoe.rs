//! **E3** — Throughput per over-the-budget energy (paper claim 2a: "up to
//! 44.3× better throughput per over-the-budget energy").
//!
//! Same sweep as E2; reports TpOE = instructions / overshoot-joule per
//! (benchmark, controller) and OD-RL's ratio over each baseline, plus the
//! predictive-market arm's TpOE next to the reactive reference.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_tpoe`

use odrl_bench::{benchmark_sweep_parallel, geometric_mean, sweep_parallelism, ControllerKind};
use odrl_metrics::{fmt_num, fmt_ratio, Table};

fn main() {
    // Column 0 is the reactive OD-RL reference, column 1 its predictive
    // market arm; the baseline comparisons below start at column 2.
    let mut kinds = ControllerKind::headline_set();
    kinds.insert(1, ControllerKind::OdRlMarket);
    println!("E3: throughput per over-budget energy (64 cores, 60% budget, 2000 epochs)");
    println!("TpOE = total instructions / overshoot energy [instr/J]; inf = no overshoot\n");
    let sweep = benchmark_sweep_parallel(64, 0.6, 2_000, 1, &kinds, sweep_parallelism());

    let mut headers = vec!["benchmark".to_string()];
    headers.extend(kinds.iter().map(|k| k.label().to_string()));
    headers.push("odrl_vs_best".into());
    let mut table = Table::new(headers);

    let mut ratios = Vec::new();
    let mut max_ratio = 0.0f64;
    let mut any_inf = false;
    for (bench, summaries) in &sweep {
        let mut row = vec![bench.clone()];
        let tpoes: Vec<f64> = summaries
            .iter()
            .map(|s| s.throughput_per_overshoot_energy())
            .collect();
        for t in &tpoes {
            row.push(fmt_num(*t));
        }
        // OD-RL's TpOE over the best baseline TpOE (the market arm is a
        // variant of OD-RL, not a baseline).
        let odrl = tpoes[0];
        let best_baseline = tpoes[2..].iter().copied().fold(0.0, f64::max);
        let ratio = if odrl.is_infinite() {
            any_inf = true;
            f64::INFINITY
        } else if best_baseline > 0.0 && best_baseline.is_finite() {
            odrl / best_baseline
        } else {
            1.0
        };
        if ratio.is_finite() {
            ratios.push(ratio);
            max_ratio = max_ratio.max(ratio);
        }
        row.push(fmt_ratio(Some(ratio)));
        table.add_row(row);
    }
    println!("{table}");

    println!(
        "OD-RL TpOE vs best baseline: max finite ratio {}, geometric mean {}{}",
        fmt_ratio(Some(max_ratio)),
        fmt_ratio(Some(geometric_mean(&ratios))),
        if any_inf {
            " (some benchmarks: OD-RL never overshot => infinite ratio)"
        } else {
            ""
        }
    );
    println!("per-baseline (paper: up to 44.3x better TpOE):");
    for (k, kind) in kinds.iter().enumerate().skip(2) {
        let mut best = 0.0f64;
        let mut infinite = false;
        for (_, summaries) in &sweep {
            let odrl = summaries[0].throughput_per_overshoot_energy();
            let base = summaries[k].throughput_per_overshoot_energy();
            if !base.is_finite() {
                continue; // baseline also never overshoots: no signal
            }
            if odrl.is_finite() {
                best = best.max(odrl / base);
            } else {
                infinite = true;
            }
        }
        println!(
            "  vs {:<14} up to {}",
            kind.label(),
            if infinite {
                "inf (OD-RL overshoot-free where baseline overshoots)".to_string()
            } else {
                fmt_ratio(Some(best))
            }
        );
    }

    // Market arm vs the reactive reference: geometric-mean TpOE ratio over
    // benchmarks where both arms have a finite TpOE.
    let mut market_ratios = Vec::new();
    let mut market_inf = false;
    for (_, summaries) in &sweep {
        let reactive = summaries[0].throughput_per_overshoot_energy();
        let market = summaries[1].throughput_per_overshoot_energy();
        if !reactive.is_finite() {
            continue; // both arms overshoot-free: no signal
        }
        if market.is_finite() {
            market_ratios.push(market / reactive);
        } else {
            market_inf = true;
        }
    }
    println!(
        "market arm vs reactive OD-RL: geometric-mean TpOE ratio {}{}",
        fmt_ratio(Some(geometric_mean(&market_ratios))),
        if market_inf {
            " (some benchmarks: market arm overshoot-free => infinite ratio)"
        } else {
            ""
        }
    );
}
