//! **A3** — Ablation: exploration and learning-rate schedules.
//!
//! Sweeps the ε-greedy exploration floor and the learning-rate schedule of
//! the per-core agents. No exploration floor (ε→0) freezes the policy and
//! loses adaptivity to phase changes; a large floor wastes epochs on random
//! levels (overshoot risk). Constant vs inverse-time α trades tracking
//! speed against estimate stability.
//!
//! Run with: `cargo run --release -p odrl-bench --bin abl_schedules`

use odrl_bench::{ControllerKind, Scenario};
use odrl_core::OdRlConfig;
use odrl_manycore::System;
use odrl_metrics::{fmt_num, fmt_percent, RunRecorder, Table};
use odrl_power::Watts;
use odrl_rl::Schedule;
use odrl_workload::MixPolicy;

fn run_with(config: OdRlConfig, scenario: &Scenario) -> odrl_metrics::RunSummary {
    let sys_config = scenario.system_config();
    let budget = Watts::new(scenario.budget_frac * sys_config.max_power().value());
    let mut system = System::new(sys_config).expect("valid config");
    let mut ctrl = ControllerKind::OdRl.build_with_odrl_config(&system.spec(), budget, config);
    let mut rec = RunRecorder::new("od-rl");
    for _ in 0..scenario.epochs {
        let obs = system.observation(budget);
        let actions = ctrl.decide(&obs);
        let report = system.step(&actions).expect("valid actions");
        rec.record(
            report.total_power,
            budget,
            report.total_instructions(),
            report.dt,
        );
    }
    rec.finish()
}

fn main() {
    let scenario = Scenario {
        cores: 64,
        budget_frac: 0.6,
        epochs: 2_000,
        mix: MixPolicy::RoundRobin,
        seed: 8,
    };
    println!("A3: schedule ablation (64 cores, 60% budget, 2000 epochs)\n");

    println!("exploration floor (epsilon decays 0.5 -> floor):");
    let mut table = Table::new(vec!["eps_floor", "gips", "overshoot_j", "over_epochs"]);
    for floor in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let config = OdRlConfig {
            epsilon: Schedule::Exponential {
                initial: 0.5,
                rate: 5e-3,
                floor,
            },
            ..OdRlConfig::default()
        };
        let s = run_with(config, &scenario);
        table.add_row(vec![
            format!("{floor}"),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");

    println!("learning-rate schedule:");
    let schedules: Vec<(&str, Schedule)> = vec![
        ("const 0.05", Schedule::Constant { value: 0.05 }),
        ("const 0.2", Schedule::Constant { value: 0.2 }),
        ("const 0.5", Schedule::Constant { value: 0.5 }),
        (
            "1/t floor .05",
            Schedule::InverseTime {
                initial: 0.9,
                floor: 0.05,
            },
        ),
        (
            "exp floor .05",
            Schedule::Exponential {
                initial: 0.9,
                rate: 0.02,
                floor: 0.05,
            },
        ),
    ];
    let mut table = Table::new(vec!["alpha", "gips", "overshoot_j", "over_epochs"]);
    for (label, alpha) in schedules {
        let config = OdRlConfig {
            alpha,
            ..OdRlConfig::default()
        };
        let s = run_with(config, &scenario);
        table.add_row(vec![
            label.to_string(),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: a small exploration floor (0.02-0.05) beats both extremes; \
         decaying alpha with a floor tracks phase changes while damping sensor noise."
    );
}
