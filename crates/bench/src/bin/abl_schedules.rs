//! **A3** — Ablation: exploration and learning-rate schedules.
//!
//! Sweeps the ε-greedy exploration floor and the learning-rate schedule of
//! the per-core agents. No exploration floor (ε→0) freezes the policy and
//! loses adaptivity to phase changes; a large floor wastes epochs on random
//! levels (overshoot risk). Constant vs inverse-time α trades tracking
//! speed against estimate stability.
//!
//! Run with: `cargo run --release -p odrl-bench --bin abl_schedules`

use odrl_bench::{
    run_cells_parallel, run_loop, sweep_parallelism, ChipRun, ControllerKind, RunBuilder, Scenario,
};
use odrl_core::OdRlConfig;
use odrl_manycore::Parallelism;
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_rl::Schedule;
use odrl_workload::MixPolicy;

fn run_with(config: OdRlConfig, scenario: &Scenario) -> odrl_metrics::RunSummary {
    let ChipRun {
        mut system,
        mut controller,
        budget,
    } = RunBuilder::new(scenario.clone())
        .controller(ControllerKind::OdRl)
        .odrl(config)
        .build_chip()
        .expect("valid ablation configuration");
    run_loop(&mut system, controller.as_mut(), budget, scenario.epochs).summary
}

fn main() {
    let scenario = Scenario {
        cores: 64,
        budget_frac: 0.6,
        epochs: 2_000,
        mix: MixPolicy::RoundRobin,
        seed: 8,
        parallelism: Parallelism::Serial,
    };
    println!("A3: schedule ablation (64 cores, 60% budget, 2000 epochs)\n");

    let floors = [0.0, 0.02, 0.05, 0.1, 0.2];
    let schedules: Vec<(&str, Schedule)> = vec![
        ("const 0.05", Schedule::Constant { value: 0.05 }),
        ("const 0.2", Schedule::Constant { value: 0.2 }),
        ("const 0.5", Schedule::Constant { value: 0.5 }),
        (
            "1/t floor .05",
            Schedule::InverseTime {
                initial: 0.9,
                floor: 0.05,
            },
        ),
        (
            "exp floor .05",
            Schedule::Exponential {
                initial: 0.9,
                rate: 0.02,
                floor: 0.05,
            },
        ),
    ];

    // Both sweep axes fan out together as one batch of cells.
    let configs: Vec<OdRlConfig> = floors
        .iter()
        .map(|&floor| OdRlConfig {
            epsilon: Schedule::Exponential {
                initial: 0.5,
                rate: 5e-3,
                floor,
            },
            ..OdRlConfig::default()
        })
        .chain(schedules.iter().map(|(_, alpha)| OdRlConfig {
            alpha: *alpha,
            ..OdRlConfig::default()
        }))
        .collect();
    let mut runs = run_cells_parallel(&configs, sweep_parallelism(), |config| {
        run_with(config.clone(), &scenario)
    })
    .into_iter();

    println!("exploration floor (epsilon decays 0.5 -> floor):");
    let mut table = Table::new(vec!["eps_floor", "gips", "overshoot_j", "over_epochs"]);
    for floor in floors {
        let s = runs.next().expect("one summary per cell");
        table.add_row(vec![
            format!("{floor}"),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");

    println!("learning-rate schedule:");
    let mut table = Table::new(vec!["alpha", "gips", "overshoot_j", "over_epochs"]);
    for (label, _) in &schedules {
        let s = runs.next().expect("one summary per cell");
        table.add_row(vec![
            label.to_string(),
            fmt_num(s.throughput_ips() / 1e9),
            fmt_num(s.overshoot_energy.value()),
            fmt_percent(s.overshoot_fraction),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: a small exploration floor (0.02-0.05) beats both extremes; \
         decaying alpha with a floor tracks phase changes while damping sensor noise."
    );
}
