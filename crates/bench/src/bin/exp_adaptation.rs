//! **E6** — On-line learning dynamics and budget-step response.
//!
//! Runs OD-RL on 64 cores through three budget phases (80 % → 50 % → 70 %
//! of max power) and reports, per 100-epoch window: mean power vs the
//! budget then in force, throughput, overshoot epochs, and the agents'
//! state-space coverage. Shows (a) convergence of the learned policy and
//! (b) recovery after each budget step — the on-line adaptivity the paper
//! claims for model-free control.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_adaptation`

use odrl_controllers::PowerController;
use odrl_core::{OdRlConfig, OdRlController};
use odrl_manycore::{System, SystemConfig};
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_workload::MixPolicy;

const WINDOW: u64 = 100;
const PHASES: [(f64, u64); 3] = [(0.8, 1_000), (0.5, 1_000), (0.7, 1_000)];

fn main() {
    let config = SystemConfig::builder()
        .cores(64)
        .mix(MixPolicy::RoundRobin)
        .seed(5)
        .build()
        .expect("valid config");
    let max_power = config.max_power();
    let mut system = System::new(config).expect("valid system");
    let initial_budget = max_power * PHASES[0].0;
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), initial_budget)
        .expect("valid OD-RL config");

    println!("E6: OD-RL adaptation to budget steps (64 cores)");
    println!(
        "budget phases: {}\n",
        PHASES
            .iter()
            .map(|(f, e)| format!("{:.0}% x{e}", f * 100.0))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    let mut table = Table::new(vec![
        "epoch",
        "budget_w",
        "mean_power_w",
        "power/budget",
        "over_epochs",
        "gips",
        "coverage",
    ]);

    let mut epoch = 0u64;
    let mut actions = vec![odrl_power::LevelId(0); system.num_cores()];
    for &(frac, phase_epochs) in &PHASES {
        let budget = max_power * frac;
        let mut win_power = 0.0;
        let mut win_over = 0u64;
        let mut win_instr = 0.0;
        let mut win_n = 0u64;
        for _ in 0..phase_epochs {
            let obs = system.observation(budget);
            ctrl.decide_into(&obs, &mut actions);
            let report = system.step(&actions).expect("valid actions");
            win_power += report.total_power.value();
            win_instr += report.total_instructions();
            if report.total_power > budget {
                win_over += 1;
            }
            win_n += 1;
            epoch += 1;
            if win_n == WINDOW {
                let mean_p = win_power / win_n as f64;
                table.add_row(vec![
                    epoch.to_string(),
                    fmt_num(budget.value()),
                    fmt_num(mean_p),
                    format!("{:.3}", mean_p / budget.value()),
                    fmt_percent(win_over as f64 / win_n as f64),
                    fmt_num(win_instr / (win_n as f64 * 1e-3) / 1e9),
                    fmt_percent(ctrl.coverage()),
                ]);
                win_power = 0.0;
                win_over = 0;
                win_instr = 0.0;
                win_n = 0;
            }
        }
    }
    println!("{table}");
    println!(
        "expected shape: power/budget climbs toward ~1 within each phase, dips right after \
         each downward step, and coverage grows monotonically as agents explore."
    );
}
