//! **E12** — Extended-range (near-threshold) DVFS under tight budgets.
//!
//! The research group's CODES+ISSS'13 work showed that extending the DVFS
//! range below the conventional floor (toward near-threshold operation)
//! buys throughput under iso-power constraints. This experiment reruns the
//! budget sweep with OD-RL on the standard 8-level table vs the 12-level
//! extended-range table: under very tight budgets the conventional floor
//! (every core at its lowest level) already exceeds the cap, and only the
//! extended table has anywhere to go.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_extended_range`

use odrl_controllers::PowerController;
use odrl_core::{OdRlConfig, OdRlController};
use odrl_manycore::{System, SystemConfig};
use odrl_metrics::{fmt_num, fmt_percent, RunRecorder, Table};
use odrl_power::{VfTable, Watts};
use odrl_workload::MixPolicy;

const CORES: usize = 64;
const EPOCHS: u64 = 2_000;

fn run(table: VfTable, budget_frac: f64, reference_max: Watts) -> odrl_metrics::RunSummary {
    let config = SystemConfig::builder()
        .cores(CORES)
        .vf_table(table)
        .mix(MixPolicy::RoundRobin)
        .seed(28)
        .build()
        .expect("valid config");
    // Both tables are budgeted against the SAME reference max power (the
    // standard table's), so "20%" means the same watts for both.
    let budget = reference_max * budget_frac;
    let mut system = System::new(config).expect("valid system");
    let mut ctrl = OdRlController::new(OdRlConfig::default(), &system.spec(), budget)
        .expect("valid OD-RL config");
    let mut rec = RunRecorder::new("od-rl");
    let mut actions = vec![odrl_power::LevelId(0); CORES];
    for _ in 0..EPOCHS {
        let obs = system.observation(budget);
        ctrl.decide_into(&obs, &mut actions);
        let report = system.step(&actions).expect("valid actions");
        rec.record(
            report.total_power,
            budget,
            report.total_instructions(),
            report.dt,
        );
    }
    rec.finish()
}

fn main() {
    let reference_max = SystemConfig::builder()
        .cores(CORES)
        .build()
        .expect("valid config")
        .max_power();
    println!(
        "E12: standard vs extended-range (near-threshold) DVFS, OD-RL on {CORES} cores\n\
         (budgets are fractions of the same {reference_max:.1} reference)\n"
    );

    let mut table = Table::new(vec![
        "budget_pct",
        "std_gips",
        "std_over_epochs",
        "ext_gips",
        "ext_over_epochs",
        "ext_gain",
    ]);
    for pct in [10, 15, 20, 30, 40, 60] {
        let frac = pct as f64 / 100.0;
        let std = run(VfTable::alpha_like(), frac, reference_max);
        let ext = run(VfTable::extended_range(), frac, reference_max);
        table.add_row(vec![
            format!("{pct}%"),
            fmt_num(std.throughput_ips() / 1e9),
            fmt_percent(std.overshoot_fraction),
            fmt_num(ext.throughput_ips() / 1e9),
            fmt_percent(ext.overshoot_fraction),
            fmt_percent(ext.throughput_ips() / std.throughput_ips() - 1.0),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: at generous budgets the tables tie (same top levels); as the \
         budget approaches the standard table's floor power, the standard build is \
         FORCED over budget (overshoot epochs -> 100%) while the extended table trades \
         throughput for compliance using its near-threshold levels."
    );
}
