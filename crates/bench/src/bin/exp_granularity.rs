//! **E8** — VFI granularity: per-core DVFS vs coarser voltage/frequency
//! islands.
//!
//! The paper's system assumes per-core VF domains; real chips often group
//! cores into islands sharing one domain (cheaper voltage regulators).
//! This experiment quantifies what that costs: OD-RL and Steepest Drop run
//! at island sizes 1 (per-core), 2, 4, 8, 16 and 64 (chip-wide) on the
//! heterogeneous mixed workload, where islands must average over unlike
//! cores.
//!
//! Run with: `cargo run --release -p odrl-bench --bin exp_granularity`

use odrl_bench::{run_loop, Scenario};
use odrl_controllers::{IslandController, IslandMap, PowerController, SteepestDrop};
use odrl_core::{OdRlConfig, OdRlController};
use odrl_manycore::{Parallelism, System};
use odrl_metrics::{fmt_num, fmt_percent, Table};
use odrl_power::Watts;
use odrl_workload::MixPolicy;

const CORES: usize = 64;
const EPOCHS: u64 = 2_000;

fn main() {
    let scenario = Scenario {
        cores: CORES,
        budget_frac: 0.6,
        epochs: EPOCHS,
        mix: MixPolicy::RoundRobin,
        seed: 9,
        parallelism: Parallelism::Serial,
    };
    let config = scenario
        .try_system_config()
        .expect("scenario parameters are valid");
    let budget = Watts::new(scenario.budget_frac * config.max_power().value());
    let spec = config.spec();

    println!("E8: VFI granularity on {CORES} cores, 60% budget, mixed workload\n");
    let mut table = Table::new(vec![
        "island_size",
        "odrl_gips",
        "odrl_ovj",
        "steepest_gips",
        "steepest_ovj",
    ]);

    let mut per_core_odrl = 0.0;
    let mut chipwide_odrl = 0.0;
    for &size in &[1usize, 2, 4, 8, 16, 64] {
        let map = IslandMap::uniform(CORES, size).expect("valid map");
        let island_spec = map.island_spec(&spec);

        let odrl_inner =
            OdRlController::new(OdRlConfig::default(), &island_spec, budget).expect("valid OD-RL");
        let mut odrl: Box<dyn PowerController> = if size == 1 {
            Box::new(odrl_inner)
        } else {
            Box::new(IslandController::new(odrl_inner, map.clone()).expect("valid adapter"))
        };
        let mut sys = System::new(config.clone()).expect("valid system");
        let odrl_run = run_loop(&mut sys, odrl.as_mut(), budget, EPOCHS);

        let sd_inner = SteepestDrop::new(island_spec).expect("valid spec");
        let mut sd: Box<dyn PowerController> = if size == 1 {
            Box::new(sd_inner)
        } else {
            Box::new(IslandController::new(sd_inner, map).expect("valid adapter"))
        };
        let mut sys = System::new(config.clone()).expect("valid system");
        let sd_run = run_loop(&mut sys, sd.as_mut(), budget, EPOCHS);

        let odrl_gips = odrl_run.summary.throughput_ips() / 1e9;
        if size == 1 {
            per_core_odrl = odrl_gips;
        }
        if size == 64 {
            chipwide_odrl = odrl_gips;
        }
        table.add_row(vec![
            size.to_string(),
            fmt_num(odrl_gips),
            fmt_num(odrl_run.summary.overshoot_energy.value()),
            fmt_num(sd_run.summary.throughput_ips() / 1e9),
            fmt_num(sd_run.summary.overshoot_energy.value()),
        ]);
    }
    println!("{table}");
    println!(
        "per-core VFI buys {} throughput over a single chip-wide domain for OD-RL \
         (expected shape: monotone loss with coarser islands on heterogeneous mixes, \
         because one level must serve both compute- and memory-bound members).",
        fmt_percent(per_core_odrl / chipwide_odrl - 1.0)
    );
}
